//! CST → AST lowering — the *semantic actions* layer.
//!
//! The paper attaches semantics to generated parsers with Jak; here the
//! lowering is a name/label-driven walk over [`CstNode`]s. Because every
//! dialect's parser emits the same production names, one lowering serves
//! the entire product line: statements of unselected features simply never
//! appear.

use crate::ast::*;
use sqlweave_parser_rt::CstNode;
use std::fmt;

/// Lowering failure (an unhandled or malformed CST shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// What went wrong, with the offending production name.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError { message: message.into() })
}

/// Cursor over a node's children.
struct Walk<'a> {
    children: &'a [CstNode],
    pos: usize,
}

impl<'a> Walk<'a> {
    fn of(node: &'a CstNode) -> Walk<'a> {
        Walk { children: node.children(), pos: 0 }
    }

    fn peek(&self) -> Option<&'a CstNode> {
        self.children.get(self.pos)
    }

    fn peek_name(&self) -> Option<&'a str> {
        self.peek().map(|c| c.name())
    }

    fn bump(&mut self) -> Option<&'a CstNode> {
        let c = self.children.get(self.pos)?;
        self.pos += 1;
        Some(c)
    }

    /// Take the next child if it has the given production/token name.
    fn take(&mut self, name: &str) -> Option<&'a CstNode> {
        if self.peek_name() == Some(name) {
            self.bump()
        } else {
            None
        }
    }

    /// Take the next child if it is a token of one of the given kinds;
    /// returns its kind name.
    fn take_any(&mut self, names: &[&str]) -> Option<&'a str> {
        let name = self.peek_name()?;
        if names.contains(&name) {
            self.bump();
            Some(name)
        } else {
            None
        }
    }

    /// Require the next child by name.
    fn expect(&mut self, name: &str) -> Result<&'a CstNode, LowerError> {
        match self.take(name) {
            Some(n) => Ok(n),
            None => err(format!(
                "expected `{name}`, found `{:?}`",
                self.peek_name()
            )),
        }
    }

    /// Require the next child to be a token and return its text.
    fn expect_text(&mut self, name: &str) -> Result<&'a str, LowerError> {
        let node = self.expect(name)?;
        node.token_text()
            .ok_or_else(|| LowerError { message: format!("`{name}` is not a token") })
    }

    /// All remaining children with the given name (interspersed separators
    /// are skipped by name filtering).
    fn collect(&mut self, name: &str) -> Vec<&'a CstNode> {
        let mut out = Vec::new();
        while self.pos < self.children.len() {
            let c = &self.children[self.pos];
            if c.name() == name {
                out.push(c);
                self.pos += 1;
            } else if c.name() == "COMMA" {
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }

}

fn label(node: &CstNode) -> &str {
    node.label().unwrap_or("")
}

// ---------------------------------------------------------------- entry

/// Lower a `sql_script` CST to a list of statements.
pub fn lower_script(node: &CstNode) -> Result<Vec<Statement>, LowerError> {
    if node.name() != "sql_script" {
        // Allow lowering a bare statement or query too.
        return Ok(vec![lower_statement(node)?]);
    }
    node.children()
        .iter()
        .filter(|c| c.name() == "sql_statement")
        .map(lower_statement)
        .collect()
}

/// Lower an event-built [`sqlweave_parser_rt::SyntaxTree`] (e.g. from a
/// recycled [`sqlweave_parser_rt::ParseSession`]) to statements. The
/// lowering rules are written against [`CstNode`], so this converts at the
/// root; batch drivers that only need the AST still skip the per-statement
/// session/tree allocations the parser no longer makes.
pub fn lower_tree(tree: &sqlweave_parser_rt::SyntaxTree<'_>) -> Result<Vec<Statement>, LowerError> {
    lower_script(&tree.to_cst())
}

/// Lower a `sql_statement` (or a bare inner statement node).
pub fn lower_statement(node: &CstNode) -> Result<Statement, LowerError> {
    let inner = if node.name() == "sql_statement" {
        &node.children()[0]
    } else {
        node
    };
    match inner.name() {
        "query_expression" => Ok(Statement::Query(lower_query(inner)?)),
        "insert_statement" => lower_insert(inner),
        "update_statement" => lower_update(inner),
        "delete_statement" => lower_delete(inner),
        "merge_statement" => lower_merge(inner),
        "table_definition" => lower_create_table(inner),
        "view_definition" => lower_create_view(inner),
        "schema_definition" => lower_create_schema(inner),
        "domain_definition" => lower_create_domain(inner),
        "alter_table_statement" => lower_alter_table(inner),
        "drop_statement" => lower_drop(inner),
        "grant_statement" => lower_grant(inner, false),
        "revoke_statement" => lower_grant(inner, true),
        "transaction_statement" => lower_transaction(inner),
        "session_statement" => lower_session(inner),
        "cursor_statement" => lower_cursor(inner),
        other => err(format!("unhandled statement production `{other}`")),
    }
}

// ---------------------------------------------------------------- queries

/// Lower a `query_expression`.
pub fn lower_query(node: &CstNode) -> Result<Query, LowerError> {
    let mut w = Walk::of(node);
    let (with, recursive) = match w.take("with_clause") {
        Some(wc) => lower_with(wc)?,
        None => (Vec::new(), false),
    };
    let mut body = lower_query_term(w.expect("query_term")?)?;
    while let Some(op_node) = w.take("set_operator") {
        let mut ow = Walk::of(op_node);
        let op = match ow.take_any(&["UNION", "EXCEPT", "INTERSECT"]) {
            Some("UNION") => SetOp::Union,
            Some("EXCEPT") => SetOp::Except,
            Some("INTERSECT") => SetOp::Intersect,
            _ => return err("bad set_operator"),
        };
        let quantifier = match ow.take_any(&["ALL", "DISTINCT"]) {
            Some("ALL") => Some(SetQuantifier::All),
            Some("DISTINCT") => Some(SetQuantifier::Distinct),
            _ => None,
        };
        let right = lower_query_term(w.expect("query_term")?)?;
        body = QueryBody::SetOp {
            left: Box::new(body),
            op,
            quantifier,
            right: Box::new(right),
        };
    }
    let order_by = match w.take("order_by_clause") {
        Some(ob) => lower_order_by(ob)?,
        None => Vec::new(),
    };
    let mut offset = None;
    let mut fetch = None;
    if w.take("OFFSET").is_some() {
        offset = Some(w.expect_text("NUMBER")?.to_string());
        w.take_any(&["ROW", "ROWS"]);
    }
    if w.take("FETCH").is_some() {
        w.take_any(&["FIRST", "NEXT"]);
        fetch = Some(w.expect_text("NUMBER")?.to_string());
        w.take_any(&["ROW", "ROWS"]);
        w.take("ONLY");
    }
    Ok(Query { with, recursive, body, order_by, offset, fetch })
}

fn lower_with(node: &CstNode) -> Result<(Vec<Cte>, bool), LowerError> {
    let mut w = Walk::of(node);
    w.expect("WITH")?;
    let recursive = w.take("RECURSIVE").is_some();
    let mut ctes = Vec::new();
    for el in w.collect("with_element") {
        let mut ew = Walk::of(el);
        let name = ew.expect_text("IDENT")?.to_string();
        let mut columns = Vec::new();
        if ew.take("LPAREN").is_some() {
            columns = lower_column_name_list(ew.expect("column_name_list")?)?;
            ew.expect("RPAREN")?;
        }
        ew.expect("AS")?;
        ew.expect("LPAREN")?;
        let query = lower_query(ew.expect("query_expression")?)?;
        ew.expect("RPAREN")?;
        ctes.push(Cte { name, columns, query: Box::new(query) });
    }
    Ok((ctes, recursive))
}

fn lower_query_term(node: &CstNode) -> Result<QueryBody, LowerError> {
    let primary = &node.children()[0];
    match label(primary) {
        "select" => Ok(QueryBody::Select(Box::new(lower_select(
            primary.child("query_specification").ok_or_else(|| LowerError {
                message: "query_primary#select lacks query_specification".into(),
            })?,
        )?))),
        "nested" => {
            let sub = primary.child("subquery").ok_or_else(|| LowerError {
                message: "query_primary#nested lacks subquery".into(),
            })?;
            Ok(QueryBody::Nested(Box::new(lower_subquery(sub)?)))
        }
        other => err(format!("unhandled query_primary label `{other}`")),
    }
}

fn lower_subquery(node: &CstNode) -> Result<Query, LowerError> {
    let mut w = Walk::of(node);
    w.expect("LPAREN")?;
    let q = lower_query(w.expect("query_expression")?)?;
    w.expect("RPAREN")?;
    Ok(q)
}

fn lower_select(node: &CstNode) -> Result<Select, LowerError> {
    let mut w = Walk::of(node);
    w.expect("SELECT")?;
    let quantifier = match w.take("set_quantifier") {
        Some(q) => match label(q) {
            "all" => Some(SetQuantifier::All),
            "distinct" => Some(SetQuantifier::Distinct),
            other => return err(format!("bad set_quantifier label `{other}`")),
        },
        None => None,
    };
    let projection = lower_select_list(w.expect("select_list")?)?;
    let te = w.expect("table_expression")?;
    let mut select = lower_table_expression(te)?;
    select.quantifier = quantifier;
    select.projection = projection;
    // TinySQL clauses appear inline after the table expression.
    if w.take("EPOCH").is_some() {
        w.expect("DURATION")?;
        select.sensor.epoch_duration = Some(w.expect_text("NUMBER")?.to_string());
    }
    if w.take("SAMPLE").is_some() {
        w.expect("PERIOD")?;
        select.sensor.sample_period = Some(w.expect_text("NUMBER")?.to_string());
    }
    if w.take("LIFETIME").is_some() {
        select.sensor.lifetime = Some(w.expect_text("NUMBER")?.to_string());
    }
    Ok(select)
}

fn lower_select_list(node: &CstNode) -> Result<Vec<SelectItem>, LowerError> {
    match label(node) {
        "star" => Ok(vec![SelectItem::Star]),
        "columns" => {
            let mut w = Walk::of(node);
            let mut items = Vec::new();
            for sub in w.collect("select_sublist") {
                items.push(lower_select_sublist(sub)?);
            }
            Ok(items)
        }
        other => err(format!("unhandled select_list label `{other}`")),
    }
}

fn lower_select_sublist(node: &CstNode) -> Result<SelectItem, LowerError> {
    match label(node) {
        "qualified_star" => {
            let chain = lower_identifier_chain(
                node.child("identifier_chain")
                    .ok_or_else(|| LowerError { message: "qualified_star".into() })?,
            );
            Ok(SelectItem::QualifiedStar(chain))
        }
        _ => {
            let dc = node
                .child("derived_column")
                .ok_or_else(|| LowerError { message: "select_sublist".into() })?;
            let mut w = Walk::of(dc);
            let expr = lower_value_expression(w.expect("value_expression")?)?;
            let alias = match w.take("as_clause") {
                Some(a) => {
                    let mut aw = Walk::of(a);
                    aw.take("AS");
                    Some(aw.expect_text("IDENT")?.to_string())
                }
                None => None,
            };
            Ok(SelectItem::Expr { expr, alias })
        }
    }
}

fn lower_table_expression(node: &CstNode) -> Result<Select, LowerError> {
    let mut select = Select::default();
    let mut w = Walk::of(node);
    let fc = w.expect("from_clause")?;
    let mut fw = Walk::of(fc);
    fw.expect("FROM")?;
    for tr in fw.collect("table_reference") {
        select.from.push(lower_table_reference(tr)?);
    }
    if let Some(wc) = w.take("where_clause") {
        let mut ww = Walk::of(wc);
        ww.expect("WHERE")?;
        select.selection = Some(lower_search_condition(ww.expect("search_condition")?)?);
    }
    if let Some(gc) = w.take("group_by_clause") {
        let mut gw = Walk::of(gc);
        gw.expect("GROUP")?;
        gw.expect("BY")?;
        for ge in gw.collect("grouping_element") {
            select.group_by.push(lower_grouping_element(ge)?);
        }
    }
    if let Some(hc) = w.take("having_clause") {
        let mut hw = Walk::of(hc);
        hw.expect("HAVING")?;
        select.having = Some(lower_search_condition(hw.expect("search_condition")?)?);
    }
    if let Some(wc) = w.take("window_clause") {
        let mut ww = Walk::of(wc);
        ww.expect("WINDOW")?;
        for wd in ww.collect("window_definition") {
            select.windows.push(lower_window_definition(wd)?);
        }
    }
    Ok(select)
}

fn lower_table_reference(node: &CstNode) -> Result<TableRef, LowerError> {
    let mut w = Walk::of(node);
    let mut table = lower_table_primary(w.expect("table_primary")?)?;
    while let Some(j) = w.take("joined_table") {
        let mut jw = Walk::of(j);
        let (kind, right, condition) = match label(j) {
            "cross" => {
                jw.expect("CROSS")?;
                jw.expect("JOIN")?;
                let right = lower_table_primary(jw.expect("table_primary")?)?;
                (JoinKind::Cross, right, JoinCondition::None)
            }
            "natural" => {
                jw.expect("NATURAL")?;
                jw.take("join_type");
                jw.expect("JOIN")?;
                let right = lower_table_primary(jw.expect("table_primary")?)?;
                (JoinKind::Natural, right, JoinCondition::None)
            }
            _ => {
                let kind = match jw.take("join_type").map(label) {
                    Some("left") => JoinKind::Left,
                    Some("right") => JoinKind::Right,
                    Some("full") => JoinKind::Full,
                    _ => JoinKind::Inner,
                };
                jw.expect("JOIN")?;
                let right = lower_table_primary(jw.expect("table_primary")?)?;
                let condition = match jw.take("join_condition") {
                    Some(jc) => lower_join_condition(jc)?,
                    None => JoinCondition::None,
                };
                (kind, right, condition)
            }
        };
        table = TableRef::Join {
            left: Box::new(table),
            kind,
            right: Box::new(right),
            condition,
        };
    }
    Ok(table)
}

fn lower_join_condition(node: &CstNode) -> Result<JoinCondition, LowerError> {
    match label(node) {
        "on" => {
            let mut w = Walk::of(node);
            w.expect("ON")?;
            Ok(JoinCondition::On(lower_search_condition(
                w.expect("search_condition")?,
            )?))
        }
        "using" => {
            let mut w = Walk::of(node);
            w.expect("USING")?;
            w.expect("LPAREN")?;
            let cols = lower_column_name_list(w.expect("column_name_list")?)?;
            Ok(JoinCondition::Using(cols))
        }
        other => err(format!("unhandled join_condition label `{other}`")),
    }
}

fn lower_table_primary(node: &CstNode) -> Result<TableRef, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "derived_table" => {
            let q = lower_subquery(w.expect("subquery")?)?;
            let alias = lower_correlation(&mut w)?;
            Ok(TableRef::Derived { query: Box::new(q), alias })
        }
        _ => {
            let name = lower_table_name(w.expect("table_name")?);
            let alias = lower_correlation(&mut w)?;
            Ok(TableRef::Named { name, alias })
        }
    }
}

fn lower_correlation(w: &mut Walk<'_>) -> Result<Option<String>, LowerError> {
    match w.take("correlation") {
        Some(c) => {
            let mut cw = Walk::of(c);
            cw.take("AS");
            Ok(Some(cw.expect_text("IDENT")?.to_string()))
        }
        None => Ok(None),
    }
}

fn lower_grouping_element(node: &CstNode) -> Result<GroupingElement, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "rollup" | "cube" => {
            let is_rollup = label(node) == "rollup";
            w.bump(); // ROLLUP / CUBE
            w.expect("LPAREN")?;
            let mut cols = Vec::new();
            for cr in w.collect("column_reference") {
                cols.push(lower_column_reference(cr));
            }
            Ok(if is_rollup {
                GroupingElement::Rollup(cols)
            } else {
                GroupingElement::Cube(cols)
            })
        }
        "sets" => {
            w.expect("GROUPING")?;
            w.expect("SETS")?;
            w.expect("LPAREN")?;
            let mut elems = Vec::new();
            for ge in w.collect("grouping_element") {
                elems.push(lower_grouping_element(ge)?);
            }
            Ok(GroupingElement::GroupingSets(elems))
        }
        _ => Ok(GroupingElement::Column(lower_column_reference(
            w.expect("column_reference")?,
        ))),
    }
}

fn lower_order_by(node: &CstNode) -> Result<Vec<SortSpec>, LowerError> {
    let mut w = Walk::of(node);
    w.expect("ORDER")?;
    w.expect("BY")?;
    let mut out = Vec::new();
    for ss in w.collect("sort_specification") {
        let mut sw = Walk::of(ss);
        let expr = lower_value_expression(sw.expect("value_expression")?)?;
        let descending = matches!(sw.take_any(&["ASC", "DESC"]), Some("DESC"));
        let nulls_first = if sw.take("NULLS").is_some() {
            match sw.take_any(&["FIRST", "LAST"]) {
                Some("FIRST") => Some(true),
                Some("LAST") => Some(false),
                _ => None,
            }
        } else {
            None
        };
        out.push(SortSpec { expr, descending, nulls_first });
    }
    Ok(out)
}

fn lower_window_definition(node: &CstNode) -> Result<WindowDef, LowerError> {
    let mut w = Walk::of(node);
    let name = w.expect_text("IDENT")?.to_string();
    w.expect("AS")?;
    w.expect("LPAREN")?;
    let (partition_by, order_by, frame) = lower_window_spec(w.expect("window_spec")?)?;
    Ok(WindowDef { name, partition_by, order_by, frame })
}

/// Lower a `window_spec` node into its three clauses.
#[allow(clippy::type_complexity)]
fn lower_window_spec(
    spec: &CstNode,
) -> Result<(Vec<QualifiedName>, Vec<SortSpec>, Option<String>), LowerError> {
    let mut sw = Walk::of(spec);
    let mut partition_by = Vec::new();
    let mut order_by = Vec::new();
    let mut frame = None;
    if let Some(pc) = sw.take("partition_clause") {
        let mut pw = Walk::of(pc);
        pw.expect("PARTITION")?;
        pw.expect("BY")?;
        for cr in pw.collect("column_reference") {
            partition_by.push(lower_column_reference(cr));
        }
    }
    if let Some(oc) = sw.take("window_order_clause") {
        let mut ow = Walk::of(oc);
        ow.expect("ORDER")?;
        ow.expect("BY")?;
        for ss in ow.collect("sort_specification") {
            let mut ssw = Walk::of(ss);
            let expr = lower_value_expression(ssw.expect("value_expression")?)?;
            order_by.push(SortSpec { expr, descending: false, nulls_first: None });
        }
    }
    if let Some(fc) = sw.take("frame_clause") {
        frame = Some(fc.text());
    }
    Ok((partition_by, order_by, frame))
}

// ---------------------------------------------------------------- conditions

/// Lower a `search_condition` (boolean expression).
pub fn lower_search_condition(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let mut expr = lower_boolean_term(w.expect("boolean_term")?)?;
    while w.take("OR").is_some() {
        let right = lower_boolean_term(w.expect("boolean_term")?)?;
        expr = Expr::Binary {
            left: Box::new(expr),
            op: BinaryOp::Or,
            right: Box::new(right),
        };
    }
    Ok(expr)
}

fn lower_boolean_term(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let mut expr = lower_boolean_factor(w.expect("boolean_factor")?)?;
    while w.take("AND").is_some() {
        let right = lower_boolean_factor(w.expect("boolean_factor")?)?;
        expr = Expr::Binary {
            left: Box::new(expr),
            op: BinaryOp::And,
            right: Box::new(right),
        };
    }
    Ok(expr)
}

fn lower_boolean_factor(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let negated = w.take("NOT").is_some();
    let inner = lower_predicate(w.expect("predicate")?)?;
    Ok(if negated {
        Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) }
    } else {
        inner
    })
}

fn lower_predicate(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "paren_condition" => {
            w.expect("LPAREN")?;
            let inner = lower_search_condition(w.expect("search_condition")?)?;
            Ok(Expr::Nested(Box::new(inner)))
        }
        "exists" => {
            w.expect("EXISTS")?;
            Ok(Expr::Exists(Box::new(lower_subquery(w.expect("subquery")?)?)))
        }
        "overlaps" => {
            let left = lower_row_value(w.expect("row_value")?)?;
            w.expect("OVERLAPS")?;
            let right = lower_row_value(w.expect("row_value")?)?;
            Ok(Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Overlaps,
                right: Box::new(right),
            })
        }
        _ => {
            let left = lower_row_value(w.expect("row_value")?)?;
            let tail = w.expect("predicate_tail")?;
            lower_predicate_tail(left, tail)
        }
    }
}

fn lower_row_value(node: &CstNode) -> Result<Expr, LowerError> {
    lower_value_expression(&node.children()[0])
}

fn comp_op_of(node: &CstNode) -> Result<BinaryOp, LowerError> {
    match label(node) {
        "eq" => Ok(BinaryOp::Eq),
        "neq" => Ok(BinaryOp::Neq),
        "lt" => Ok(BinaryOp::Lt),
        "gt" => Ok(BinaryOp::Gt),
        "le" => Ok(BinaryOp::Le),
        "ge" => Ok(BinaryOp::Ge),
        other => err(format!("unhandled comp_op label `{other}`")),
    }
}

fn lower_predicate_tail(left: Expr, node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "comparison" => {
            let op = comp_op_of(w.expect("comp_op")?)?;
            let right = lower_row_value(w.expect("row_value")?)?;
            Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) })
        }
        "quantified" => {
            let op = comp_op_of(w.expect("comp_op")?)?;
            let quantifier = w
                .take_any(&["ALL", "ANY", "SOME"])
                .unwrap_or("ALL")
                .to_string();
            let query = lower_subquery(w.expect("subquery")?)?;
            Ok(Expr::Quantified {
                expr: Box::new(left),
                op,
                quantifier,
                query: Box::new(query),
            })
        }
        "between" => {
            let negated = w.take("NOT").is_some();
            w.expect("BETWEEN")?;
            let low = lower_row_value(w.expect("row_value")?)?;
            w.expect("AND")?;
            let high = lower_row_value(w.expect("row_value")?)?;
            Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            })
        }
        "in" => {
            let negated = w.take("NOT").is_some();
            w.expect("IN")?;
            w.expect("LPAREN")?;
            let list_node = w.expect("in_value_list")?;
            let mut lw = Walk::of(list_node);
            let mut list = Vec::new();
            for ve in lw.collect("value_expression") {
                list.push(lower_value_expression(ve)?);
            }
            Ok(Expr::InList { expr: Box::new(left), negated, list })
        }
        "in_subquery" => {
            let negated = w.take("NOT").is_some();
            w.expect("IN")?;
            let query = lower_subquery(w.expect("subquery")?)?;
            Ok(Expr::InSubquery {
                expr: Box::new(left),
                negated,
                query: Box::new(query),
            })
        }
        "like" => {
            let negated = w.take("NOT").is_some();
            w.expect("LIKE")?;
            let pattern = lower_value_expression(w.expect("value_expression")?)?;
            let escape = if w.take("ESCAPE").is_some() {
                Some(Box::new(lower_value_expression(
                    w.expect("value_expression")?,
                )?))
            } else {
                None
            };
            Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
                escape,
            })
        }
        "is_null" => {
            w.expect("IS")?;
            let negated = w.take("NOT").is_some();
            w.expect("NULL")?;
            Ok(Expr::IsNull { expr: Box::new(left), negated })
        }
        "truth_test" => {
            w.expect("IS")?;
            let negated = w.take("NOT").is_some();
            let value = w
                .take_any(&["TRUE", "FALSE", "UNKNOWN"])
                .unwrap_or("UNKNOWN")
                .to_string();
            Ok(Expr::IsTruthValue { expr: Box::new(left), negated, value })
        }
        "is_distinct" => {
            w.expect("IS")?;
            let negated = w.take("NOT").is_some();
            w.expect("DISTINCT")?;
            w.expect("FROM")?;
            let other = lower_row_value(w.expect("row_value")?)?;
            Ok(Expr::IsDistinctFrom {
                expr: Box::new(left),
                negated,
                other: Box::new(other),
            })
        }
        other => err(format!("unhandled predicate_tail label `{other}`")),
    }
}

// ---------------------------------------------------------------- expressions

/// Lower a `value_expression`.
pub fn lower_value_expression(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let mut expr = lower_term(w.expect("term")?)?;
    while let Some(op) = w.take_any(&["PLUS", "MINUS"]) {
        let right = lower_term(w.expect("term")?)?;
        let op = if op == "PLUS" { BinaryOp::Plus } else { BinaryOp::Minus };
        expr = Expr::Binary { left: Box::new(expr), op, right: Box::new(right) };
    }
    Ok(expr)
}

fn lower_term(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let mut expr = lower_factor(w.expect("factor")?)?;
    while let Some(op) = w.take_any(&["ASTERISK", "SOLIDUS"]) {
        let right = lower_factor(w.expect("factor")?)?;
        let op = if op == "ASTERISK" { BinaryOp::Multiply } else { BinaryOp::Divide };
        expr = Expr::Binary { left: Box::new(expr), op, right: Box::new(right) };
    }
    Ok(expr)
}

fn lower_factor(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let sign = w.take_any(&["PLUS", "MINUS"]);
    let mut expr = lower_value_primary(w.expect("value_primary")?)?;
    while w.take("CONCAT").is_some() {
        let right = lower_value_primary(w.expect("value_primary")?)?;
        expr = Expr::Binary {
            left: Box::new(expr),
            op: BinaryOp::Concat,
            right: Box::new(right),
        };
    }
    Ok(match sign {
        Some("MINUS") => Expr::Unary { op: UnaryOp::Minus, expr: Box::new(expr) },
        Some("PLUS") => Expr::Unary { op: UnaryOp::Plus, expr: Box::new(expr) },
        _ => expr,
    })
}

fn lower_value_primary(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "column" => Ok(Expr::Column(lower_column_reference(
            w.expect("column_reference")?,
        ))),
        "literal" => Ok(Expr::Literal(lower_literal(w.expect("literal")?)?)),
        "paren" => {
            w.expect("LPAREN")?;
            let inner = lower_value_expression(w.expect("value_expression")?)?;
            Ok(Expr::Nested(Box::new(inner)))
        }
        "case" => lower_case(w.expect("case_expression")?),
        "nullif" => {
            w.expect("NULLIF")?;
            w.expect("LPAREN")?;
            let a = lower_value_expression(w.expect("value_expression")?)?;
            w.expect("COMMA")?;
            let b = lower_value_expression(w.expect("value_expression")?)?;
            Ok(Expr::Function {
                name: "NULLIF".into(),
                quantifier: None,
                args: vec![a, b],
            })
        }
        "coalesce" => {
            w.expect("COALESCE")?;
            w.expect("LPAREN")?;
            let mut args = Vec::new();
            for ve in w.collect("value_expression") {
                args.push(lower_value_expression(ve)?);
            }
            Ok(Expr::Function { name: "COALESCE".into(), quantifier: None, args })
        }
        "cast" => {
            let cast = w.expect("cast_expression")?;
            let mut cw = Walk::of(cast);
            cw.expect("CAST")?;
            cw.expect("LPAREN")?;
            let expr = lower_value_expression(cw.expect("value_expression")?)?;
            cw.expect("AS")?;
            let data_type = lower_data_type(cw.expect("data_type")?)?;
            Ok(Expr::Cast { expr: Box::new(expr), data_type })
        }
        "string_fn" => lower_string_function(w.expect("string_function")?),
        "numeric_fn" => lower_simple_function(w.expect("numeric_function")?),
        "datetime_fn" => lower_datetime_function(w.expect("datetime_function")?),
        "aggregate" => lower_aggregate(w.expect("aggregate_function")?),
        "window_fn" => {
            let rf = w.expect("ranking_function")?;
            let mut rw = Walk::of(rf);
            let kind = rw.expect("ranking_kind")?;
            let name = kind
                .tokens()
                .first()
                .map(|t| t.name().to_string())
                .unwrap_or_else(|| "RANK".into());
            rw.expect("LPAREN")?;
            rw.expect("RPAREN")?;
            rw.expect("OVER")?;
            rw.expect("LPAREN")?;
            let (partition_by, order_by, frame) = lower_window_spec(rw.expect("window_spec")?)?;
            Ok(Expr::WindowFunction { name, partition_by, order_by, frame })
        }
        "scalar_subquery" => Ok(Expr::Subquery(Box::new(lower_subquery(
            w.expect("subquery")?,
        )?))),
        other => err(format!("unhandled value_primary label `{other}`")),
    }
}

fn lower_case(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    w.expect("CASE")?;
    let (operand, when_name) = match label(node) {
        "simple" => (
            Some(Box::new(lower_value_expression(
                w.expect("value_expression")?,
            )?)),
            "simple_when",
        ),
        _ => (None, "searched_when"),
    };
    let mut when_then = Vec::new();
    while let Some(wn) = w.take(when_name) {
        let mut ww = Walk::of(wn);
        ww.expect("WHEN")?;
        let cond = if when_name == "searched_when" {
            lower_search_condition(ww.expect("search_condition")?)?
        } else {
            lower_value_expression(ww.expect("value_expression")?)?
        };
        ww.expect("THEN")?;
        let then = lower_value_expression(ww.expect("value_expression")?)?;
        when_then.push((cond, then));
    }
    let else_expr = if w.take("ELSE").is_some() {
        Some(Box::new(lower_value_expression(
            w.expect("value_expression")?,
        )?))
    } else {
        None
    };
    w.expect("END")?;
    Ok(Expr::Case { operand, when_then, else_expr })
}

fn lower_string_function(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "substring" => {
            w.expect("SUBSTRING")?;
            w.expect("LPAREN")?;
            let expr = lower_value_expression(w.expect("value_expression")?)?;
            w.expect("FROM")?;
            let from = lower_value_expression(w.expect("value_expression")?)?;
            let len = if w.take("FOR").is_some() {
                Some(Box::new(lower_value_expression(
                    w.expect("value_expression")?,
                )?))
            } else {
                None
            };
            Ok(Expr::Substring {
                expr: Box::new(expr),
                from: Box::new(from),
                len,
            })
        }
        "trim" => {
            w.expect("TRIM")?;
            w.expect("LPAREN")?;
            let spec = w
                .take_any(&["LEADING", "TRAILING", "BOTH"])
                .map(str::to_string);
            if spec.is_some() {
                w.expect("FROM")?;
            }
            let expr = lower_value_expression(w.expect("value_expression")?)?;
            Ok(Expr::Trim { spec, expr: Box::new(expr) })
        }
        "position" => {
            w.expect("POSITION")?;
            w.expect("LPAREN")?;
            let needle = lower_value_expression(w.expect("value_expression")?)?;
            w.expect("IN")?;
            let haystack = lower_value_expression(w.expect("value_expression")?)?;
            Ok(Expr::Position {
                needle: Box::new(needle),
                haystack: Box::new(haystack),
            })
        }
        // upper / lower / char_length: single-argument functions
        _ => lower_simple_function(node),
    }
}

/// Functions of shape `KW ( args… )` — the keyword token comes first.
fn lower_simple_function(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    let kw = w
        .bump()
        .and_then(|n| if n.is_token() { Some(n.name().to_string()) } else { None })
        .ok_or_else(|| LowerError { message: "function keyword".into() })?;
    w.expect("LPAREN")?;
    let mut args = Vec::new();
    for ve in w.collect("value_expression") {
        args.push(lower_value_expression(ve)?);
    }
    Ok(Expr::Function { name: kw, quantifier: None, args })
}

fn lower_datetime_function(node: &CstNode) -> Result<Expr, LowerError> {
    match label(node) {
        "extract" => {
            let mut w = Walk::of(node);
            w.expect("EXTRACT")?;
            w.expect("LPAREN")?;
            let field_node = w.expect("interval_field")?;
            let field = field_node
                .tokens()
                .first()
                .and_then(|t| t.token_text())
                .unwrap_or("YEAR")
                .to_uppercase();
            w.expect("FROM")?;
            let expr = lower_value_expression(w.expect("value_expression")?)?;
            Ok(Expr::Extract { field, expr: Box::new(expr) })
        }
        // CURRENT_DATE / CURRENT_TIME / CURRENT_TIMESTAMP
        _ => {
            let name = node
                .tokens()
                .first()
                .map(|t| t.name().to_string())
                .unwrap_or_else(|| "CURRENT_DATE".into());
            Ok(Expr::Function { name, quantifier: None, args: Vec::new() })
        }
    }
}

fn lower_aggregate(node: &CstNode) -> Result<Expr, LowerError> {
    let mut w = Walk::of(node);
    if label(node) == "count_star" {
        return Ok(Expr::Function {
            name: "COUNT".into(),
            quantifier: None,
            args: vec![Expr::Wildcard],
        });
    }
    let kw = w
        .bump()
        .map(|n| n.name().to_string())
        .ok_or_else(|| LowerError { message: "aggregate keyword".into() })?;
    w.expect("LPAREN")?;
    let quantifier = match w.take("agg_quantifier") {
        Some(q) => match q.tokens().first().map(|t| t.name()) {
            Some("DISTINCT") => Some(SetQuantifier::Distinct),
            Some("ALL") => Some(SetQuantifier::All),
            _ => None,
        },
        None => None,
    };
    let arg = lower_value_expression(w.expect("value_expression")?)?;
    Ok(Expr::Function { name: kw, quantifier, args: vec![arg] })
}

fn lower_literal(node: &CstNode) -> Result<Literal, LowerError> {
    let mut w = Walk::of(node);
    let unquote = |s: &str| -> String {
        let inner = &s[1..s.len() - 1];
        inner.replace("''", "'")
    };
    match label(node) {
        "number" => Ok(Literal::Number(w.expect_text("NUMBER")?.to_string())),
        "string" => Ok(Literal::String(unquote(w.expect_text("STRING")?))),
        "true" => Ok(Literal::Boolean(true)),
        "false" => Ok(Literal::Boolean(false)),
        "null" => Ok(Literal::Null),
        "date" => {
            w.expect("DATE")?;
            Ok(Literal::Date(unquote(w.expect_text("STRING")?)))
        }
        "time" => {
            w.expect("TIME")?;
            Ok(Literal::Time(unquote(w.expect_text("STRING")?)))
        }
        "timestamp" => {
            w.expect("TIMESTAMP")?;
            Ok(Literal::Timestamp(unquote(w.expect_text("STRING")?)))
        }
        "interval" => {
            w.expect("INTERVAL")?;
            let negative = matches!(w.take_any(&["PLUS", "MINUS"]), Some("MINUS"));
            let value = unquote(w.expect_text("STRING")?);
            let qualifier = w
                .take("interval_qualifier")
                .map(|q| q.text().to_uppercase())
                .unwrap_or_default();
            Ok(Literal::Interval { negative, value, qualifier })
        }
        other => err(format!("unhandled literal label `{other}`")),
    }
}

fn lower_column_reference(node: &CstNode) -> QualifiedName {
    node.child("identifier_chain")
        .map(lower_identifier_chain)
        .unwrap_or_default()
}

/// The `IDENT` token leaves of an identifier-bearing node (an
/// `identifier_chain`, `table_name`, or `column_name_list`), each with its
/// byte span into the original input. This is the span-carrying variant of
/// the lowering below — semantic passes (name resolution, lineage) use it
/// to anchor diagnostics and edges to concrete source text.
pub fn identifier_parts(node: &CstNode) -> Vec<(String, (usize, usize))> {
    node.tokens()
        .iter()
        .filter(|t| t.name() == "IDENT")
        .filter_map(|t| Some((t.token_text()?.to_string(), t.span()?)))
        .collect()
}

fn lower_identifier_chain(node: &CstNode) -> QualifiedName {
    identifier_parts(node).into_iter().map(|(name, _)| name).collect()
}

fn lower_table_name(node: &CstNode) -> QualifiedName {
    identifier_parts(node).into_iter().map(|(name, _)| name).collect()
}

fn lower_column_name_list(node: &CstNode) -> Result<Vec<String>, LowerError> {
    Ok(identifier_parts(node).into_iter().map(|(name, _)| name).collect())
}

// ---------------------------------------------------------------- data types

fn lower_data_type(node: &CstNode) -> Result<DataType, LowerError> {
    let mut w = Walk::of(node);
    let scalar = lower_scalar_type(w.expect("scalar_type")?)?;
    if w.take("ARRAY").is_some() {
        let bound = if w.take("LBRACKET").is_some() {
            Some(w.expect_text("NUMBER")?.to_string())
        } else {
            None
        };
        return Ok(DataType::Array { element: Box::new(scalar), bound });
    }
    Ok(scalar)
}

fn paren_number(w: &mut Walk<'_>) -> Result<Option<String>, LowerError> {
    if w.take("LPAREN").is_some() {
        let n = w.expect_text("NUMBER")?.to_string();
        // leave RPAREN and possible COMMA to the caller where needed
        Ok(Some(n))
    } else {
        Ok(None)
    }
}

fn lower_scalar_type(node: &CstNode) -> Result<DataType, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "character" => {
            w.take_any(&["CHARACTER", "CHAR"]);
            let varying = w.take("VARYING").is_some();
            let length = paren_number(&mut w)?;
            Ok(DataType::Character { varying, length })
        }
        "varchar" => {
            w.expect("VARCHAR")?;
            let length = paren_number(&mut w)?;
            Ok(DataType::Varchar(length))
        }
        "clob" => Ok(DataType::Clob),
        "decimal" => {
            w.take_any(&["NUMERIC", "DECIMAL", "DEC"]);
            let precision = paren_number(&mut w)?;
            let scale = if w.take("COMMA").is_some() {
                Some(w.expect_text("NUMBER")?.to_string())
            } else {
                None
            };
            Ok(DataType::Decimal { precision, scale })
        }
        "smallint" => Ok(DataType::SmallInt),
        "integer" => Ok(DataType::Integer),
        "bigint" => Ok(DataType::BigInt),
        "float" => {
            w.expect("FLOAT")?;
            Ok(DataType::Float(paren_number(&mut w)?))
        }
        "real" => Ok(DataType::Real),
        "double" => Ok(DataType::Double),
        "boolean" => Ok(DataType::Boolean),
        "date" => Ok(DataType::Date),
        "time" | "timestamp" => {
            let is_time = label(node) == "time";
            w.take_any(&["TIME", "TIMESTAMP"]);
            let precision = paren_number(&mut w)?;
            if precision.is_some() {
                w.take("RPAREN");
            }
            let with_time_zone = match w.take_any(&["WITH", "WITHOUT"]) {
                Some("WITH") => Some(true),
                Some("WITHOUT") => Some(false),
                _ => None,
            };
            Ok(if is_time {
                DataType::Time { precision, with_time_zone }
            } else {
                DataType::Timestamp { precision, with_time_zone }
            })
        }
        "interval" => {
            w.expect("INTERVAL")?;
            let q = w
                .take("interval_qualifier")
                .map(|q| q.text().to_uppercase())
                .unwrap_or_default();
            Ok(DataType::Interval(q))
        }
        "blob" => Ok(DataType::Blob),
        "binary" => {
            w.expect("BINARY")?;
            let varying = w.take("VARYING").is_some();
            let length = paren_number(&mut w)?;
            Ok(DataType::Binary { varying, length })
        }
        other => err(format!("unhandled scalar_type label `{other}`")),
    }
}

// ---------------------------------------------------------------- DML

fn lower_insert(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("INSERT")?;
    w.expect("INTO")?;
    let table = lower_table_name(w.expect("table_name")?);
    let mut columns = Vec::new();
    if w.take("LPAREN").is_some() {
        columns = lower_column_name_list(w.expect("column_name_list")?)?;
        w.expect("RPAREN")?;
    }
    let src = w.expect("insert_source")?;
    let source = match label(src) {
        "values" => {
            let mut sw = Walk::of(src);
            sw.expect("VALUES")?;
            let mut rows = Vec::new();
            for rc in sw.collect("row_constructor") {
                let mut rw = Walk::of(rc);
                rw.expect("LPAREN")?;
                let mut row = Vec::new();
                for iv in rw.collect("insert_value") {
                    row.push(lower_insert_value(iv)?);
                }
                rows.push(row);
            }
            InsertSource::Values(rows)
        }
        "query" => InsertSource::Query(Box::new(lower_query(
            src.child("query_expression")
                .ok_or_else(|| LowerError { message: "insert query".into() })?,
        )?)),
        "default_values" => InsertSource::DefaultValues,
        other => return err(format!("unhandled insert_source label `{other}`")),
    };
    Ok(Statement::Insert(Insert { table, columns, source }))
}

fn lower_insert_value(node: &CstNode) -> Result<Expr, LowerError> {
    match label(node) {
        "default" => Ok(Expr::Default),
        _ => lower_value_expression(&node.children()[0]),
    }
}

fn lower_set_clauses(w: &mut Walk<'_>) -> Result<Vec<(String, Expr)>, LowerError> {
    let mut out = Vec::new();
    for sc in w.collect("set_clause") {
        let mut sw = Walk::of(sc);
        let col = sw.expect_text("IDENT")?.to_string();
        sw.expect("EQ")?;
        let src = sw.expect("update_source")?;
        let expr = match label(src) {
            "default" => Expr::Default,
            _ => lower_value_expression(&src.children()[0])?,
        };
        out.push((col, expr));
    }
    Ok(out)
}

fn lower_update(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("UPDATE")?;
    let table = lower_table_name(w.expect("table_name")?);
    w.expect("SET")?;
    let assignments = lower_set_clauses(&mut w)?;
    let selection = lower_update_selection(&mut w, label(node) == "positioned")?;
    Ok(Statement::Update(Update { table, assignments, selection }))
}

fn lower_update_selection(
    w: &mut Walk<'_>,
    positioned: bool,
) -> Result<Option<UpdateSelection>, LowerError> {
    if positioned {
        w.expect("WHERE")?;
        w.expect("CURRENT")?;
        w.expect("OF")?;
        return Ok(Some(UpdateSelection::CurrentOf(
            w.expect_text("IDENT")?.to_string(),
        )));
    }
    if w.take("WHERE").is_some() {
        return Ok(Some(UpdateSelection::Searched(lower_search_condition(
            w.expect("search_condition")?,
        )?)));
    }
    Ok(None)
}

fn lower_delete(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("DELETE")?;
    w.expect("FROM")?;
    let table = lower_table_name(w.expect("table_name")?);
    let selection = lower_update_selection(&mut w, label(node) == "positioned")?;
    Ok(Statement::Delete(Delete { table, selection }))
}

fn lower_merge(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("MERGE")?;
    w.expect("INTO")?;
    let target = lower_table_name(w.expect("table_name")?);
    w.expect("USING")?;
    let source = lower_table_name(w.expect("table_name")?);
    w.expect("ON")?;
    let on = lower_search_condition(w.expect("search_condition")?)?;
    let mut when = Vec::new();
    while let Some(mw) = w.take("merge_when") {
        let mut ww = Walk::of(mw);
        ww.expect("WHEN")?;
        if label(mw) == "matched" {
            ww.expect("MATCHED")?;
            ww.expect("THEN")?;
            ww.expect("UPDATE")?;
            ww.expect("SET")?;
            when.push(MergeWhen::MatchedUpdate(lower_set_clauses(&mut ww)?));
        } else {
            ww.expect("NOT")?;
            ww.expect("MATCHED")?;
            ww.expect("THEN")?;
            ww.expect("INSERT")?;
            let mut columns = Vec::new();
            if ww.take("LPAREN").is_some() {
                columns = lower_column_name_list(ww.expect("column_name_list")?)?;
                ww.expect("RPAREN")?;
            }
            ww.expect("VALUES")?;
            let rc = ww.expect("row_constructor")?;
            let mut rw = Walk::of(rc);
            rw.expect("LPAREN")?;
            let mut values = Vec::new();
            for iv in rw.collect("insert_value") {
                values.push(lower_insert_value(iv)?);
            }
            when.push(MergeWhen::NotMatchedInsert { columns, values });
        }
    }
    Ok(Statement::Merge(Merge { target, source, on, when }))
}

// ---------------------------------------------------------------- DDL

fn lower_create_table(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("CREATE")?;
    let temporary = match w.take_any(&["GLOBAL", "LOCAL"]) {
        Some("GLOBAL") => {
            w.expect("TEMPORARY")?;
            Some(TableScope::Global)
        }
        Some("LOCAL") => {
            w.expect("TEMPORARY")?;
            Some(TableScope::Local)
        }
        _ => None,
    };
    w.expect("TABLE")?;
    let name = lower_table_name(w.expect("table_name")?);
    w.expect("LPAREN")?;
    let mut columns = Vec::new();
    let mut constraints = Vec::new();
    for el in w.collect("table_element") {
        match label(el) {
            "constraint" => constraints.push(lower_table_constraint(
                el.child("table_constraint")
                    .ok_or_else(|| LowerError { message: "table_constraint".into() })?,
            )?),
            _ => columns.push(lower_column_def(
                el.child("column_definition")
                    .ok_or_else(|| LowerError { message: "column_definition".into() })?,
            )?),
        }
    }
    Ok(Statement::CreateTable(CreateTable { name, temporary, columns, constraints }))
}

fn lower_column_def(node: &CstNode) -> Result<ColumnDef, LowerError> {
    let mut w = Walk::of(node);
    let name = w.expect_text("IDENT")?.to_string();
    let data_type = lower_data_type(w.expect("data_type")?)?;
    let default = if w.take("DEFAULT").is_some() {
        Some(lower_literal(w.expect("literal")?)?)
    } else {
        None
    };
    let identity = if w.take("GENERATED").is_some() {
        w.expect("ALWAYS")?;
        w.expect("AS")?;
        w.expect("IDENTITY")?;
        true
    } else {
        false
    };
    let mut constraints = Vec::new();
    while let Some(cc) = w.take("column_constraint") {
        constraints.push(lower_column_constraint(cc)?);
    }
    Ok(ColumnDef { name, data_type, default, identity, constraints })
}

fn lower_column_constraint(node: &CstNode) -> Result<ColumnConstraint, LowerError> {
    let mut w = Walk::of(node);
    match label(node) {
        "not_null" => Ok(ColumnConstraint::NotNull),
        "unique" => Ok(ColumnConstraint::Unique),
        "primary_key" => Ok(ColumnConstraint::PrimaryKey),
        "check" => {
            w.expect("CHECK")?;
            w.expect("LPAREN")?;
            Ok(ColumnConstraint::Check(lower_search_condition(
                w.expect("search_condition")?,
            )?))
        }
        "references" => {
            w.expect("REFERENCES")?;
            let table = lower_table_name(w.expect("table_name")?);
            let mut columns = Vec::new();
            if w.take("LPAREN").is_some() {
                columns = lower_column_name_list(w.expect("column_name_list")?)?;
            }
            Ok(ColumnConstraint::References { table, columns })
        }
        other => err(format!("unhandled column_constraint label `{other}`")),
    }
}

fn lower_table_constraint(node: &CstNode) -> Result<TableConstraint, LowerError> {
    let mut w = Walk::of(node);
    let name = if w.take("CONSTRAINT").is_some() {
        Some(w.expect_text("IDENT")?.to_string())
    } else {
        None
    };
    let body_node = w.expect("table_constraint_body")?;
    let mut bw = Walk::of(body_node);
    let body = match label(body_node) {
        "primary_key" => {
            bw.expect("PRIMARY")?;
            bw.expect("KEY")?;
            bw.expect("LPAREN")?;
            TableConstraintBody::PrimaryKey(lower_column_name_list(
                bw.expect("column_name_list")?,
            )?)
        }
        "unique" => {
            bw.expect("UNIQUE")?;
            bw.expect("LPAREN")?;
            TableConstraintBody::Unique(lower_column_name_list(
                bw.expect("column_name_list")?,
            )?)
        }
        "foreign_key" => {
            bw.expect("FOREIGN")?;
            bw.expect("KEY")?;
            bw.expect("LPAREN")?;
            let columns = lower_column_name_list(bw.expect("column_name_list")?)?;
            bw.expect("RPAREN")?;
            bw.expect("REFERENCES")?;
            let table = lower_table_name(bw.expect("table_name")?);
            let mut ref_columns = Vec::new();
            if bw.take("LPAREN").is_some() {
                ref_columns = lower_column_name_list(bw.expect("column_name_list")?)?;
                bw.expect("RPAREN")?;
            }
            let mut on_delete = None;
            let mut on_update = None;
            while bw.take("ON").is_some() {
                let which = bw.take_any(&["DELETE", "UPDATE"]);
                let action = bw
                    .take("referential_action")
                    .map(|a| a.text().to_uppercase());
                match which {
                    Some("DELETE") => on_delete = action,
                    Some("UPDATE") => on_update = action,
                    _ => return err("bad referential trigger"),
                }
            }
            TableConstraintBody::ForeignKey { columns, table, ref_columns, on_delete, on_update }
        }
        "check" => {
            bw.expect("CHECK")?;
            bw.expect("LPAREN")?;
            TableConstraintBody::Check(lower_search_condition(
                bw.expect("search_condition")?,
            )?)
        }
        other => return err(format!("unhandled table_constraint_body label `{other}`")),
    };
    Ok(TableConstraint { name, body })
}

fn lower_create_view(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("CREATE")?;
    let recursive = w.take("RECURSIVE").is_some();
    w.expect("VIEW")?;
    let name = lower_table_name(w.expect("table_name")?);
    let mut columns = Vec::new();
    if w.take("LPAREN").is_some() {
        columns = lower_column_name_list(w.expect("column_name_list")?)?;
        w.expect("RPAREN")?;
    }
    w.expect("AS")?;
    let query = lower_query(w.expect("query_expression")?)?;
    let with_check_option = w.take("WITH").is_some();
    Ok(Statement::CreateView(CreateView {
        name,
        recursive,
        columns,
        query: Box::new(query),
        with_check_option,
    }))
}

fn lower_create_schema(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("CREATE")?;
    w.expect("SCHEMA")?;
    let name = w.expect_text("IDENT")?.to_string();
    let authorization = if w.take("AUTHORIZATION").is_some() {
        Some(w.expect_text("IDENT")?.to_string())
    } else {
        None
    };
    Ok(Statement::CreateSchema { name, authorization })
}

fn lower_create_domain(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("CREATE")?;
    w.expect("DOMAIN")?;
    let name = w.expect_text("IDENT")?.to_string();
    w.take("AS");
    let data_type = lower_data_type(w.expect("data_type")?)?;
    let default = if w.take("DEFAULT").is_some() {
        Some(lower_literal(w.expect("literal")?)?)
    } else {
        None
    };
    let check = if w.take("CHECK").is_some() {
        w.expect("LPAREN")?;
        Some(lower_search_condition(w.expect("search_condition")?)?)
    } else {
        None
    };
    Ok(Statement::CreateDomain { name, data_type, default, check })
}

fn drop_behavior(w: &mut Walk<'_>) -> Option<DropBehavior> {
    match w.take_any(&["CASCADE", "RESTRICT"]) {
        Some("CASCADE") => Some(DropBehavior::Cascade),
        Some("RESTRICT") => Some(DropBehavior::Restrict),
        _ => None,
    }
}

fn lower_alter_table(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("ALTER")?;
    w.expect("TABLE")?;
    let name = lower_table_name(w.expect("table_name")?);
    let act = w.expect("alter_action")?;
    let mut aw = Walk::of(act);
    let action = match label(act) {
        "add_column" => {
            aw.expect("ADD")?;
            aw.take("COLUMN");
            AlterAction::AddColumn(lower_column_def(aw.expect("column_definition")?)?)
        }
        "drop_column" => {
            aw.expect("DROP")?;
            aw.take("COLUMN");
            let name = aw.expect_text("IDENT")?.to_string();
            AlterAction::DropColumn { name, behavior: drop_behavior(&mut aw) }
        }
        "set_default" => {
            aw.expect("ALTER")?;
            aw.take("COLUMN");
            let col = aw.expect_text("IDENT")?.to_string();
            aw.expect("SET")?;
            aw.expect("DEFAULT")?;
            AlterAction::SetDefault {
                name: col,
                default: lower_literal(aw.expect("literal")?)?,
            }
        }
        "drop_default" => {
            aw.expect("ALTER")?;
            aw.take("COLUMN");
            let col = aw.expect_text("IDENT")?.to_string();
            AlterAction::DropDefault { name: col }
        }
        "add_constraint" => {
            aw.expect("ADD")?;
            AlterAction::AddConstraint(lower_table_constraint(
                aw.expect("table_constraint")?,
            )?)
        }
        "drop_constraint" => {
            aw.expect("DROP")?;
            aw.expect("CONSTRAINT")?;
            let name = aw.expect_text("IDENT")?.to_string();
            AlterAction::DropConstraint { name, behavior: drop_behavior(&mut aw) }
        }
        other => return err(format!("unhandled alter_action label `{other}`")),
    };
    Ok(Statement::AlterTable { name, action })
}

fn lower_drop(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    w.expect("DROP")?;
    let kind = match w.take_any(&["TABLE", "VIEW", "SCHEMA", "DOMAIN"]) {
        Some("TABLE") => ObjectKind::Table,
        Some("VIEW") => ObjectKind::View,
        Some("SCHEMA") => ObjectKind::Schema,
        Some("DOMAIN") => ObjectKind::Domain,
        _ => return err("bad drop_statement"),
    };
    let name = lower_table_name(w.expect("table_name")?);
    Ok(Statement::Drop { kind, name, behavior: drop_behavior(&mut w) })
}

// ---------------------------------------------------------------- DCL / TCL / session / cursor

fn lower_privileges(node: &CstNode) -> Privileges {
    if label(node) == "all" {
        return Privileges::All;
    }
    Privileges::Actions(
        node.children()
            .iter()
            .filter(|c| c.name() == "privilege")
            .filter_map(|p| p.tokens().first().map(|t| t.name().to_string()))
            .collect(),
    )
}

fn lower_grantees(w: &mut Walk<'_>) -> Vec<String> {
    w.collect("grantee")
        .into_iter()
        .filter_map(|g| {
            g.tokens()
                .first()
                .and_then(|t| match t.name() {
                    "PUBLIC" => Some("PUBLIC".to_string()),
                    _ => t.token_text().map(str::to_string),
                })
        })
        .collect()
}

fn lower_object_name(node: &CstNode) -> QualifiedName {
    node.child("table_name")
        .map(lower_table_name)
        .unwrap_or_default()
}

fn lower_grant(node: &CstNode, revoke: bool) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    if revoke {
        w.expect("REVOKE")?;
        let grant_option = if w.take("GRANT").is_some() {
            w.expect("OPTION")?;
            w.expect("FOR")?;
            true
        } else {
            false
        };
        let privileges = lower_privileges(w.expect("privileges")?);
        w.expect("ON")?;
        let object = lower_object_name(w.expect("object_name")?);
        w.expect("FROM")?;
        let grantees = lower_grantees(&mut w);
        let behavior = drop_behavior(&mut w);
        return Ok(Statement::Revoke(Grant {
            privileges,
            object,
            grantees,
            grant_option,
            behavior,
        }));
    }
    w.expect("GRANT")?;
    let privileges = lower_privileges(w.expect("privileges")?);
    w.expect("ON")?;
    let object = lower_object_name(w.expect("object_name")?);
    w.expect("TO")?;
    let grantees = lower_grantees(&mut w);
    let grant_option = w.take("WITH").is_some();
    Ok(Statement::Grant(Grant {
        privileges,
        object,
        grantees,
        grant_option,
        behavior: None,
    }))
}

fn lower_transaction(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    let tx = match label(node) {
        "start" => {
            w.expect("START")?;
            w.expect("TRANSACTION")?;
            let modes = match w.take("transaction_modes") {
                Some(m) => m
                    .children_named("transaction_mode")
                    .map(|tm| tm.text().to_uppercase())
                    .collect(),
                None => Vec::new(),
            };
            TransactionStatement::Start(modes)
        }
        "commit" => TransactionStatement::Commit,
        "rollback" => TransactionStatement::Rollback,
        "rollback_to" => {
            w.expect("ROLLBACK")?;
            w.take("WORK");
            w.expect("TO")?;
            w.take("SAVEPOINT");
            TransactionStatement::RollbackTo(w.expect_text("IDENT")?.to_string())
        }
        "savepoint" => {
            w.expect("SAVEPOINT")?;
            TransactionStatement::Savepoint(w.expect_text("IDENT")?.to_string())
        }
        "release" => {
            w.expect("RELEASE")?;
            w.expect("SAVEPOINT")?;
            TransactionStatement::Release(w.expect_text("IDENT")?.to_string())
        }
        "set_transaction" => {
            w.expect("SET")?;
            let local = w.take("LOCAL").is_some();
            w.expect("TRANSACTION")?;
            let modes = match w.take("transaction_modes") {
                Some(m) => m
                    .children_named("transaction_mode")
                    .map(|tm| tm.text().to_uppercase())
                    .collect(),
                None => Vec::new(),
            };
            TransactionStatement::SetTransaction { local, modes }
        }
        other => return err(format!("unhandled transaction label `{other}`")),
    };
    Ok(Statement::Transaction(tx))
}

fn lower_session(node: &CstNode) -> Result<Statement, LowerError> {
    let value = |n: &CstNode| -> String {
        n.tokens()
            .iter()
            .rev()
            .find(|t| matches!(t.name(), "IDENT" | "STRING" | "NONE" | "LOCAL"))
            .and_then(|t| t.token_text())
            .unwrap_or_default()
            .to_string()
    };
    let s = match label(node) {
        "set_schema" => SessionStatement::SetSchema(value(node)),
        "set_role" => SessionStatement::SetRole(value(node)),
        "set_session_authorization" => SessionStatement::SetSessionAuthorization(value(node)),
        "set_time_zone" => SessionStatement::SetTimeZone(value(node)),
        other => return err(format!("unhandled session label `{other}`")),
    };
    Ok(Statement::Session(s))
}

fn lower_cursor(node: &CstNode) -> Result<Statement, LowerError> {
    let mut w = Walk::of(node);
    let c = match label(node) {
        "declare" => {
            let dc = w.expect("declare_cursor")?;
            let mut dw = Walk::of(dc);
            dw.expect("DECLARE")?;
            let name = dw.expect_text("IDENT")?.to_string();
            let sensitivity = dw
                .take_any(&["SENSITIVE", "INSENSITIVE", "ASENSITIVE"])
                .map(str::to_string);
            let scroll = if dw.take("NO").is_some() {
                dw.expect("SCROLL")?;
                Some(false)
            } else if dw.take("SCROLL").is_some() {
                Some(true)
            } else {
                None
            };
            dw.expect("CURSOR")?;
            let hold = match dw.take_any(&["WITH", "WITHOUT"]) {
                Some("WITH") => {
                    dw.expect("HOLD")?;
                    Some(true)
                }
                Some("WITHOUT") => {
                    dw.expect("HOLD")?;
                    Some(false)
                }
                _ => None,
            };
            dw.expect("FOR")?;
            let query = lower_query(dw.expect("query_expression")?)?;
            CursorStatement::Declare {
                name,
                sensitivity,
                scroll,
                hold,
                query: Box::new(query),
            }
        }
        "open" => {
            w.expect("OPEN")?;
            CursorStatement::Open(w.expect_text("IDENT")?.to_string())
        }
        "close" => {
            w.expect("CLOSE")?;
            CursorStatement::Close(w.expect_text("IDENT")?.to_string())
        }
        "fetch" => {
            let fs = w.expect("fetch_statement")?;
            let mut fw = Walk::of(fs);
            fw.expect("FETCH")?;
            let orientation = match fw.take_any(&["NEXT", "PRIOR", "FIRST", "LAST"]) {
                Some(o) => Some(o.to_string()),
                None => match fw.take_any(&["ABSOLUTE", "RELATIVE"]) {
                    Some(o) => Some(format!("{o} {}", fw.expect_text("NUMBER")?)),
                    None => None,
                },
            };
            fw.take("FROM");
            CursorStatement::Fetch {
                orientation,
                name: fw.expect_text("IDENT")?.to_string(),
            }
        }
        other => return err(format!("unhandled cursor label `{other}`")),
    };
    Ok(Statement::Cursor(c))
}

//! Typed SQL abstract syntax.
//!
//! One AST serves every dialect of the product line: parsers for scaled-down
//! dialects simply never produce the variants of unselected features. The
//! same types are produced by the monolithic baseline parser
//! (`sqlweave-baseline`), enabling differential testing.

/// A dotted name such as `schema.table` or `t.column`.
pub type QualifiedName = Vec<String>;

/// Any SQL statement of the product line.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query expression (SELECT …).
    Query(Query),
    /// INSERT INTO.
    Insert(Insert),
    /// UPDATE.
    Update(Update),
    /// DELETE FROM.
    Delete(Delete),
    /// MERGE INTO.
    Merge(Merge),
    /// CREATE TABLE.
    CreateTable(CreateTable),
    /// CREATE VIEW.
    CreateView(CreateView),
    /// CREATE SCHEMA.
    CreateSchema {
        /// Schema name.
        name: String,
        /// AUTHORIZATION user.
        authorization: Option<String>,
    },
    /// CREATE DOMAIN.
    CreateDomain {
        /// Domain name.
        name: String,
        /// Underlying type.
        data_type: DataType,
        /// DEFAULT literal.
        default: Option<Literal>,
        /// CHECK condition.
        check: Option<Expr>,
    },
    /// ALTER TABLE.
    AlterTable {
        /// Target table.
        name: QualifiedName,
        /// The action performed.
        action: AlterAction,
    },
    /// DROP TABLE/VIEW/SCHEMA/DOMAIN.
    Drop {
        /// What kind of object.
        kind: ObjectKind,
        /// Object name.
        name: QualifiedName,
        /// CASCADE/RESTRICT.
        behavior: Option<DropBehavior>,
    },
    /// GRANT.
    Grant(Grant),
    /// REVOKE.
    Revoke(Grant),
    /// Transaction control.
    Transaction(TransactionStatement),
    /// Session SET statements.
    Session(SessionStatement),
    /// Cursor management.
    Cursor(CursorStatement),
}

/// A full query: optional WITH, a body, and postfix clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Common table expressions.
    pub with: Vec<Cte>,
    /// `true` for `WITH RECURSIVE`.
    pub recursive: bool,
    /// The query body (select core and set operations).
    pub body: QueryBody,
    /// ORDER BY items.
    pub order_by: Vec<SortSpec>,
    /// OFFSET row count.
    pub offset: Option<String>,
    /// FETCH FIRST row count.
    pub fetch: Option<String>,
}

/// One WITH element.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional column list.
    pub columns: Vec<String>,
    /// The defining query.
    pub query: Box<Query>,
}

/// Query body: a select core, possibly combined with set operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A plain SELECT.
    Select(Box<Select>),
    /// A parenthesized query.
    Nested(Box<Query>),
    /// `left UNION/EXCEPT/INTERSECT right` (left-associative chain).
    SetOp {
        /// Left operand.
        left: Box<QueryBody>,
        /// Which operation.
        op: SetOp,
        /// ALL / DISTINCT modifier.
        quantifier: Option<SetQuantifier>,
        /// Right operand.
        right: Box<QueryBody>,
    },
}

/// Set operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// UNION.
    Union,
    /// EXCEPT.
    Except,
    /// INTERSECT.
    Intersect,
}

/// SELECT core.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// DISTINCT / ALL.
    pub quantifier: Option<SetQuantifier>,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM references (empty only in degenerate dialects).
    pub from: Vec<TableRef>,
    /// WHERE condition.
    pub selection: Option<Expr>,
    /// GROUP BY elements.
    pub group_by: Vec<GroupingElement>,
    /// HAVING condition.
    pub having: Option<Expr>,
    /// Named windows.
    pub windows: Vec<WindowDef>,
    /// TinySQL sensor clauses (EPOCH DURATION / SAMPLE PERIOD / LIFETIME).
    pub sensor: SensorClauses,
}

/// DISTINCT or ALL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetQuantifier {
    /// ALL.
    All,
    /// DISTINCT.
    Distinct,
}

/// TinySQL acquisition clauses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensorClauses {
    /// EPOCH DURATION n.
    pub epoch_duration: Option<String>,
    /// SAMPLE PERIOD n.
    pub sample_period: Option<String>,
    /// LIFETIME n.
    pub lifetime: Option<String>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// `t.*`.
    QualifiedStar(QualifiedName),
    /// Expression with optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// AS alias.
        alias: Option<String>,
    },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table with optional alias.
    Named {
        /// Table name.
        name: QualifiedName,
        /// Correlation name.
        alias: Option<String>,
    },
    /// A derived table (subquery) with alias.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Correlation name.
        alias: Option<String>,
    },
    /// A join.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// Right operand.
        right: Box<TableRef>,
        /// ON / USING / natural.
        condition: JoinCondition,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER (or unspecified) JOIN.
    Inner,
    /// LEFT \[OUTER\] JOIN.
    Left,
    /// RIGHT \[OUTER\] JOIN.
    Right,
    /// FULL \[OUTER\] JOIN.
    Full,
    /// CROSS JOIN.
    Cross,
    /// NATURAL \[kind\] JOIN — inner kind preserved.
    Natural,
}

/// Join condition.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinCondition {
    /// No condition (CROSS / NATURAL).
    None,
    /// ON predicate.
    On(Expr),
    /// USING (columns).
    Using(Vec<String>),
}

/// GROUP BY element.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupingElement {
    /// A plain column.
    Column(QualifiedName),
    /// ROLLUP (columns).
    Rollup(Vec<QualifiedName>),
    /// CUBE (columns).
    Cube(Vec<QualifiedName>),
    /// GROUPING SETS (elements).
    GroupingSets(Vec<GroupingElement>),
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Sort key.
    pub expr: Expr,
    /// ASC (false = unspecified/ASC, true = DESC).
    pub descending: bool,
    /// NULLS FIRST / LAST.
    pub nulls_first: Option<bool>,
}

/// Named window definition.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDef {
    /// Window name.
    pub name: String,
    /// PARTITION BY columns.
    pub partition_by: Vec<QualifiedName>,
    /// ORDER BY items.
    pub order_by: Vec<SortSpec>,
    /// Frame clause, printed verbatim.
    pub frame: Option<String>,
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(QualifiedName),
    /// Literal value.
    Literal(Literal),
    /// Unary +/- or NOT.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation (arithmetic, comparison, logic, concat, overlaps).
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Parenthesized / grouped expression.
    Nested(Box<Expr>),
    /// Function call (string/numeric/datetime/aggregate).
    Function {
        /// Uppercased function name.
        name: String,
        /// DISTINCT/ALL inside aggregates.
        quantifier: Option<SetQuantifier>,
        /// Arguments; `COUNT(*)` has a single [`Expr::Wildcard`].
        args: Vec<Expr>,
    },
    /// `*` inside COUNT(*).
    Wildcard,
    /// CASE expression.
    Case {
        /// Operand of a simple CASE.
        operand: Option<Box<Expr>>,
        /// WHEN/THEN pairs.
        when_then: Vec<(Expr, Expr)>,
        /// ELSE branch.
        else_expr: Option<Box<Expr>>,
    },
    /// CAST(expr AS type).
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
    },
    /// EXTRACT(field FROM expr).
    Extract {
        /// Datetime field name (YEAR…SECOND).
        field: String,
        /// Source expression.
        expr: Box<Expr>,
    },
    /// SUBSTRING(expr FROM start [FOR len]).
    Substring {
        /// Source string.
        expr: Box<Expr>,
        /// FROM position.
        from: Box<Expr>,
        /// FOR length.
        len: Option<Box<Expr>>,
    },
    /// TRIM([spec FROM] expr).
    Trim {
        /// LEADING/TRAILING/BOTH.
        spec: Option<String>,
        /// Source string.
        expr: Box<Expr>,
    },
    /// POSITION(needle IN haystack).
    Position {
        /// Needle.
        needle: Box<Expr>,
        /// Haystack.
        haystack: Box<Expr>,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
    /// EXISTS (query).
    Exists(Box<Query>),
    /// expr \[NOT\] BETWEEN low AND high.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// expr \[NOT\] IN (list).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// The list.
        list: Vec<Expr>,
    },
    /// expr \[NOT\] IN (query).
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// The subquery.
        query: Box<Query>,
    },
    /// expr \[NOT\] LIKE pattern \[ESCAPE e\].
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// Pattern.
        pattern: Box<Expr>,
        /// ESCAPE character expression.
        escape: Option<Box<Expr>>,
    },
    /// expr IS \[NOT\] NULL.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// expr IS \[NOT\] TRUE/FALSE/UNKNOWN.
    IsTruthValue {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// `TRUE`, `FALSE`, or `UNKNOWN`.
        value: String,
    },
    /// Ranking window function: `RANK() OVER (…)` etc.
    WindowFunction {
        /// `RANK`, `DENSE_RANK`, or `ROW_NUMBER`.
        name: String,
        /// PARTITION BY columns.
        partition_by: Vec<QualifiedName>,
        /// ORDER BY items.
        order_by: Vec<SortSpec>,
        /// Frame clause, printed verbatim.
        frame: Option<String>,
    },
    /// expr IS \[NOT\] DISTINCT FROM other.
    IsDistinctFrom {
        /// Left side.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
        /// Right side.
        other: Box<Expr>,
    },
    /// expr op ALL/ANY/SOME (query).
    Quantified {
        /// Left side.
        expr: Box<Expr>,
        /// Comparison operator.
        op: BinaryOp,
        /// ALL / ANY / SOME.
        quantifier: String,
        /// The subquery.
        query: Box<Query>,
    },
    /// DEFAULT (in INSERT/UPDATE sources).
    Default,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Multiply,
    /// `/`.
    Divide,
    /// `||`.
    Concat,
    /// `=`.
    Eq,
    /// `<>`.
    Neq,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// AND.
    And,
    /// OR.
    Or,
    /// OVERLAPS.
    Overlaps,
}

impl BinaryOp {
    /// The SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Overlaps => "OVERLAPS",
        }
    }
}

/// Literal values (lexical form preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal, original spelling.
    Number(String),
    /// Character string (with quotes stripped, `''` unescaped).
    String(String),
    /// TRUE/FALSE.
    Boolean(bool),
    /// NULL.
    Null,
    /// DATE 'lit'.
    Date(String),
    /// TIME 'lit'.
    Time(String),
    /// TIMESTAMP 'lit'.
    Timestamp(String),
    /// INTERVAL \[sign\] 'lit' qualifier.
    Interval {
        /// `-` sign present.
        negative: bool,
        /// The quoted body.
        value: String,
        /// e.g. `DAY TO SECOND`.
        qualifier: String,
    },
}

/// SQL data types.
#[derive(Debug, Clone, PartialEq)]
pub enum DataType {
    /// CHAR/CHARACTER \[VARYING\] (n).
    Character {
        /// VARYING flag.
        varying: bool,
        /// Length.
        length: Option<String>,
    },
    /// VARCHAR (n).
    Varchar(Option<String>),
    /// CLOB.
    Clob,
    /// NUMERIC/DECIMAL (p, s).
    Decimal {
        /// Precision.
        precision: Option<String>,
        /// Scale.
        scale: Option<String>,
    },
    /// SMALLINT.
    SmallInt,
    /// INTEGER.
    Integer,
    /// BIGINT.
    BigInt,
    /// FLOAT (p).
    Float(Option<String>),
    /// REAL.
    Real,
    /// DOUBLE PRECISION.
    Double,
    /// BOOLEAN.
    Boolean,
    /// DATE.
    Date,
    /// TIME (p) \[WITH TIME ZONE\].
    Time {
        /// Precision.
        precision: Option<String>,
        /// WITH TIME ZONE flag (None = unspecified).
        with_time_zone: Option<bool>,
    },
    /// TIMESTAMP (p) \[WITH TIME ZONE\].
    Timestamp {
        /// Precision.
        precision: Option<String>,
        /// WITH TIME ZONE flag.
        with_time_zone: Option<bool>,
    },
    /// INTERVAL qualifier.
    Interval(String),
    /// BLOB.
    Blob,
    /// BINARY \[VARYING\] (n).
    Binary {
        /// VARYING flag.
        varying: bool,
        /// Length.
        length: Option<String>,
    },
    /// element-type ARRAY \[n\].
    Array {
        /// Element type.
        element: Box<DataType>,
        /// Optional bound.
        bound: Option<String>,
    },
}

/// INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: QualifiedName,
    /// Explicit column list.
    pub columns: Vec<String>,
    /// The row source.
    pub source: InsertSource,
}

/// INSERT row source.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// VALUES rows.
    Values(Vec<Vec<Expr>>),
    /// A query.
    Query(Box<Query>),
    /// DEFAULT VALUES.
    DefaultValues,
}

/// UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: QualifiedName,
    /// SET assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE condition.
    pub selection: Option<UpdateSelection>,
}

/// WHERE of UPDATE/DELETE: searched or positioned.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateSelection {
    /// WHERE condition.
    Searched(Expr),
    /// WHERE CURRENT OF cursor.
    CurrentOf(String),
}

/// DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: QualifiedName,
    /// WHERE condition.
    pub selection: Option<UpdateSelection>,
}

/// MERGE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// Target table.
    pub target: QualifiedName,
    /// Source table.
    pub source: QualifiedName,
    /// ON condition.
    pub on: Expr,
    /// WHEN branches.
    pub when: Vec<MergeWhen>,
}

/// One WHEN branch of MERGE.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeWhen {
    /// WHEN MATCHED THEN UPDATE SET …
    MatchedUpdate(Vec<(String, Expr)>),
    /// WHEN NOT MATCHED THEN INSERT … VALUES …
    NotMatchedInsert {
        /// Column list.
        columns: Vec<String>,
        /// The single VALUES row.
        values: Vec<Expr>,
    },
}

/// CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: QualifiedName,
    /// GLOBAL/LOCAL TEMPORARY marker.
    pub temporary: Option<TableScope>,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table constraints.
    pub constraints: Vec<TableConstraint>,
}

/// Temporary-table scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableScope {
    /// GLOBAL TEMPORARY.
    Global,
    /// LOCAL TEMPORARY.
    Local,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// DEFAULT literal.
    pub default: Option<Literal>,
    /// GENERATED ALWAYS AS IDENTITY flag.
    pub identity: bool,
    /// Inline constraints.
    pub constraints: Vec<ColumnConstraint>,
}

/// Inline column constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnConstraint {
    /// NOT NULL.
    NotNull,
    /// UNIQUE.
    Unique,
    /// PRIMARY KEY.
    PrimaryKey,
    /// CHECK (condition).
    Check(Expr),
    /// REFERENCES table (columns).
    References {
        /// Referenced table.
        table: QualifiedName,
        /// Referenced columns.
        columns: Vec<String>,
    },
}

/// Table-level constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct TableConstraint {
    /// CONSTRAINT name.
    pub name: Option<String>,
    /// The body.
    pub body: TableConstraintBody,
}

/// Table-level constraint body.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraintBody {
    /// PRIMARY KEY (columns).
    PrimaryKey(Vec<String>),
    /// UNIQUE (columns).
    Unique(Vec<String>),
    /// FOREIGN KEY … REFERENCES …
    ForeignKey {
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        table: QualifiedName,
        /// Referenced columns.
        ref_columns: Vec<String>,
        /// ON DELETE action.
        on_delete: Option<String>,
        /// ON UPDATE action.
        on_update: Option<String>,
    },
    /// CHECK (condition).
    Check(Expr),
}

/// CREATE VIEW statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View name.
    pub name: QualifiedName,
    /// RECURSIVE flag.
    pub recursive: bool,
    /// Column list.
    pub columns: Vec<String>,
    /// The defining query.
    pub query: Box<Query>,
    /// WITH CHECK OPTION flag.
    pub with_check_option: bool,
}

/// ALTER TABLE action.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterAction {
    /// ADD COLUMN.
    AddColumn(ColumnDef),
    /// DROP COLUMN.
    DropColumn {
        /// Column name.
        name: String,
        /// CASCADE/RESTRICT.
        behavior: Option<DropBehavior>,
    },
    /// ALTER COLUMN SET DEFAULT.
    SetDefault {
        /// Column name.
        name: String,
        /// The default.
        default: Literal,
    },
    /// ALTER COLUMN DROP DEFAULT.
    DropDefault {
        /// Column name.
        name: String,
    },
    /// ADD table constraint.
    AddConstraint(TableConstraint),
    /// DROP CONSTRAINT.
    DropConstraint {
        /// Constraint name.
        name: String,
        /// CASCADE/RESTRICT.
        behavior: Option<DropBehavior>,
    },
}

/// Droppable object kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// TABLE.
    Table,
    /// VIEW.
    View,
    /// SCHEMA.
    Schema,
    /// DOMAIN.
    Domain,
}

/// CASCADE/RESTRICT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropBehavior {
    /// CASCADE.
    Cascade,
    /// RESTRICT.
    Restrict,
}

/// GRANT/REVOKE statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    /// ALL PRIVILEGES, or the listed actions.
    pub privileges: Privileges,
    /// Target object.
    pub object: QualifiedName,
    /// Grantees (`PUBLIC` appears verbatim).
    pub grantees: Vec<String>,
    /// WITH GRANT OPTION (grant) / GRANT OPTION FOR (revoke).
    pub grant_option: bool,
    /// CASCADE/RESTRICT (revoke only).
    pub behavior: Option<DropBehavior>,
}

/// Privilege list.
#[derive(Debug, Clone, PartialEq)]
pub enum Privileges {
    /// ALL PRIVILEGES.
    All,
    /// A list of actions (SELECT, INSERT, …), uppercased.
    Actions(Vec<String>),
}

/// Transaction-control statements.
#[derive(Debug, Clone, PartialEq)]
pub enum TransactionStatement {
    /// START TRANSACTION \[modes\].
    Start(Vec<String>),
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// ROLLBACK TO SAVEPOINT name.
    RollbackTo(String),
    /// SAVEPOINT name.
    Savepoint(String),
    /// RELEASE SAVEPOINT name.
    Release(String),
    /// SET \[LOCAL\] TRANSACTION modes.
    SetTransaction {
        /// LOCAL flag.
        local: bool,
        /// Mode strings.
        modes: Vec<String>,
    },
}

/// Session SET statements.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatement {
    /// SET SCHEMA name.
    SetSchema(String),
    /// SET ROLE name|NONE.
    SetRole(String),
    /// SET SESSION AUTHORIZATION name.
    SetSessionAuthorization(String),
    /// SET TIME ZONE LOCAL|'tz'.
    SetTimeZone(String),
}

/// Cursor-management statements.
#[derive(Debug, Clone, PartialEq)]
pub enum CursorStatement {
    /// DECLARE name … CURSOR … FOR query.
    Declare {
        /// Cursor name.
        name: String,
        /// SENSITIVE/INSENSITIVE/ASENSITIVE.
        sensitivity: Option<String>,
        /// \[NO\] SCROLL.
        scroll: Option<bool>,
        /// WITH/WITHOUT HOLD.
        hold: Option<bool>,
        /// The cursor's query.
        query: Box<Query>,
    },
    /// OPEN name.
    Open(String),
    /// CLOSE name.
    Close(String),
    /// FETCH \[orientation\] \[FROM\] name.
    Fetch {
        /// NEXT/PRIOR/FIRST/LAST/ABSOLUTE n/RELATIVE n.
        orientation: Option<String>,
        /// Cursor name.
        name: String,
    },
}

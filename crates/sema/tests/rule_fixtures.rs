//! One fixture per semantic (SW4xx) diagnostic code, plus silence checks:
//! each rule fires on its minimal trigger and stays quiet on the clean
//! bench corpus across every dialect. Companion to the structural fixture
//! file in `crates/lint/tests/diagnostic_fixtures.rs`, whose bookkeeping
//! test defers SW4xx coverage to this file.

use sqlweave_dialects::Dialect;
use sqlweave_lint::{Code, Layer};
use sqlweave_sema::{analyze, Analysis, ResolverCaps, SchemaCatalog};
use std::collections::BTreeSet;

fn schema() -> SchemaCatalog {
    SchemaCatalog::new()
        .with_table("t", &["a", "b"])
        .with_table("u", &["a", "c"])
}

fn full(sql: &str, schema: Option<&SchemaCatalog>) -> Analysis {
    analyze(sql, Dialect::Full, &ResolverCaps::full(), schema).expect("fixture parses")
}

fn codes(a: &Analysis) -> BTreeSet<Code> {
    a.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn sw401_unknown_table() {
    let cat = schema();
    let a = full("SELECT a FROM missing", Some(&cat));
    assert_eq!(codes(&a), BTreeSet::from([Code::UnknownTable]));
    let d = &a.diagnostics[0];
    assert!(d.message.contains("`missing`"), "{}", d.message);
    assert_eq!(d.span, Some((14, 21)));
    // Without a catalog the resolver cannot decide and stays silent.
    assert!(full("SELECT a FROM missing", None).diagnostics.is_empty());
}

#[test]
fn sw402_unknown_column() {
    let cat = schema();
    // Unqualified, single known relation.
    let a = full("SELECT nope FROM t", Some(&cat));
    assert_eq!(codes(&a), BTreeSet::from([Code::UnknownColumn]));
    // Qualified against a known relation.
    let a = full("SELECT t.nope FROM t", Some(&cat));
    assert_eq!(codes(&a), BTreeSet::from([Code::UnknownColumn]));
    // Qualifier that names no relation in scope — no catalog required.
    let a = full("SELECT q.a FROM t", None);
    assert_eq!(codes(&a), BTreeSet::from([Code::UnknownColumn]));
    assert!(a.diagnostics[0].message.contains("no relation named `q`"));
    // INSERT column list membership.
    let a = full("INSERT INTO t (a, nope) VALUES (1, 2)", Some(&cat));
    assert_eq!(codes(&a), BTreeSet::from([Code::UnknownColumn]));
}

#[test]
fn sw403_ambiguous_column() {
    let cat = schema();
    // `a` is exported by both t and u.
    let a = full("SELECT a FROM t, u", Some(&cat));
    assert_eq!(codes(&a), BTreeSet::from([Code::AmbiguousColumn]));
    assert!(a.diagnostics[0].message.contains("more than one relation"));
    // Qualification resolves the ambiguity.
    let a = full("SELECT t.a, u.a FROM t, u", Some(&cat));
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
}

#[test]
fn sw404_unused_cte() {
    let a = full("WITH w AS (SELECT a FROM t) SELECT b FROM t", None);
    assert_eq!(codes(&a), BTreeSet::from([Code::UnusedCte]));
    let d = &a.diagnostics[0];
    assert_eq!(d.site, "cte `w`");
    assert_eq!(d.span, Some((5, 6)));
    // Used (even transitively, by a later CTE) — silent.
    let a = full(
        "WITH w AS (SELECT a FROM t), x AS (SELECT a FROM w) SELECT a FROM x",
        None,
    );
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
}

#[test]
fn sw405_duplicate_alias() {
    // Two FROM relations answering to the same exposed name.
    let a = full("SELECT 1 FROM t AS x, u AS x", None);
    assert_eq!(codes(&a), BTreeSet::from([Code::DuplicateAlias]));
    // Two WITH elements sharing a name.
    let a = full(
        "WITH w AS (SELECT a FROM t), w AS (SELECT b FROM t) SELECT a FROM w",
        None,
    );
    assert!(codes(&a).contains(&Code::DuplicateAlias), "{:?}", a.diagnostics);
}

/// Every SW4xx diagnostic carries a byte span into the analyzed source —
/// the property the lint JSON `span` member surfaces.
#[test]
fn semantic_diagnostics_carry_spans() {
    let cat = schema();
    let sql = "SELECT nope FROM missing";
    let a = full(sql, Some(&cat));
    assert!(!a.diagnostics.is_empty());
    for d in &a.diagnostics {
        let (start, end) = d.span.expect("semantic diagnostics have spans");
        assert!(start < end && end <= sql.len(), "{:?} out of {sql:?}", d.span);
    }
}

/// The clean bench corpus stays silent across all six dialects, both with
/// and without catalog metadata for its most common tables — the "silent
/// on the clean corpus" half of the SW4xx acceptance criteria.
#[test]
fn clean_corpus_is_silent_across_dialects() {
    for &dialect in Dialect::ALL.iter() {
        let caps = ResolverCaps::for_dialect(dialect);
        // Compose once per dialect; recomposing per statement dominates
        // the test's runtime otherwise.
        let parser = dialect.parser().expect("dialect composes");
        for sql in sqlweave_bench::corpus(dialect) {
            let mut session = parser.session();
            let tree = session
                .parse_tree(sql)
                .unwrap_or_else(|e| panic!("{}: {sql}: {e}", dialect.name()));
            let a = sqlweave_sema::analyze_script(sql, &tree.to_cst(), &caps, None);
            assert!(
                a.diagnostics.is_empty(),
                "{}: `{sql}` produced {:?}",
                dialect.name(),
                a.diagnostics
            );
        }
    }
}

/// Bookkeeping: every Semantic-layer code in the lint catalog has a
/// `fn swNNN_` fixture in this file (the structural codes are pinned by
/// the equivalent test in the lint crate).
#[test]
fn semantic_catalog_is_covered() {
    let this_file = include_str!("rule_fixtures.rs");
    let mut semantic = 0;
    for c in Code::ALL {
        if c.layer() != Layer::Semantic {
            continue;
        }
        semantic += 1;
        let fixture = format!("fn sw{}_", &c.id()[2..]);
        assert!(this_file.contains(&fixture), "code {c} lacks a fixture function");
    }
    assert_eq!(semantic, 5);
}

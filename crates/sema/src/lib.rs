//! `sqlweave-sema` — semantic analysis over parsed SQL scripts.
//!
//! The paper's product line stops at syntax: composing feature sub-grammars
//! yields a parser that accepts exactly the selected dialect. This crate is
//! the first layer that understands what the accepted SQL *means*. It walks
//! the concrete syntax trees any composed parser produces and
//!
//! 1. **resolves names** — CTEs, subqueries, table/column aliases, and
//!    star-expansion against an optional user-supplied [`SchemaCatalog`] —
//!    into a per-statement scope graph;
//! 2. **emits lineage** — table- and column-level data-flow edges across
//!    multi-statement scripts (`CREATE TABLE` → `INSERT … SELECT` →
//!    `CREATE VIEW` chains), every edge carrying a stable byte span from
//!    the green tree; and
//! 3. **surfaces lint rules** on top of the resolver — unknown
//!    table/column, ambiguous column reference, unused CTE, duplicate
//!    alias — as the stable `SW4xx` codes in the `sqlweave-lint` catalog.
//!
//! The resolver is *feature-aware*: [`ResolverCaps`] is keyed off the same
//! feature model that drives grammar composition, so a dialect without
//! `subquery`/`derived_table` skips derived-table scoping entirely, one
//! without `with_clause` never builds CTE machinery, and so on — the
//! per-variant semantics SpecDB argues feature decomposition should extend
//! to.
//!
//! ```
//! use sqlweave_dialects::Dialect;
//! use sqlweave_sema::{analyze, ResolverCaps, SchemaCatalog};
//!
//! let schema = SchemaCatalog::new().with_table("t", &["a", "b"]);
//! let caps = ResolverCaps::for_dialect(Dialect::Core);
//! let analysis = analyze("SELECT x.a FROM t AS x", Dialect::Core, &caps, Some(&schema))
//!     .unwrap();
//! assert!(analysis.diagnostics.is_empty());
//! assert_eq!(analysis.statements[0].columns[0].from, ["t.a"]);
//! ```

pub mod caps;
pub mod fixtures;
pub mod lineage;
pub mod resolve;
pub mod schema;

pub use caps::ResolverCaps;
pub use lineage::{inventory_json, lineage_json, lineage_text, LINEAGE_SCHEMA};
pub use resolve::{analyze_script, Analysis, ColumnEdge, StatementLineage, TableRead};
pub use schema::SchemaCatalog;

use sqlweave_dialects::Dialect;

/// Parse `sql` with `dialect`'s composed parser and run the full semantic
/// pass. Convenience wrapper over [`analyze_script`] for callers that do
/// not already hold a CST; returns the parser's error string on rejection.
pub fn analyze(
    sql: &str,
    dialect: Dialect,
    caps: &ResolverCaps,
    schema: Option<&SchemaCatalog>,
) -> Result<Analysis, String> {
    let parser = dialect.parser().map_err(|e| e.to_string())?;
    let mut session = parser.session();
    let tree = session.parse_tree(sql).map_err(|e| e.to_string())?;
    let cst = tree.to_cst();
    Ok(analyze_script(sql, &cst, caps, schema))
}

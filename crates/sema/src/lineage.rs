//! Lineage serialization: the `sqlweave-lineage/v1` JSON document and the
//! human-readable text rendering behind `sqlweave lineage`.

use sqlweave_lint::json::escape;

use crate::resolve::{Analysis, StatementLineage};

/// Identifier carried by every lineage JSON document.
pub const LINEAGE_SCHEMA: &str = "sqlweave-lineage/v1";

fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

fn span_json(span: (usize, usize)) -> String {
    format!("{{\"start\":{},\"end\":{}}}", span.0, span.1)
}

fn statement_json(s: &StatementLineage) -> String {
    let target = match &s.target {
        Some(t) => string(t),
        None => "null".to_string(),
    };
    let reads: Vec<String> = s
        .reads
        .iter()
        .map(|r| format!("{{\"table\":{},\"span\":{}}}", string(&r.table), span_json(r.span)))
        .collect();
    let columns: Vec<String> = s
        .columns
        .iter()
        .map(|c| {
            let from: Vec<String> = c.from.iter().map(|f| string(f)).collect();
            format!(
                "{{\"to\":{},\"from\":[{}],\"span\":{}}}",
                string(&c.to),
                from.join(","),
                span_json(c.span)
            )
        })
        .collect();
    format!(
        "{{\"index\":{},\"kind\":{},\"target\":{},\"span\":{},\"reads\":[{}],\"columns\":[{}]}}",
        s.index,
        string(s.kind),
        target,
        span_json(s.span),
        reads.join(","),
        columns.join(",")
    )
}

fn statements_json(a: &Analysis) -> String {
    let stmts: Vec<String> = a.statements.iter().map(statement_json).collect();
    format!("[{}]", stmts.join(","))
}

/// Serialize one dialect's analysis as a standalone lineage document:
///
/// ```json
/// {"schema":"sqlweave-lineage/v1","dialect":"full","statements":[...]}
/// ```
pub fn lineage_json(dialect: &str, analysis: &Analysis) -> String {
    format!(
        "{{\"schema\":\"{LINEAGE_SCHEMA}\",\"dialect\":{},\"statements\":{}}}",
        string(dialect),
        statements_json(analysis)
    )
}

/// Serialize a per-dialect sweep (the golden `lineage --check` inventory):
/// one `dialects` entry per `(dialect, analysis)` pair, in input order.
pub fn inventory_json(entries: &[(String, Analysis)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(d, a)| {
            format!("{{\"dialect\":{},\"statements\":{}}}", string(d), statements_json(a))
        })
        .collect();
    format!("{{\"schema\":\"{LINEAGE_SCHEMA}\",\"dialects\":[{}]}}", items.join(","))
}

/// Render an analysis as an indented text report (the default `lineage`
/// output format).
pub fn lineage_text(dialect: &str, analysis: &Analysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lineage: dialect {dialect}, {} statement(s), {} diagnostic(s)",
        analysis.statements.len(),
        analysis.diagnostics.len()
    );
    for s in &analysis.statements {
        let target = s.target.as_deref().unwrap_or("-");
        let _ = writeln!(
            out,
            "  [{}] {} target={} span={}..{}",
            s.index, s.kind, target, s.span.0, s.span.1
        );
        for r in &s.reads {
            let _ = writeln!(out, "      reads {} @{}..{}", r.table, r.span.0, r.span.1);
        }
        for c in &s.columns {
            let from = if c.from.is_empty() {
                "(no column sources)".to_string()
            } else {
                c.from.join(", ")
            };
            let _ = writeln!(out, "      {} <- {}", c.to, from);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{ColumnEdge, TableRead};
    use sqlweave_lint::json;

    fn sample() -> Analysis {
        Analysis {
            statements: vec![StatementLineage {
                index: 0,
                kind: "insert",
                target: Some("t".to_string()),
                span: (0, 30),
                reads: vec![TableRead { table: "u".to_string(), span: (20, 21) }],
                columns: vec![ColumnEdge {
                    to: "t.a".to_string(),
                    from: vec!["u.a".to_string()],
                    span: (7, 8),
                }],
            }],
            diagnostics: Vec::new(),
        }
    }

    #[test]
    fn json_document_is_well_formed() {
        let doc = lineage_json("full", &sample());
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(LINEAGE_SCHEMA));
        assert_eq!(v.get("dialect").unwrap().as_str(), Some("full"));
        let stmts = v.get("statements").unwrap().as_arr().unwrap();
        assert_eq!(stmts.len(), 1);
        let cols = stmts[0].get("columns").unwrap().as_arr().unwrap();
        assert_eq!(cols[0].get("to").unwrap().as_str(), Some("t.a"));
        assert_eq!(
            cols[0].get("span").unwrap().get("start").unwrap().as_num(),
            Some(7.0)
        );
        assert_eq!(
            stmts[0].get("reads").unwrap().as_arr().unwrap()[0]
                .get("table")
                .unwrap()
                .as_str(),
            Some("u")
        );
    }

    #[test]
    fn inventory_wraps_per_dialect() {
        let doc = inventory_json(&[
            ("pico".to_string(), Analysis::default()),
            ("full".to_string(), sample()),
        ]);
        let v = json::parse(&doc).unwrap();
        let ds = v.get("dialects").unwrap().as_arr().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].get("dialect").unwrap().as_str(), Some("pico"));
        assert!(ds[0].get("statements").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn text_rendering_lists_edges() {
        let text = lineage_text("full", &sample());
        assert!(text.contains("dialect full, 1 statement(s)"));
        assert!(text.contains("reads u @20..21"));
        assert!(text.contains("t.a <- u.a"));
    }
}

//! Per-dialect fixture scripts for the lineage golden inventory.
//!
//! Each script exercises the richest semantic surface its dialect can
//! express — DDL first where the dialect has it, so the resolver learns
//! column sets without an external catalog — and every script is clean:
//! the semantic pass emits zero diagnostics over it (asserted below and
//! by the CLI golden test).

use sqlweave_dialects::Dialect;

/// The fixture script for one dialect. Statements are `"; "`-joined, the
/// same script shape the recovery corpus uses.
pub fn script(dialect: Dialect) -> &'static str {
    match dialect {
        Dialect::Pico => "SELECT a, b FROM t; SELECT a FROM t WHERE a = 1 AND b = 2",
        Dialect::Tiny => {
            "SELECT nodeid, temp FROM sensors; \
             SELECT nodeid FROM sensors WHERE temp > 30"
        }
        Dialect::Scql => {
            "CREATE TABLE purse (id INT NOT NULL, balance DECIMAL(8, 2)); \
             INSERT INTO purse VALUES (1, 100); \
             UPDATE purse SET balance = 50 WHERE id = 1; \
             SELECT balance FROM purse WHERE id = 1"
        }
        Dialect::Core => {
            "CREATE TABLE t (a INT, b INT); \
             CREATE TABLE u (a INT, c INT); \
             INSERT INTO t (a, b) VALUES (1, 2); \
             SELECT t.a, v.c FROM t, (SELECT a, c FROM u) AS v WHERE t.a = v.a"
        }
        Dialect::Warehouse => {
            "CREATE TABLE t (a INT, b INT); \
             WITH w AS (SELECT a, b FROM t) SELECT w.* FROM w; \
             CREATE VIEW v (x) AS SELECT a FROM t"
        }
        // The acceptance fixture: CTE + correlated subquery +
        // INSERT … SELECT across a multi-statement script.
        Dialect::Full => {
            "CREATE TABLE orders (id INT, region VARCHAR(10), total INT); \
             CREATE TABLE summary (region VARCHAR(10), total INT); \
             WITH regional AS (SELECT region, SUM(total) AS total FROM orders GROUP BY region) \
             SELECT r.region, r.total FROM regional AS r \
             WHERE EXISTS (SELECT o.id FROM orders AS o WHERE o.region = r.region); \
             INSERT INTO summary (region, total) \
             SELECT s.region, s.total FROM (SELECT region, total FROM orders) AS s"
        }
    }
}

/// All `(dialect, script)` pairs in `Dialect::ALL` order — the golden
/// lineage inventory iterates exactly this.
pub fn all() -> Vec<(Dialect, &'static str)> {
    Dialect::ALL.iter().map(|&d| (d, script(d))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caps::ResolverCaps;
    use crate::resolve::analyze_script;

    /// Every fixture parses in its own dialect and the semantic pass is
    /// silent over it — the "clean corpus" half of the SW4xx contract.
    #[test]
    fn fixtures_parse_and_resolve_cleanly() {
        for (dialect, script) in all() {
            let parser = dialect.parser().unwrap_or_else(|e| {
                panic!("{}: compose failed: {e}", dialect.name());
            });
            let mut session = parser.session();
            let tree = session.parse_tree(script).unwrap_or_else(|e| {
                panic!("{}: fixture rejected: {e}\n{script}", dialect.name());
            });
            let cst = tree.to_cst();
            let caps = ResolverCaps::for_dialect(dialect);
            let analysis = analyze_script(script, &cst, &caps, None);
            assert!(
                analysis.diagnostics.is_empty(),
                "{}: fixture not clean: {:?}",
                dialect.name(),
                analysis.diagnostics
            );
            assert!(!analysis.statements.is_empty());
        }
    }

    /// The full-dialect acceptance fixture produces column-level lineage
    /// through the CTE, the derived table, and into the INSERT target.
    #[test]
    fn full_fixture_has_insert_select_lineage() {
        let dialect = Dialect::Full;
        let parser = dialect.parser().unwrap();
        let mut session = parser.session();
        let script = script(dialect);
        let tree = session.parse_tree(script).unwrap();
        let analysis =
            analyze_script(script, &tree.to_cst(), &ResolverCaps::full(), None);
        let insert = analysis
            .statements
            .iter()
            .find(|s| s.kind == "insert")
            .expect("fixture has an INSERT");
        assert_eq!(insert.target.as_deref(), Some("summary"));
        let to: Vec<&str> = insert.columns.iter().map(|c| c.to.as_str()).collect();
        assert!(to.contains(&"summary.region"), "columns: {to:?}");
        assert!(
            insert
                .columns
                .iter()
                .any(|c| c.from.iter().any(|f| f == "orders.region")),
            "INSERT sources should trace back to orders: {:?}",
            insert.columns
        );
        // The CTE statement reads both the CTE and the base table.
        let select = analysis
            .statements
            .iter()
            .find(|s| s.kind == "select")
            .expect("fixture has a SELECT");
        let reads: Vec<&str> = select.reads.iter().map(|r| r.table.as_str()).collect();
        assert!(reads.contains(&"regional") && reads.contains(&"orders"), "{reads:?}");
    }
}

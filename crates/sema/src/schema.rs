//! Optional user-supplied schema metadata for name resolution.
//!
//! Without a catalog the resolver treats base tables as opaque (columns
//! unknown) and stays quiet about names it cannot decide; with one it can
//! expand `*`, verify every column reference, and flag unknown tables.

use sqlweave_lint::json::{self, Value};
use std::collections::BTreeMap;

/// Identifier used by the schema JSON document this catalog parses.
pub const SCHEMA_SCHEMA: &str = "sqlweave-schema/v1";

/// Table → column-list metadata. Names are matched case-insensitively
/// (stored lowercased), following the folding the SQL corpus uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaCatalog {
    tables: BTreeMap<String, Vec<String>>,
}

impl SchemaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        SchemaCatalog::default()
    }

    /// Builder-style table registration.
    pub fn with_table(mut self, name: &str, columns: &[&str]) -> Self {
        self.insert(name, columns.iter().map(|c| c.to_string()));
        self
    }

    /// Register (or replace) a table.
    pub fn insert(&mut self, name: &str, columns: impl IntoIterator<Item = String>) {
        self.tables.insert(
            name.to_ascii_lowercase(),
            columns.into_iter().map(|c| c.to_ascii_lowercase()).collect(),
        );
    }

    /// The table's columns, if registered.
    pub fn table(&self, name: &str) -> Option<&[String]> {
        self.tables.get(&name.to_ascii_lowercase()).map(Vec::as_slice)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Parse the `sqlweave-schema/v1` document:
    ///
    /// ```json
    /// {"schema":"sqlweave-schema/v1",
    ///  "tables":[{"name":"orders","columns":["id","region"]}]}
    /// ```
    ///
    /// The `schema` member is optional on input (but emitted by tooling);
    /// `tables` is required.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let v = json::parse(src).map_err(|e| e.to_string())?;
        if let Some(s) = v.get("schema").and_then(Value::as_str) {
            if s != SCHEMA_SCHEMA {
                return Err(format!("unsupported schema document `{s}`, expected `{SCHEMA_SCHEMA}`"));
            }
        }
        let tables = v
            .get("tables")
            .and_then(Value::as_arr)
            .ok_or("schema document lacks a `tables` array")?;
        let mut cat = SchemaCatalog::new();
        for (i, t) in tables.iter().enumerate() {
            let name = t
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("tables[{i}] lacks a string `name`"))?;
            let cols = t
                .get("columns")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("tables[{i}] lacks a `columns` array"))?;
            let mut columns = Vec::with_capacity(cols.len());
            for (j, c) in cols.iter().enumerate() {
                columns.push(
                    c.as_str()
                        .ok_or_else(|| format!("tables[{i}].columns[{j}] is not a string"))?
                        .to_string(),
                );
            }
            cat.insert(name, columns);
        }
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let cat = SchemaCatalog::new().with_table("Orders", &["Id", "Region"]);
        assert_eq!(cat.table("orders"), Some(&["id".to_string(), "region".to_string()][..]));
        assert_eq!(cat.table("ORDERS"), cat.table("orders"));
        assert_eq!(cat.table("missing"), None);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let cat = SchemaCatalog::from_json(
            r#"{"schema":"sqlweave-schema/v1",
                "tables":[{"name":"t","columns":["a","b"]},
                          {"name":"u","columns":[]}]}"#,
        )
        .unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table("t").unwrap().len(), 2);
        assert!(cat.table("u").unwrap().is_empty());
    }

    #[test]
    fn json_errors_are_specific() {
        assert!(SchemaCatalog::from_json("{").unwrap_err().contains("JSON parse error"));
        assert!(SchemaCatalog::from_json("{}").unwrap_err().contains("tables"));
        assert!(SchemaCatalog::from_json(r#"{"tables":[{"columns":[]}]}"#)
            .unwrap_err()
            .contains("name"));
        assert!(SchemaCatalog::from_json(r#"{"schema":"other/v9","tables":[]}"#)
            .unwrap_err()
            .contains("unsupported"));
    }
}

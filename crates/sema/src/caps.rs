//! Feature-keyed resolver capabilities.
//!
//! The grammar composition pipeline decides which productions a dialect's
//! parser can emit; this module projects the same feature selection onto
//! the *resolver*, so each composed dialect gets exactly the semantic
//! machinery its syntax can exercise. A `pico` resolver carries no CTE
//! table, no derived-table scoping, and no qualified-star expansion — the
//! per-variant "smaller resolver" the feature model already implies.

use sqlweave_dialects::Dialect;
use sqlweave_feature_model::Configuration;

/// Which resolver subsystems a composed dialect activates. Every flag is
/// keyed to the feature name that guards the corresponding grammar
/// production, so capabilities and syntax can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverCaps {
    /// `with_clause`: WITH-clause scoping and the SW404 unused-CTE rule.
    pub ctes: bool,
    /// `recursive_with`: a recursive CTE sees itself while resolving.
    pub recursive_ctes: bool,
    /// `derived_table`: subqueries in FROM get their own scope.
    pub derived_tables: bool,
    /// `subquery`: expression-level subqueries resolve with the enclosing
    /// scope as parent (correlated references).
    pub subqueries: bool,
    /// `correlation_name`: relations can be re-exposed under aliases.
    pub aliases: bool,
    /// `select_asterisk`: `SELECT *` expands against the FROM scope.
    pub star: bool,
    /// `qualified_asterisk`: `t.*` expands against one relation.
    pub qualified_star: bool,
    /// `table_definition`: `CREATE TABLE` registers script-level relations.
    pub ddl_tables: bool,
    /// `view_definition`: `CREATE VIEW` registers script-level relations.
    pub views: bool,
    /// `insert_statement` (and friends): DML statements produce write
    /// lineage.
    pub dml: bool,
}

impl ResolverCaps {
    /// Derive capabilities from a completed feature configuration — the
    /// same object that drives grammar composition.
    pub fn from_configuration(config: &Configuration) -> Self {
        ResolverCaps {
            ctes: config.contains("with_clause"),
            recursive_ctes: config.contains("recursive_with"),
            derived_tables: config.contains("derived_table"),
            subqueries: config.contains("subquery"),
            aliases: config.contains("correlation_name"),
            star: config.contains("select_asterisk"),
            qualified_star: config.contains("qualified_asterisk"),
            ddl_tables: config.contains("table_definition"),
            views: config.contains("view_definition"),
            dml: config.contains("insert_statement")
                || config.contains("update_statement")
                || config.contains("delete_statement"),
        }
    }

    /// Capabilities for a preset dialect.
    pub fn for_dialect(dialect: Dialect) -> Self {
        ResolverCaps::from_configuration(&dialect.configuration())
    }

    /// Everything enabled — the `full` dialect's resolver, also the right
    /// default when analyzing CSTs of unknown provenance (inactive
    /// subsystems simply never see their node kinds).
    pub fn full() -> Self {
        ResolverCaps {
            ctes: true,
            recursive_ctes: true,
            derived_tables: true,
            subqueries: true,
            aliases: true,
            star: true,
            qualified_star: true,
            ddl_tables: true,
            views: true,
            dml: true,
        }
    }

    /// Short human-readable summary of the active subsystems, for the
    /// `lineage` text output.
    pub fn summary(&self) -> String {
        let flags: [(&str, bool); 10] = [
            ("ctes", self.ctes),
            ("recursive-ctes", self.recursive_ctes),
            ("derived-tables", self.derived_tables),
            ("subqueries", self.subqueries),
            ("aliases", self.aliases),
            ("star", self.star),
            ("qualified-star", self.qualified_star),
            ("ddl", self.ddl_tables),
            ("views", self.views),
            ("dml", self.dml),
        ];
        let on: Vec<&str> = flags.iter().filter(|(_, v)| *v).map(|(n, _)| *n).collect();
        if on.is_empty() {
            "none".to_string()
        } else {
            on.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pico_resolver_is_minimal() {
        let caps = ResolverCaps::for_dialect(Dialect::Pico);
        assert!(caps.star, "pico selects select_asterisk");
        assert!(!caps.ctes && !caps.derived_tables && !caps.subqueries);
        assert!(!caps.aliases && !caps.qualified_star);
        assert!(!caps.ddl_tables && !caps.views && !caps.dml);
    }

    #[test]
    fn caps_grow_monotonically_toward_full() {
        let core = ResolverCaps::for_dialect(Dialect::Core);
        assert!(core.subqueries && core.derived_tables && core.aliases);
        assert!(core.ddl_tables && core.dml);
        assert!(!core.ctes && !core.qualified_star && !core.views);

        let wh = ResolverCaps::for_dialect(Dialect::Warehouse);
        assert!(wh.ctes && wh.recursive_ctes && wh.qualified_star && wh.views);

        assert_eq!(ResolverCaps::for_dialect(Dialect::Full), ResolverCaps::full());
    }

    #[test]
    fn summary_lists_active_subsystems() {
        let s = ResolverCaps::for_dialect(Dialect::Pico).summary();
        assert_eq!(s, "star");
        assert!(ResolverCaps::full().summary().contains("ctes"));
    }
}

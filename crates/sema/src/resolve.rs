//! The scope-graph resolver: names, lineage edges, and the SW4xx rules.
//!
//! The pass walks the concrete syntax tree rather than the typed AST —
//! the CST is the only structure that carries token spans, and every
//! composed dialect produces the same production vocabulary, so one walker
//! covers the whole product line. Resolution is *feature-gated* through
//! [`ResolverCaps`]: subsystems a dialect's grammar cannot produce are
//! never entered.
//!
//! Scoping model (SQL:2003 subset):
//!
//! - each `query_specification` opens a scope over its FROM relations;
//! - expression subqueries chain to the enclosing scope (correlation);
//! - derived tables do **not** see sibling relations (no LATERAL);
//! - WITH elements are visible to later elements, the query body, and —
//!   under `RECURSIVE` — to themselves;
//! - `CREATE TABLE` / `CREATE VIEW` register script-level relations that
//!   later statements resolve against; `DROP` removes them.
//!
//! Deliberate leniencies, chosen so the pass stays silent on code it
//! cannot decide: base tables are opaque without a [`SchemaCatalog`]
//! (their columns are unknown, so per-column rules stand down), an
//! unqualified column is only *unknown* when a catalog is supplied and
//! every relation in scope has known columns, and ORDER BY items are
//! exempt (they may name either output columns or underlying ones).

use sqlweave_lexgen::LineIndex;
use sqlweave_lint::{Code, Diagnostic};
use sqlweave_parser_rt::CstNode;
use std::collections::BTreeMap;

use crate::caps::ResolverCaps;
use crate::schema::SchemaCatalog;

/// Result of the semantic pass over one script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// Per-statement lineage, in script order.
    pub statements: Vec<StatementLineage>,
    /// SW4xx findings, in emission order (callers sort via `LintReport`).
    pub diagnostics: Vec<Diagnostic>,
}

/// Lineage extracted from one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementLineage {
    /// Zero-based statement index in the script.
    pub index: usize,
    /// Statement kind: `select`, `insert`, `update`, `delete`, `merge`,
    /// `create_table`, `create_view`, `drop`, or `other`.
    pub kind: &'static str,
    /// The written relation (INSERT/UPDATE/MERGE target, created object),
    /// if any.
    pub target: Option<String>,
    /// Byte span of the whole statement.
    pub span: (usize, usize),
    /// Relations read by the statement, with the span of each reference.
    pub reads: Vec<TableRead>,
    /// Column-level edges: each written/output column and its sources.
    pub columns: Vec<ColumnEdge>,
}

/// A table-level read edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRead {
    /// Relation name (base table, CTE, or view).
    pub table: String,
    /// Span of the referencing occurrence.
    pub span: (usize, usize),
}

/// A column-level lineage edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnEdge {
    /// Destination: `table.column` for writes, a bare output-column name
    /// for top-level SELECTs.
    pub to: String,
    /// Source columns (`relation.column`, or a raw reference when the
    /// relation could not be attributed).
    pub from: Vec<String>,
    /// Span of the defining expression.
    pub span: (usize, usize),
}

/// Run the semantic pass over a parsed script (a `sql_script` CST, or a
/// bare statement node). `input` must be the exact source the CST was
/// parsed from — spans index into it.
pub fn analyze_script(
    input: &str,
    cst: &CstNode,
    caps: &ResolverCaps,
    schema: Option<&SchemaCatalog>,
) -> Analysis {
    let mut r = Resolver {
        caps,
        schema,
        input,
        lines: LineIndex::new(input),
        env: BTreeMap::new(),
        diags: Vec::new(),
        reads: Vec::new(),
        edges: Vec::new(),
        ctes: Vec::new(),
    };
    let mut statements = Vec::new();
    if cst.name() == "sql_script" {
        for (index, stmt) in cst.children_named("sql_statement").enumerate() {
            statements.push(r.statement(stmt, index));
        }
    } else {
        statements.push(r.statement(cst, 0));
    }
    Analysis {
        statements,
        diagnostics: std::mem::take(&mut r.diags),
    }
}

// ---------------------------------------------------------------- internals

/// One relation exposed by a FROM scope.
#[derive(Debug, Clone)]
struct Relation {
    /// Name the relation answers to as a qualifier (alias, or table tail).
    exposed: Option<String>,
    /// Full dotted table name — usable as a qualifier only when unaliased.
    full_name: Option<String>,
    /// Canonical name for lineage attribution (base table / CTE / view).
    base: Option<String>,
    /// Exported columns; `None` when unknown (opaque base table).
    columns: Option<Vec<String>>,
}

impl Relation {
    fn answers_to(&self, qualifier: &str) -> bool {
        self.exposed.as_deref() == Some(qualifier)
            || self.full_name.as_deref() == Some(qualifier)
    }

    /// Name used to qualify lineage sources drawn from this relation.
    fn lineage_base(&self) -> Option<&str> {
        self.base.as_deref().or(self.exposed.as_deref())
    }
}

/// A FROM scope, chained to the enclosing query's scope for correlation.
struct Scope<'p> {
    relations: Vec<Relation>,
    parent: Option<&'p Scope<'p>>,
}

impl Scope<'_> {
    const EMPTY: Scope<'static> = Scope { relations: Vec::new(), parent: None };

    fn find(&self, qualifier: &str) -> Option<&Relation> {
        self.relations
            .iter()
            .find(|r| r.answers_to(qualifier))
            .or_else(|| self.parent.and_then(|p| p.find(qualifier)))
    }
}

/// A WITH element visible somewhere in the current statement.
struct CteRecord {
    name: String,
    columns: Option<Vec<String>>,
    span: (usize, usize),
    used: bool,
}

/// Output shape of a resolved query: one entry per projected column.
struct OutCol {
    name: String,
    sources: Vec<String>,
    span: (usize, usize),
}

struct Resolver<'a> {
    caps: &'a ResolverCaps,
    schema: Option<&'a SchemaCatalog>,
    input: &'a str,
    lines: LineIndex,
    /// Script-level relations created by earlier statements.
    env: BTreeMap<String, Vec<String>>,
    diags: Vec<Diagnostic>,
    /// Per-statement accumulators.
    reads: Vec<TableRead>,
    edges: Vec<ColumnEdge>,
    ctes: Vec<CteRecord>,
}

/// Lowercased IDENT parts of an identifier chain / table name, with spans.
/// Folding matches [`SchemaCatalog`]'s case-insensitive storage.
fn idents(node: &CstNode) -> Vec<(String, (usize, usize))> {
    sqlweave_sql_ast::lower::identifier_parts(node)
        .into_iter()
        .map(|(name, span)| (name.to_ascii_lowercase(), span))
        .collect()
}

fn dotted(parts: &[(String, (usize, usize))]) -> String {
    parts.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(".")
}

impl<'a> Resolver<'a> {
    fn at(&self, span: (usize, usize)) -> String {
        let (line, col) = self.lines.line_col(self.input, span.0);
        format!("{line}:{col}")
    }

    fn diag(&mut self, code: Code, site: String, message: String, span: (usize, usize)) {
        self.diags
            .push(Diagnostic::new(code, site, message).with_span(span.0, span.1));
    }

    fn push_unique(sink: &mut Vec<String>, source: String) {
        if !sink.contains(&source) {
            sink.push(source);
        }
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self, node: &CstNode, index: usize) -> StatementLineage {
        self.reads.clear();
        self.edges.clear();
        self.ctes.clear();
        let span = node.span().unwrap_or((0, 0));
        let inner = if node.name() == "sql_statement" {
            node.children().first().unwrap_or(node)
        } else {
            node
        };
        let (kind, target) = match inner.name() {
            "query_expression" => {
                let cols = self.query(inner, None, &[]);
                if let Some(cols) = cols {
                    for c in cols {
                        self.edges.push(ColumnEdge { to: c.name, from: c.sources, span: c.span });
                    }
                }
                ("select", None)
            }
            "insert_statement" if self.caps.dml => self.insert(inner),
            "update_statement" if self.caps.dml => self.update(inner),
            "delete_statement" if self.caps.dml => self.delete(inner),
            "merge_statement" if self.caps.dml => self.merge(inner),
            "table_definition" if self.caps.ddl_tables => self.create_table(inner),
            "view_definition" if self.caps.views => self.create_view(inner),
            "drop_statement" => self.drop(inner),
            _ => ("other", None),
        };
        // SW404: every WITH element of this statement must have been
        // referenced somewhere (a later CTE, the body, a subquery).
        for i in 0..self.ctes.len() {
            if !self.ctes[i].used {
                let (name, cspan) = (self.ctes[i].name.clone(), self.ctes[i].span);
                let at = self.at(cspan);
                self.diag(
                    Code::UnusedCte,
                    format!("cte `{name}`"),
                    format!("common table expression `{name}` (defined at {at}) is never referenced"),
                    cspan,
                );
            }
        }
        StatementLineage {
            index,
            kind,
            target,
            span,
            reads: std::mem::take(&mut self.reads),
            columns: std::mem::take(&mut self.edges),
        }
    }

    /// Look up a written-to table (INSERT/UPDATE/MERGE target) and build
    /// its scope relation. Emits SW401 when a catalog is present and the
    /// name is unknown.
    fn target_relation(&mut self, name_node: &CstNode) -> (String, Relation) {
        let parts = idents(name_node);
        let name = dotted(&parts);
        let span = name_node.span().unwrap_or((0, 0));
        let columns = self.lookup_table(&name, span);
        let tail = parts.last().map(|(n, _)| n.clone());
        (
            name.clone(),
            Relation {
                exposed: tail,
                full_name: Some(name.clone()),
                base: Some(name),
                columns,
            },
        )
    }

    /// Columns of a script-level or catalog table; SW401 when a catalog is
    /// supplied and the name resolves nowhere.
    fn lookup_table(&mut self, name: &str, span: (usize, usize)) -> Option<Vec<String>> {
        if let Some(cols) = self.env.get(name) {
            return Some(cols.clone());
        }
        match self.schema {
            Some(cat) => match cat.table(name) {
                Some(cols) => Some(cols.to_vec()),
                None => {
                    let at = self.at(span);
                    self.diag(
                        Code::UnknownTable,
                        format!("table `{name}`"),
                        format!(
                            "`{name}` (at {at}) is not a CTE, not created by this script, \
                             and absent from the schema catalog"
                        ),
                        span,
                    );
                    None
                }
            },
            None => None,
        }
    }

    /// Membership check for an explicit column list against known columns.
    fn check_listed_columns(&mut self, table: &str, known: &[String], list: &CstNode) {
        for (col, span) in idents(list) {
            if !known.contains(&col) {
                let at = self.at(span);
                self.diag(
                    Code::UnknownColumn,
                    format!("column `{table}.{col}`"),
                    format!("`{table}` has no column `{col}` (at {at})"),
                    span,
                );
            }
        }
    }

    fn insert(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let Some(name_node) = node.child("table_name") else {
            return ("insert", None);
        };
        let (table, rel) = self.target_relation(name_node);
        // The optional `(col, ...)` list sits directly under the
        // statement; VALUES rows nest their own productions.
        let dest: Option<Vec<String>> = match node.child("column_name_list") {
            Some(list) => {
                let cols: Vec<String> = idents(list).into_iter().map(|(n, _)| n).collect();
                if let Some(known) = &rel.columns {
                    let known = known.clone();
                    self.check_listed_columns(&table, &known, list);
                }
                Some(cols)
            }
            None => rel.columns.clone(),
        };
        if let Some(src) = node.child("insert_source") {
            match src.label() {
                Some("query") => {
                    if let Some(qe) = src.child("query_expression") {
                        if let Some(cols) = self.query(qe, None, &[]) {
                            for (i, c) in cols.into_iter().enumerate() {
                                let to = match dest.as_ref().and_then(|d| d.get(i)) {
                                    Some(d) => format!("{table}.{d}"),
                                    None => format!("{table}.col{}", i + 1),
                                };
                                self.edges.push(ColumnEdge { to, from: c.sources, span: c.span });
                            }
                        }
                    }
                }
                Some("values") => {
                    // Literal rows carry no lineage, but expression
                    // subqueries inside VALUES do resolve (empty scope).
                    for rc in src.children_named("row_constructor") {
                        for (i, iv) in rc.children_named("insert_value").enumerate() {
                            let mut sources = Vec::new();
                            self.refs(iv, &Scope::EMPTY, &[], &mut sources);
                            if !sources.is_empty() {
                                let to = match dest.as_ref().and_then(|d| d.get(i)) {
                                    Some(d) => format!("{table}.{d}"),
                                    None => format!("{table}.col{}", i + 1),
                                };
                                let span = iv.span().unwrap_or((0, 0));
                                self.edges.push(ColumnEdge { to, from: sources, span });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        ("insert", Some(table))
    }

    fn update(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let Some(name_node) = node.child("table_name") else {
            return ("update", None);
        };
        let (table, rel) = self.target_relation(name_node);
        self.reads.push(TableRead {
            table: table.clone(),
            span: name_node.span().unwrap_or((0, 0)),
        });
        let known = rel.columns.clone();
        let scope = Scope { relations: vec![rel], parent: None };
        for sc in node.children_named("set_clause") {
            let Some((col, cspan)) = idents(sc).into_iter().next() else { continue };
            if let Some(known) = &known {
                if !known.contains(&col) {
                    let at = self.at(cspan);
                    self.diag(
                        Code::UnknownColumn,
                        format!("column `{table}.{col}`"),
                        format!("`{table}` has no column `{col}` (at {at})"),
                        cspan,
                    );
                }
            }
            let mut sources = Vec::new();
            if let Some(src) = sc.child("update_source") {
                self.refs(src, &scope, &[], &mut sources);
            }
            let span = sc.span().unwrap_or((0, 0));
            self.edges.push(ColumnEdge { to: format!("{table}.{col}"), from: sources, span });
        }
        if let Some(cond) = node.child("search_condition") {
            let mut sink = Vec::new();
            self.refs(cond, &scope, &[], &mut sink);
        }
        ("update", Some(table))
    }

    fn delete(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let Some(name_node) = node.child("table_name") else {
            return ("delete", None);
        };
        let (table, rel) = self.target_relation(name_node);
        self.reads.push(TableRead {
            table: table.clone(),
            span: name_node.span().unwrap_or((0, 0)),
        });
        let scope = Scope { relations: vec![rel], parent: None };
        if let Some(cond) = node.child("search_condition") {
            let mut sink = Vec::new();
            self.refs(cond, &scope, &[], &mut sink);
        }
        ("delete", Some(table))
    }

    fn merge(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let mut names = node.children_named("table_name");
        let (Some(target_node), Some(source_node)) = (names.next(), names.next()) else {
            return ("merge", None);
        };
        let (table, target_rel) = self.target_relation(target_node);
        let (source, source_rel) = self.target_relation(source_node);
        let known = target_rel.columns.clone();
        self.reads.push(TableRead {
            table: source.clone(),
            span: source_node.span().unwrap_or((0, 0)),
        });
        self.reads.push(TableRead {
            table: table.clone(),
            span: target_node.span().unwrap_or((0, 0)),
        });
        let scope = Scope { relations: vec![target_rel, source_rel], parent: None };
        if let Some(cond) = node.child("search_condition") {
            let mut sink = Vec::new();
            self.refs(cond, &scope, &[], &mut sink);
        }
        for mw in node.children_named("merge_when") {
            for sc in mw.children_named("set_clause") {
                let Some((col, cspan)) = idents(sc).into_iter().next() else { continue };
                if let Some(known) = &known {
                    if !known.contains(&col) {
                        let at = self.at(cspan);
                        self.diag(
                            Code::UnknownColumn,
                            format!("column `{table}.{col}`"),
                            format!("`{table}` has no column `{col}` (at {at})"),
                            cspan,
                        );
                    }
                }
                let mut sources = Vec::new();
                if let Some(src) = sc.child("update_source") {
                    self.refs(src, &scope, &[], &mut sources);
                }
                let span = sc.span().unwrap_or((0, 0));
                self.edges.push(ColumnEdge { to: format!("{table}.{col}"), from: sources, span });
            }
            if let Some(list) = mw.child("column_name_list") {
                if let Some(known) = known.clone() {
                    self.check_listed_columns(&table, &known, list);
                }
                let cols: Vec<String> = idents(list).into_iter().map(|(n, _)| n).collect();
                if let Some(rc) = mw.child("row_constructor") {
                    for (i, iv) in rc.children_named("insert_value").enumerate() {
                        let mut sources = Vec::new();
                        self.refs(iv, &scope, &[], &mut sources);
                        if !sources.is_empty() {
                            let to = match cols.get(i) {
                                Some(c) => format!("{table}.{c}"),
                                None => format!("{table}.col{}", i + 1),
                            };
                            let span = iv.span().unwrap_or((0, 0));
                            self.edges.push(ColumnEdge { to, from: sources, span });
                        }
                    }
                }
            }
        }
        ("merge", Some(table))
    }

    fn create_table(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let Some(name_node) = node.child("table_name") else {
            return ("create_table", None);
        };
        let name = dotted(&idents(name_node));
        let mut columns = Vec::new();
        for el in node.children_named("table_element") {
            if let Some(cd) = el.child("column_definition") {
                if let Some((col, _)) = idents(cd).into_iter().next() {
                    columns.push(col);
                }
            }
        }
        self.env.insert(name.clone(), columns);
        ("create_table", Some(name))
    }

    fn create_view(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let Some(name_node) = node.child("table_name") else {
            return ("create_view", None);
        };
        let name = dotted(&idents(name_node));
        let declared: Option<Vec<String>> = node
            .child("column_name_list")
            .map(|l| idents(l).into_iter().map(|(n, _)| n).collect());
        let cols = node
            .child("query_expression")
            .and_then(|qe| self.query(qe, None, &[]));
        let mut registered = Vec::new();
        if let Some(cols) = cols {
            for (i, c) in cols.into_iter().enumerate() {
                let out = match declared.as_ref().and_then(|d| d.get(i)) {
                    Some(d) => d.clone(),
                    None => c.name,
                };
                self.edges.push(ColumnEdge {
                    to: format!("{name}.{out}"),
                    from: c.sources,
                    span: c.span,
                });
                registered.push(out);
            }
        } else if let Some(d) = &declared {
            registered = d.clone();
        }
        self.env.insert(name.clone(), registered);
        ("create_view", Some(name))
    }

    fn drop(&mut self, node: &CstNode) -> (&'static str, Option<String>) {
        let name = node
            .child("object_name")
            .and_then(|o| o.child("table_name"))
            .map(|t| dotted(&idents(t)));
        if let Some(name) = &name {
            self.env.remove(name);
        }
        ("drop", name)
    }

    // ------------------------------------------------------------ queries

    /// Resolve a `query_expression`. `ctes` are the indices (into
    /// `self.ctes`) of WITH elements visible here. Returns the output
    /// shape, or `None` when a star over opaque relations makes it
    /// unknowable.
    fn query(
        &mut self,
        node: &CstNode,
        parent: Option<&Scope<'_>>,
        ctes: &[usize],
    ) -> Option<Vec<OutCol>> {
        let mut visible: Vec<usize> = ctes.to_vec();
        if let Some(wc) = node.child("with_clause") {
            if self.caps.ctes {
                self.with_clause(wc, &mut visible);
            }
        }
        let mut out: Option<Option<Vec<OutCol>>> = None;
        for qt in node.children_named("query_term") {
            let Some(primary) = qt.children().first() else { continue };
            let shape = match primary.label() {
                Some("select") => primary
                    .child("query_specification")
                    .and_then(|qs| self.select(qs, parent, &visible)),
                Some("nested") => primary
                    .child("subquery")
                    .and_then(|s| s.child("query_expression"))
                    .and_then(|qe| self.query(qe, parent, &visible)),
                _ => None,
            };
            // Set operations: the first term names the output columns;
            // later terms still resolve (diagnostics, reads) above.
            if out.is_none() {
                out = Some(shape);
            }
        }
        // ORDER BY / OFFSET / FETCH never bind new names; items may
        // reference output or underlying columns, so they are exempt from
        // the unknown-column rule (see module docs).
        out.flatten()
    }

    /// Resolve one WITH clause, appending the new element indices to
    /// `visible` as each becomes available to its successors.
    fn with_clause(&mut self, wc: &CstNode, visible: &mut Vec<usize>) {
        let recursive =
            self.caps.recursive_ctes && wc.children().iter().any(|c| c.name() == "RECURSIVE");
        let first_new = self.ctes.len();
        for el in wc.children_named("with_element") {
            let Some(tok) = el.find_token("IDENT") else { continue };
            let name = tok.token_text().unwrap_or("").to_ascii_lowercase();
            let span = tok.span().unwrap_or((0, 0));
            // SW405: two elements of one WITH clause sharing a name.
            if self.ctes[first_new..].iter().any(|c| c.name == name) {
                let at = self.at(span);
                self.diag(
                    Code::DuplicateAlias,
                    format!("cte `{name}`"),
                    format!("WITH clause defines `{name}` more than once (at {at})"),
                    span,
                );
            }
            let declared: Option<Vec<String>> = el
                .child("column_name_list")
                .map(|l| idents(l).into_iter().map(|(n, _)| n).collect());
            let idx = self.ctes.len();
            self.ctes.push(CteRecord {
                name,
                columns: declared.clone(),
                span,
                used: false,
            });
            let mut inner = visible.clone();
            if recursive {
                inner.push(idx);
            }
            let shape = el
                .child("query_expression")
                .and_then(|qe| self.query(qe, None, &inner));
            if let Some(cols) = shape {
                // Column edges into the CTE, under declared names when a
                // column list was written, inferred names otherwise.
                let cte = self.ctes[idx].name.clone();
                let mut registered = Vec::new();
                for (i, c) in cols.into_iter().enumerate() {
                    let out = declared
                        .as_ref()
                        .and_then(|d| d.get(i))
                        .cloned()
                        .unwrap_or(c.name);
                    self.edges.push(ColumnEdge {
                        to: format!("{cte}.{out}"),
                        from: c.sources,
                        span: c.span,
                    });
                    registered.push(out);
                }
                if declared.is_none() {
                    self.ctes[idx].columns = Some(registered);
                }
            }
            visible.push(idx);
        }
    }

    /// Resolve a `query_specification`: build the FROM scope, resolve
    /// every clause, and produce the projection shape.
    fn select(
        &mut self,
        qs: &CstNode,
        parent: Option<&Scope<'_>>,
        ctes: &[usize],
    ) -> Option<Vec<OutCol>> {
        let te = qs.child("table_expression")?;
        let scope = self.build_scope(te, ctes, parent);
        // Join conditions, WHERE, GROUP BY, HAVING, WINDOW.
        for tr in te
            .child("from_clause")
            .map(|fc| fc.children_named("table_reference").collect::<Vec<_>>())
            .unwrap_or_default()
        {
            for j in tr.children_named("joined_table") {
                if let Some(jc) = j.child("join_condition") {
                    if let Some(cond) = jc.child("search_condition") {
                        let mut sink = Vec::new();
                        self.refs(cond, &scope, ctes, &mut sink);
                    }
                    // USING (a, b): both sides must export the column;
                    // resolved leniently as unqualified references.
                    if let Some(list) = jc.child("column_name_list") {
                        for (col, span) in idents(list) {
                            self.unqualified(&col, span, &scope, true);
                        }
                    }
                }
            }
        }
        for clause in ["where_clause", "group_by_clause", "having_clause", "window_clause"] {
            if let Some(c) = te.child(clause) {
                let mut sink = Vec::new();
                self.refs(c, &scope, ctes, &mut sink);
            }
        }
        // Projection.
        let sl = qs.child("select_list")?;
        match sl.label() {
            Some("star") => {
                if !self.caps.star {
                    return None;
                }
                let span = sl.span().unwrap_or((0, 0));
                self.expand_star(scope.relations.iter(), span)
            }
            _ => {
                let mut out = Vec::new();
                let mut unknowable = false;
                for (i, ss) in sl.children_named("select_sublist").enumerate() {
                    let span = ss.span().unwrap_or((0, 0));
                    match ss.label() {
                        Some("qualified_star") if self.caps.qualified_star => {
                            let Some(chain) = ss.child("identifier_chain") else { continue };
                            let parts = idents(chain);
                            let qualifier = dotted(&parts);
                            match scope.find(&qualifier) {
                                Some(rel) => {
                                    match self.expand_star(std::iter::once(rel), span) {
                                        Some(cols) => out.extend(cols),
                                        None => unknowable = true,
                                    }
                                }
                                None => {
                                    let at = self.at(span);
                                    self.diag(
                                        Code::UnknownColumn,
                                        format!("columns `{qualifier}.*`"),
                                        format!(
                                            "no relation named `{qualifier}` in scope \
                                             for `{qualifier}.*` (at {at})"
                                        ),
                                        span,
                                    );
                                    unknowable = true;
                                }
                            }
                        }
                        Some("qualified_star") => unknowable = true,
                        _ => {
                            let Some(dc) = ss.child("derived_column") else { continue };
                            let mut sources = Vec::new();
                            if let Some(expr) = dc.child("value_expression") {
                                self.refs(expr, &scope, ctes, &mut sources);
                            }
                            let name = dc
                                .child("as_clause")
                                .and_then(|a| a.find_token("IDENT"))
                                .and_then(|t| t.token_text())
                                .map(str::to_ascii_lowercase)
                                .or_else(|| {
                                    dc.child("value_expression").and_then(bare_column_tail)
                                })
                                .unwrap_or_else(|| format!("col{}", i + 1));
                            out.push(OutCol { name, sources, span });
                        }
                    }
                }
                if unknowable {
                    None
                } else {
                    Some(out)
                }
            }
        }
    }

    /// Expand `*` over relations; `None` if any relation is opaque.
    fn expand_star<'r>(
        &mut self,
        relations: impl Iterator<Item = &'r Relation>,
        span: (usize, usize),
    ) -> Option<Vec<OutCol>> {
        let mut out = Vec::new();
        for rel in relations {
            let cols = rel.columns.as_ref()?;
            let base = rel.lineage_base().unwrap_or("?").to_string();
            for c in cols {
                out.push(OutCol {
                    name: c.clone(),
                    sources: vec![format!("{base}.{c}")],
                    span,
                });
            }
        }
        Some(out)
    }

    /// Build the scope for a `table_expression`'s FROM clause, checking
    /// for duplicate exposed names (SW405) on the way.
    fn build_scope<'p>(
        &mut self,
        te: &CstNode,
        ctes: &[usize],
        parent: Option<&'p Scope<'p>>,
    ) -> Scope<'p> {
        let mut relations = Vec::new();
        if let Some(fc) = te.child("from_clause") {
            for tr in fc.children_named("table_reference") {
                if let Some(tp) = tr.child("table_primary") {
                    relations.push(self.table_primary(tp, ctes));
                }
                for j in tr.children_named("joined_table") {
                    if let Some(tp) = j.child("table_primary") {
                        relations.push(self.table_primary(tp, ctes));
                    }
                }
            }
        }
        // SW405: two relations answering to the same exposed name.
        for (i, rel) in relations.iter().enumerate() {
            let Some(name) = &rel.exposed else { continue };
            if relations[..i].iter().any(|r| r.exposed.as_deref() == Some(name.as_str())) {
                let span = te.child("from_clause").and_then(|f| f.span()).unwrap_or((0, 0));
                let at = self.at(span);
                self.diag(
                    Code::DuplicateAlias,
                    format!("relation `{name}`"),
                    format!("two relations in this FROM clause answer to `{name}` (at {at})"),
                    span,
                );
            }
        }
        Scope { relations, parent }
    }

    /// Resolve one `table_primary` into a scope relation, recording the
    /// table-level read edge and CTE usage.
    fn table_primary(&mut self, tp: &CstNode, ctes: &[usize]) -> Relation {
        let alias = if self.caps.aliases {
            tp.child("correlation")
                .and_then(|c| c.find_token("IDENT"))
                .and_then(|t| t.token_text())
                .map(str::to_ascii_lowercase)
        } else {
            None
        };
        if tp.label() == Some("derived_table") {
            let columns = if self.caps.derived_tables {
                let shape = tp
                    .child("subquery")
                    .and_then(|s| s.child("query_expression"))
                    .and_then(|qe| self.query(qe, None, ctes));
                if let (Some(cols), Some(alias)) = (&shape, &alias) {
                    for c in cols {
                        self.edges.push(ColumnEdge {
                            to: format!("{alias}.{}", c.name),
                            from: c.sources.clone(),
                            span: c.span,
                        });
                    }
                }
                shape.map(|cols| cols.into_iter().map(|c| c.name).collect())
            } else {
                None
            };
            return Relation { exposed: alias, full_name: None, base: None, columns };
        }
        let Some(name_node) = tp.child("table_name") else {
            return Relation { exposed: alias, full_name: None, base: None, columns: None };
        };
        let parts = idents(name_node);
        let name = dotted(&parts);
        let span = name_node.span().unwrap_or((0, 0));
        // CTEs shadow catalog tables.
        if let Some(&idx) = ctes.iter().rev().find(|&&i| self.ctes[i].name == name) {
            self.ctes[idx].used = true;
            self.reads.push(TableRead { table: name.clone(), span });
            let columns = self.ctes[idx].columns.clone();
            return Relation {
                exposed: Some(alias.unwrap_or_else(|| name.clone())),
                full_name: None,
                base: Some(name),
                columns,
            };
        }
        self.reads.push(TableRead { table: name.clone(), span });
        let columns = self.lookup_table(&name, span);
        let tail = parts.last().map(|(n, _)| n.clone());
        Relation {
            exposed: alias.or(tail),
            full_name: Some(name.clone()),
            base: Some(name),
            columns,
        }
    }

    // ------------------------------------------------------------ references

    /// Walk an expression/clause subtree, resolving every column reference
    /// in `scope` and recursing into expression subqueries (which see
    /// `scope` as their parent — correlation). Canonical sources are
    /// appended to `sink`.
    fn refs(&mut self, node: &CstNode, scope: &Scope<'_>, ctes: &[usize], sink: &mut Vec<String>) {
        match node.name() {
            "column_reference" => {
                if let Some(chain) = node.child("identifier_chain") {
                    let source = self.column(chain, scope);
                    Self::push_unique(sink, source);
                }
            }
            "subquery" => {
                if self.caps.subqueries {
                    if let Some(qe) = node.child("query_expression") {
                        if let Some(cols) = self.query(qe, Some(scope), ctes) {
                            for c in cols {
                                for s in c.sources {
                                    Self::push_unique(sink, s);
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                for c in node.children() {
                    self.refs(c, scope, ctes, sink);
                }
            }
        }
    }

    /// Resolve one identifier chain as a column reference. Returns the
    /// canonical `relation.column` source, or the raw chain when the
    /// relation cannot be attributed.
    fn column(&mut self, chain: &CstNode, scope: &Scope<'_>) -> String {
        let parts = idents(chain);
        let span = chain.span().unwrap_or((0, 0));
        match parts.len() {
            0 => String::new(),
            1 => {
                let col = parts[0].0.clone();
                self.unqualified(&col, span, scope, false)
            }
            _ => {
                let col = parts.last().unwrap().0.clone();
                let qualifier = dotted(&parts[..parts.len() - 1]);
                match scope.find(&qualifier) {
                    Some(rel) => {
                        let base = rel.lineage_base().unwrap_or(&qualifier).to_string();
                        if let Some(cols) = &rel.columns {
                            if !cols.contains(&col) {
                                let at = self.at(span);
                                self.diag(
                                    Code::UnknownColumn,
                                    format!("column `{qualifier}.{col}`"),
                                    format!(
                                        "relation `{qualifier}` has no column `{col}` (at {at})"
                                    ),
                                    span,
                                );
                            }
                        }
                        format!("{base}.{col}")
                    }
                    None => {
                        let at = self.at(span);
                        self.diag(
                            Code::UnknownColumn,
                            format!("column `{qualifier}.{col}`"),
                            format!("no relation named `{qualifier}` in scope (at {at})"),
                            span,
                        );
                        format!("{qualifier}.{col}")
                    }
                }
            }
        }
    }

    /// Resolve an unqualified column name against the scope chain.
    /// `lenient` suppresses the unknown-column diagnostic (USING lists).
    fn unqualified(
        &mut self,
        col: &str,
        span: (usize, usize),
        scope: &Scope<'_>,
        lenient: bool,
    ) -> String {
        let mut level = Some(scope);
        while let Some(s) = level {
            let exporters: Vec<&Relation> = s
                .relations
                .iter()
                .filter(|r| r.columns.as_ref().is_some_and(|c| c.iter().any(|x| x == col)))
                .collect();
            let opaque = s.relations.iter().any(|r| r.columns.is_none());
            if exporters.len() >= 2 && !lenient {
                let names: Vec<String> = exporters
                    .iter()
                    .filter_map(|r| r.lineage_base().or(r.exposed.as_deref()))
                    .map(str::to_string)
                    .collect();
                let at = self.at(span);
                self.diag(
                    Code::AmbiguousColumn,
                    format!("column `{col}`"),
                    format!(
                        "`{col}` (at {at}) is exported by more than one relation in scope: {}",
                        names.join(", ")
                    ),
                    span,
                );
            }
            if let Some(rel) = exporters.first() {
                let base = rel.lineage_base().unwrap_or("?").to_string();
                return format!("{base}.{col}");
            }
            if opaque {
                // Some relation's columns are unknown; attribute to it if
                // it is alone at this level, otherwise leave the source
                // unattributed — never diagnose.
                let opaques: Vec<&Relation> =
                    s.relations.iter().filter(|r| r.columns.is_none()).collect();
                if opaques.len() == 1 && s.relations.len() == 1 {
                    if let Some(base) = opaques[0].lineage_base() {
                        return format!("{base}.{col}");
                    }
                }
                return col.to_string();
            }
            level = s.parent;
        }
        // Every level had fully-known relations and none exported `col`.
        // Diagnose only under a user-supplied catalog: without one the
        // script's view of the world is incomplete (views and tables may
        // be defined elsewhere), so even exactly-inferred derived-table
        // shapes are treated as best-effort.
        if !lenient && self.schema.is_some() {
            let at = self.at(span);
            self.diag(
                Code::UnknownColumn,
                format!("column `{col}`"),
                format!("`{col}` (at {at}) is not exported by any relation in scope"),
                span,
            );
        }
        col.to_string()
    }
}

/// If the expression is a bare column reference (single-child chain down
/// to `column_reference`), the final identifier — the implicit output
/// column name.
fn bare_column_tail(expr: &CstNode) -> Option<String> {
    let mut node = expr;
    loop {
        if node.name() == "column_reference" {
            let parts = idents(node);
            return parts.last().map(|(n, _)| n.clone());
        }
        match node.children() {
            [only] => node = only,
            _ => return None,
        }
    }
}

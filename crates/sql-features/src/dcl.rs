//! Access-control feature diagram (41): GRANT / REVOKE.

use crate::dml::{TABLE_NAME_RULE, TABLE_NAME_TOKENS};
use crate::tokens::{token_file, IDENT};
use crate::CatalogBuilder;
use sqlweave_feature_model::{Cardinality, FeatureId};

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let gr = cat.b.optional(parent, "grant_revoke");
    cat.grammar("grant_revoke", "", "");

    let grant = cat.b.mandatory(gr, "grant_statement");
    cat.b.with_cardinality(grant, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "grant_statement",
        &format!(
            "grammar grant_statement;
             sql_statement : grant_statement #grant ;
             grant_statement : GRANT privileges ON object_name TO grantee (COMMA grantee)* ;
             privileges : ALL PRIVILEGES #all | privilege (COMMA privilege)* #list ;
             privilege : SELECT #select | INSERT #insert | UPDATE #update
                       | DELETE #delete | REFERENCES #references | USAGE #usage
                       | TRIGGER #trigger ;
             object_name : TABLE? table_name ;
             grantee : PUBLIC #public | IDENT #user ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "grant_statement",
            &[
                "GRANT = kw; ON = kw; TO = kw; ALL = kw; PRIVILEGES = kw;\
                 SELECT = kw; INSERT = kw; UPDATE = kw; DELETE = kw;\
                 REFERENCES = kw; USAGE = kw; TRIGGER = kw; TABLE = kw;\
                 PUBLIC = kw; COMMA = \",\";",
                TABLE_NAME_TOKENS,
                IDENT,
            ],
        ),
    );

    cat.b.optional(gr, "grant_option");
    cat.grammar(
        "grant_option",
        "grammar grant_option;
         grant_statement : GRANT privileges ON object_name TO grantee (COMMA grantee)* (WITH GRANT OPTION)? ;",
        "tokens grant_option; WITH = kw; GRANT = kw; OPTION = kw;",
    );

    cat.b.optional(gr, "revoke_statement");
    cat.grammar(
        "revoke_statement",
        "grammar revoke_statement;
         sql_statement : revoke_statement #revoke ;
         revoke_statement : REVOKE (GRANT OPTION FOR)? privileges ON object_name FROM grantee (COMMA grantee)* ((CASCADE | RESTRICT))? ;",
        "tokens revoke_statement; REVOKE = kw; GRANT = kw; OPTION = kw; FOR = kw;\
         FROM = kw; CASCADE = kw; RESTRICT = kw; COMMA = \",\";",
    );
}

//! The feature-oriented decomposition of SQL:2003 — the content of the
//! paper's Section 3.1, rebuilt as code.
//!
//! The whole of (our coverage of) SQL:2003 lives in one merged feature
//! model rooted at `sql_2003`; the paper's individual feature diagrams
//! (Figures 1, 2, and the other ~40) are *subtrees* of that model, listed
//! in [`DIAGRAMS`] and extractable as standalone
//! [`FeatureModel`]s via [`Catalog::diagram`]. Every feature that carries
//! syntax is bound to an LL(k) sub-grammar and a token file in the
//! [`FeatureRegistry`], exactly as §3.1 prescribes
//! ("for each sub-grammar we also create a file containing various tokens
//! used in the grammar").
//!
//! # Quick start
//!
//! ```
//! use sqlweave_sql_features::catalog;
//! use sqlweave_feature_model::Configuration;
//!
//! let cat = catalog();
//! // The paper's worked example: a single-column, single-table SELECT.
//! let parser = cat
//!     .pipeline()
//!     .parser_for_selection(["query_statement", "select_sublist"])
//!     .unwrap();
//! assert!(parser.parse("SELECT a FROM t").is_ok());
//! assert!(parser.parse("SELECT a FROM t WHERE a = 1").is_err()); // `where` not selected
//! ```

mod dcl;
mod ddl;
mod dml;
mod dql;
mod expressions;
mod predicates;
mod sensor;
mod session;
mod tcl;
pub mod tokens;
mod types;

use sqlweave_core::error::RegistryError;
use sqlweave_core::{FeatureRegistry, Pipeline};
use sqlweave_feature_model::{Configuration, FeatureId, FeatureModel, ModelBuilder};
use std::sync::OnceLock;

/// The designated diagram roots — one per feature diagram in the paper's
/// sense. Figure 1 is `query_specification`, Figure 2 `table_expression`.
pub const DIAGRAMS: &[&str] = &[
    "sql_2003",
    "query_specification",
    "table_expression",
    "set_quantifier",
    "select_list",
    "from",
    "table_reference",
    "joined_table",
    "where",
    "group_by",
    "having",
    "window_clause",
    "order_by",
    "query_expression",
    "subquery",
    "value_expression",
    "literal",
    "column_reference",
    "arithmetic",
    "case_expression",
    "cast_expression",
    "string_functions",
    "numeric_functions",
    "datetime_functions",
    "aggregate_functions",
    "predicates",
    "boolean_logic",
    "data_type",
    "insert_statement",
    "update_statement",
    "delete_statement",
    "merge_statement",
    "table_definition",
    "column_definition",
    "table_constraint",
    "view_definition",
    "schema_definition",
    "domain_definition",
    "alter_table_statement",
    "drop_statement",
    "grant_revoke",
    "transaction_statement",
    "session_statement",
    "cursor_statement",
    "sensor_query",
];

/// Shared builder passed to every diagram module's `define`.
pub(crate) struct CatalogBuilder {
    pub b: ModelBuilder,
    pub registry: FeatureRegistry,
}

impl CatalogBuilder {
    /// Register a feature's sub-grammar and token file, panicking with the
    /// feature name on authoring errors (the sources are compile-time
    /// constants of this crate).
    pub fn grammar(&mut self, feature: &str, grammar_src: &str, tokens_src: &str) {
        if let Err(e) = self.try_grammar(feature, grammar_src, tokens_src) {
            panic!("sql-features authoring error: {e}");
        }
    }

    fn try_grammar(
        &mut self,
        feature: &str,
        grammar_src: &str,
        tokens_src: &str,
    ) -> Result<(), RegistryError> {
        self.registry.register(feature, grammar_src, tokens_src)
    }
}

/// The SQL:2003 product line: merged feature model + artifact registry.
pub struct Catalog {
    model: FeatureModel,
    registry: FeatureRegistry,
}

impl Catalog {
    /// Build the catalog from scratch (prefer the cached [`catalog()`]).
    pub fn build() -> Catalog {
        let mut cat = CatalogBuilder {
            b: ModelBuilder::new("sql_2003"),
            registry: FeatureRegistry::new(),
        };
        let root = cat.b.root();
        cat.grammar(
            "sql_2003",
            "grammar sql_2003;
             start sql_script;
             sql_script : sql_statement (SEMI sql_statement)* SEMI? ;",
            "tokens sql_2003;\
             SEMI = \";\";\
             WS = skip /[ \\t\\r\\n]+/;\
             LINE_COMMENT = skip /--[^\\n]*/;\
             BLOCK_COMMENT = skip /\\/\\*([^*]|\\*+[^*\\/])*\\*+\\//;",
        );

        // Statement-class markers, mirroring SQL Foundation's classification
        // of statements by function (the paper's "basic decomposition").
        let common = cat.b.mandatory(root, "common_elements");
        let data = cat.b.optional(root, "data_statements");
        let schema = cat.b.optional(root, "schema_statements");
        let control = cat.b.optional(root, "control_statements");
        let tx = cat.b.optional(root, "transaction_statements");
        let sess = cat.b.optional(root, "session_statements");
        let cur = cat.b.optional(root, "cursor_statements");
        let ext = cat.b.optional(root, "extensions");

        expressions::define(&mut cat, common);
        predicates::define(&mut cat, common);
        types::define(&mut cat, common);
        dql::define(&mut cat, data);
        dml::define(&mut cat, data);
        ddl::define(&mut cat, schema);
        dcl::define(&mut cat, control);
        tcl::define(&mut cat, tx);
        session::define(&mut cat, sess);
        cursor_define(&mut cat, cur);
        sensor::define(&mut cat, ext);

        let model = cat
            .b
            .build()
            .unwrap_or_else(|e| panic!("sql-features model authoring error: {e}"));

        // Every feature named in DIAGRAMS must exist.
        for d in DIAGRAMS {
            assert!(
                model.id_of(d).is_some(),
                "diagram root `{d}` missing from the model"
            );
        }
        Catalog {
            model,
            registry: cat.registry,
        }
    }

    /// The merged SQL:2003 feature model.
    pub fn model(&self) -> &FeatureModel {
        &self.model
    }

    /// The feature → (sub-grammar, token file) registry.
    pub fn registry(&self) -> &FeatureRegistry {
        &self.registry
    }

    /// Extract one of the paper's feature diagrams as a standalone model.
    pub fn diagram(&self, name: &str) -> Option<FeatureModel> {
        let id = self.model.id_of(name)?;
        Some(self.model.subtree(id))
    }

    /// All diagrams, in [`DIAGRAMS`] order.
    pub fn diagrams(&self) -> Vec<FeatureModel> {
        DIAGRAMS
            .iter()
            .map(|d| self.diagram(d).expect("diagram roots verified at build"))
            .collect()
    }

    /// A pipeline composing whole SQL dialects (start symbol `sql_script`).
    pub fn pipeline(&self) -> Pipeline<'_> {
        Pipeline::new(&self.model, &self.registry).with_start("sql_script")
    }

    /// A pipeline with a custom start symbol (e.g. `query_specification`
    /// for the paper's worked example).
    pub fn pipeline_from(&self, start: &str) -> Pipeline<'_> {
        Pipeline::new(&self.model, &self.registry).with_start(start)
    }

    /// Auto-complete a partial selection against the model.
    pub fn complete(
        &self,
        features: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Configuration, sqlweave_feature_model::ValidationError> {
        self.model.complete(&Configuration::of(features))
    }

    /// An *alternative classification* of the statement-bearing features,
    /// grouped by the schema element they operate on — the paper's §5
    /// observation that "it is possible to classify SQL constructs in
    /// different ways, e.g., by the schema element they operate on" and
    /// that "different classifications of features lead to the same
    /// advantages". The groups reference the same features as the
    /// statement-class tree, so any group can be handed to
    /// [`Catalog::complete`] to obtain the corresponding dialect.
    pub fn by_schema_element(&self) -> Vec<(&'static str, Vec<&'static str>)> {
        vec![
            (
                "table",
                vec![
                    "query_statement",
                    "insert_statement",
                    "update_statement",
                    "delete_statement",
                    "merge_statement",
                    "table_definition",
                    "alter_table_statement",
                    "drop_table",
                ],
            ),
            ("view", vec!["view_definition", "drop_view"]),
            ("schema", vec!["schema_definition", "drop_schema", "set_schema"]),
            ("domain", vec!["domain_definition", "drop_domain"]),
            (
                "column",
                vec![
                    "column_definition",
                    "column_constraints",
                    "default_clause",
                    "identity_column",
                    "add_column",
                    "drop_column",
                    "alter_column_default",
                ],
            ),
            (
                "privilege",
                vec!["grant_revoke", "grant_statement", "revoke_statement"],
            ),
            (
                "transaction",
                vec!["transaction_statement", "savepoints", "set_transaction"],
            ),
            ("cursor", vec!["cursor_statement", "declare_cursor", "fetch_statement"]),
            (
                "session",
                vec!["session_statement", "set_role", "set_session_authorization"],
            ),
        ]
    }
}

/// Cursor-management statements (diagram 44) — small enough to live here.
fn cursor_define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let cur = cat.b.optional(parent, "cursor_statement");
    cat.b.mandatory(cur, "declare_cursor");
    let oc = cat.b.optional(cur, "open_close");
    let fetch = cat.b.optional(cur, "fetch_statement");
    cat.b.optional(cur, "cursor_sensitivity");
    cat.b.optional(cur, "cursor_scroll");
    cat.b.optional(cur, "cursor_holdability");
    let fo = cat.b.optional(fetch, "fetch_orientation");
    let _ = (oc, fo);
    cat.b.requires("cursor_statement", "query_statement");

    cat.grammar(
        "cursor_statement",
        "grammar cursor_statement;
         sql_statement : cursor_statement #cursor ;
         cursor_statement : declare_cursor #declare ;",
        "",
    );
    cat.grammar(
        "declare_cursor",
        "grammar declare_cursor;
         declare_cursor : DECLARE IDENT CURSOR FOR query_expression ;",
        &tokens::token_file("declare_cursor", &["DECLARE = kw; CURSOR = kw; FOR = kw;", tokens::IDENT]),
    );
    cat.grammar(
        "open_close",
        "grammar open_close;
         cursor_statement : OPEN IDENT #open | CLOSE IDENT #close ;",
        &tokens::token_file("open_close", &["OPEN = kw; CLOSE = kw;", tokens::IDENT]),
    );
    cat.grammar(
        "fetch_statement",
        "grammar fetch_statement;
         cursor_statement : fetch_statement #fetch ;
         fetch_statement : FETCH FROM? IDENT ;",
        &tokens::token_file("fetch_statement", &["FETCH = kw; FROM = kw;", tokens::IDENT]),
    );
    cat.grammar(
        "cursor_sensitivity",
        "grammar cursor_sensitivity;
         declare_cursor : DECLARE IDENT (SENSITIVE | INSENSITIVE | ASENSITIVE)? CURSOR FOR query_expression ;",
        "tokens cursor_sensitivity; SENSITIVE = kw; INSENSITIVE = kw; ASENSITIVE = kw;",
    );
    cat.grammar(
        "cursor_scroll",
        "grammar cursor_scroll;
         declare_cursor : DECLARE IDENT (NO? SCROLL)? CURSOR FOR query_expression ;",
        "tokens cursor_scroll; SCROLL = kw; NO = kw;",
    );
    cat.grammar(
        "cursor_holdability",
        "grammar cursor_holdability;
         declare_cursor : DECLARE IDENT CURSOR ((WITH | WITHOUT) HOLD)? FOR query_expression ;",
        "tokens cursor_holdability; WITH = kw; WITHOUT = kw; HOLD = kw;",
    );
    // The orientation optional must merge *before* the FROM? of the base
    // form (`FETCH NEXT FROM c`), so it composes first (an R6 sequence
    // edge, like the paper's explicit composition sequences).
    cat.registry.order_after("fetch_statement", "fetch_orientation");
    cat.grammar(
        "fetch_orientation",
        "grammar fetch_orientation;
         fetch_statement : FETCH (NEXT | PRIOR | FIRST | LAST | ABSOLUTE NUMBER | RELATIVE NUMBER)? FROM? IDENT ;",
        &tokens::token_file(
            "fetch_orientation",
            &[
                "NEXT = kw; PRIOR = kw; FIRST = kw; LAST = kw; ABSOLUTE = kw; RELATIVE = kw;",
                tokens::NUMBER,
            ],
        ),
    );
}

static CATALOG: OnceLock<Catalog> = OnceLock::new();

/// The process-wide SQL:2003 catalog (built on first use).
pub fn catalog() -> &'static Catalog {
    CATALOG.get_or_init(Catalog::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds() {
        let cat = catalog();
        // The paper's ">500 features" counts per-diagram features (see the
        // census test below); the merged model de-duplicates shared nodes.
        assert!(cat.model().len() >= 200, "only {} features", cat.model().len());
        assert!(cat.registry().len() >= 140, "only {} artifacts", cat.registry().len());
    }

    #[test]
    fn all_diagrams_extract() {
        let cat = catalog();
        let diagrams = cat.diagrams();
        assert_eq!(diagrams.len(), DIAGRAMS.len());
        assert!(diagrams.len() >= 40, "paper claims 40 diagrams");
        let total: usize = diagrams.iter().map(|d| d.len()).sum();
        assert!(total > 500, "paper claims >500 features, got {total}");
    }

    #[test]
    fn figure1_structure() {
        let cat = catalog();
        let f1 = cat.diagram("query_specification").unwrap();
        for f in ["set_quantifier", "select_list", "table_expression"] {
            assert!(f1.by_name(f).is_some(), "missing {f} in Figure 1");
        }
        assert!(f1.by_name("table_expression").unwrap().optionality.is_mandatory());
        assert!(!f1.by_name("set_quantifier").unwrap().optionality.is_mandatory());
    }

    #[test]
    fn figure2_structure() {
        let cat = catalog();
        let f2 = cat.diagram("table_expression").unwrap();
        for f in ["from", "where", "group_by", "having", "window_clause"] {
            assert!(f2.by_name(f).is_some(), "missing {f} in Figure 2");
        }
        assert!(f2.by_name("from").unwrap().optionality.is_mandatory());
    }

    #[test]
    fn minimal_select_dialect() {
        let cat = catalog();
        let parser = cat
            .pipeline()
            .parser_for_selection(["query_statement", "select_sublist"])
            .unwrap();
        assert!(parser.parse("SELECT a FROM t").is_ok());
        assert!(parser.parse("SELECT a, b FROM t").is_ok());
        assert!(parser.parse("SELECT a FROM t WHERE a = 1").is_err());
        assert!(parser.parse("SELECT DISTINCT a FROM t").is_err());
        assert!(parser.parse("INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn schema_element_classification_covers_real_features() {
        // The paper's §5: an alternative classification references the same
        // features and yields working dialects.
        let cat = catalog();
        for (element, features) in cat.by_schema_element() {
            for f in &features {
                assert!(
                    cat.model().id_of(f).is_some(),
                    "schema-element group `{element}` names unknown feature `{f}`"
                );
            }
            // Every group completes into a composable dialect.
            let config = cat
                .complete(features.iter().copied())
                .unwrap_or_else(|e| panic!("{element}: {e}"));
            // groups that pull in OR-group parents may need a choice; skip
            // those configs rather than hand-tuning each group
            if cat.model().validate(&config).is_ok() {
                assert!(
                    cat.pipeline().parser_for(&config).is_ok(),
                    "{element} group does not compose"
                );
            }
        }
    }

    #[test]
    fn select_with_where_dialect() {
        let cat = catalog();
        let parser = cat
            .pipeline()
            .parser_for_selection(["query_statement", "select_sublist", "where"])
            .unwrap();
        assert!(parser.parse("SELECT a FROM t WHERE a = 1").is_ok());
        assert!(parser.parse("SELECT a FROM t WHERE a < b").is_ok());
        assert!(parser.parse("SELECT a FROM t WHERE a BETWEEN 1 AND 2").is_err());
    }
}

//! Predicate and boolean-logic feature diagrams (26–27).
//!
//! The `predicates` base contributes the spine
//! `search_condition → boolean_term → boolean_factor → predicate`, with the
//! boolean combinators (`OR`, `AND`, `NOT`, parentheses) as features of the
//! `boolean_logic` diagram merging their operators into the spine (rule
//! R4), and each predicate form appending an alternative to
//! `predicate_tail` (rule R3).

use crate::tokens::{token_file, LIST_PUNCT};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let preds = cat.b.optional(parent, "predicates");
    cat.grammar(
        "predicates",
        "grammar predicates;
         search_condition : boolean_term ;
         boolean_term : boolean_factor ;
         boolean_factor : predicate ;
         predicate : row_value predicate_tail #standard ;
         row_value : value_expression ;",
        "",
    );
    cat.b.requires("predicates", "value_expression");

    // ---- diagram 27: boolean_logic ----
    let bl = cat.b.optional(preds, "boolean_logic");
    cat.grammar("boolean_logic", "", "");
    cat.b.optional(bl, "or_operator");
    cat.grammar(
        "or_operator",
        "grammar or_operator; search_condition : boolean_term (OR boolean_term)* ;",
        "tokens or_operator; OR = kw;",
    );
    cat.b.optional(bl, "and_operator");
    cat.grammar(
        "and_operator",
        "grammar and_operator; boolean_term : boolean_factor (AND boolean_factor)* ;",
        "tokens and_operator; AND = kw;",
    );
    cat.b.optional(bl, "not_operator");
    cat.grammar(
        "not_operator",
        "grammar not_operator; boolean_factor : NOT? predicate ;",
        "tokens not_operator; NOT = kw;",
    );
    cat.b.optional(bl, "boolean_parentheses");
    cat.grammar(
        "boolean_parentheses",
        "grammar boolean_parentheses;
         predicate : LPAREN search_condition RPAREN #paren_condition ;",
        "tokens boolean_parentheses; LPAREN = \"(\"; RPAREN = \")\";",
    );

    // ---- diagram 26: predicate forms ----
    cat.b.mandatory(preds, "comparison_predicate");
    cat.grammar(
        "comparison_predicate",
        "grammar comparison_predicate;
         predicate_tail : comp_op row_value #comparison ;
         comp_op : EQ #eq | NEQ #neq | LE #le | GE #ge | LT #lt | GT #gt ;",
        "tokens comparison_predicate;\
         EQ = \"=\"; NEQ = \"<>\"; LE = \"<=\"; GE = \">=\"; LT = \"<\"; GT = \">\";",
    );

    cat.b.optional(preds, "between_predicate");
    cat.grammar(
        "between_predicate",
        "grammar between_predicate;
         predicate_tail : NOT? BETWEEN row_value AND row_value #between ;",
        "tokens between_predicate; NOT = kw; BETWEEN = kw; AND = kw;",
    );

    let inp = cat.b.optional(preds, "in_predicate");
    cat.grammar(
        "in_predicate",
        "grammar in_predicate;
         predicate_tail : NOT? IN LPAREN in_value_list RPAREN #in ;
         in_value_list : value_expression (COMMA value_expression)* ;",
        &token_file("in_predicate", &["NOT = kw; IN = kw;", LIST_PUNCT]),
    );
    cat.b.optional(inp, "in_subquery");
    cat.grammar(
        "in_subquery",
        "grammar in_subquery; predicate_tail : NOT? IN subquery #in_subquery ;",
        "tokens in_subquery; NOT = kw; IN = kw;",
    );
    cat.b.requires("in_subquery", "subquery");

    cat.b.optional(preds, "like_predicate");
    cat.grammar(
        "like_predicate",
        "grammar like_predicate;
         predicate_tail : NOT? LIKE value_expression (ESCAPE value_expression)? #like ;",
        "tokens like_predicate; NOT = kw; LIKE = kw; ESCAPE = kw;",
    );

    cat.b.optional(preds, "null_predicate");
    cat.grammar(
        "null_predicate",
        "grammar null_predicate; predicate_tail : IS NOT? NULL #is_null ;",
        "tokens null_predicate; IS = kw; NOT = kw; NULL = kw;",
    );

    cat.b.optional(preds, "exists_predicate");
    cat.grammar(
        "exists_predicate",
        "grammar exists_predicate; predicate : EXISTS subquery #exists ;",
        "tokens exists_predicate; EXISTS = kw;",
    );
    cat.b.requires("exists_predicate", "subquery");

    cat.b.optional(preds, "quantified_comparison");
    cat.grammar(
        "quantified_comparison",
        "grammar quantified_comparison;
         predicate_tail : comp_op (ALL | ANY | SOME) subquery #quantified ;",
        "tokens quantified_comparison; ALL = kw; ANY = kw; SOME = kw;",
    );
    cat.b.requires("quantified_comparison", "subquery");
    // No ordering edge is needed against comparison_predicate even though
    // both alternatives start with comp_op: on `= ALL (…)` the plain
    // comparison fails at `ALL` (a keyword can't start a row value) and the
    // engine backtracks into the quantified alternative.
    cat.b.requires("quantified_comparison", "comparison_predicate");

    cat.b.optional(preds, "distinct_predicate");
    cat.grammar(
        "distinct_predicate",
        "grammar distinct_predicate;
         predicate_tail : IS NOT? DISTINCT FROM row_value #is_distinct ;",
        "tokens distinct_predicate; IS = kw; NOT = kw; DISTINCT = kw; FROM = kw;",
    );

    cat.b.optional(preds, "truth_value_test");
    cat.grammar(
        "truth_value_test",
        "grammar truth_value_test;
         predicate_tail : IS NOT? (TRUE | FALSE | UNKNOWN) #truth_test ;",
        "tokens truth_value_test; IS = kw; NOT = kw; TRUE = kw; FALSE = kw; UNKNOWN = kw;",
    );

    cat.b.optional(preds, "overlaps_predicate");
    cat.grammar(
        "overlaps_predicate",
        "grammar overlaps_predicate; predicate : row_value OVERLAPS row_value #overlaps ;",
        "tokens overlaps_predicate; OVERLAPS = kw;",
    );
}

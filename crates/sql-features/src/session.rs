//! Session-management feature diagram (43): the SET statements.

use crate::tokens::{token_file, IDENT, STRING};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let sess = cat.b.optional(parent, "session_statement");
    cat.grammar(
        "session_statement",
        "grammar session_statement; sql_statement : session_statement #session ;",
        "",
    );
    cat.b.or(
        sess,
        &["set_schema", "set_role", "set_session_authorization", "set_time_zone"],
    );
    cat.grammar(
        "set_schema",
        "grammar set_schema;
             session_statement : SET SCHEMA (IDENT | STRING) #set_schema ;",
        &token_file("set_schema", &["SET = kw; SCHEMA = kw;", IDENT, STRING]),
    );
    cat.grammar(
        "set_role",
        "grammar set_role;
             session_statement : SET ROLE (NONE | IDENT | STRING) #set_role ;",
        &token_file("set_role", &["SET = kw; ROLE = kw; NONE = kw;", IDENT, STRING]),
    );
    cat.grammar(
        "set_session_authorization",
        "grammar set_session_authorization;
             session_statement : SET SESSION AUTHORIZATION (IDENT | STRING) #set_session_authorization ;",
        &token_file(
            "set_session_authorization",
            &["SET = kw; SESSION = kw; AUTHORIZATION = kw;", IDENT, STRING],
        ),
    );
    cat.grammar(
        "set_time_zone",
        "grammar set_time_zone;
             session_statement : SET TIME ZONE (LOCAL | STRING) #set_time_zone ;",
        &token_file(
            "set_time_zone",
            &["SET = kw; TIME = kw; ZONE = kw; LOCAL = kw;", STRING],
        ),
    );
}

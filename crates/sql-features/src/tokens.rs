//! Shared token-file fragments.
//!
//! Many features reference the same lexical classes (identifiers, numbers,
//! strings). Composition merges identical rules, so each feature's token
//! file simply includes the fragments it needs; these constants keep the
//! definitions textually identical across features (a textual drift would
//! surface as a provenance-labelled token conflict at composition time).

/// `IDENT` — regular identifiers.
pub const IDENT: &str = "IDENT = /[A-Za-z_][A-Za-z0-9_]*/;";

/// `NUMBER` — exact and approximate numeric literals.
pub const NUMBER: &str = "NUMBER = /[0-9]+(\\.[0-9]+)?([eE][+\\-]?[0-9]+)?/;";

/// `STRING` — single-quoted character literals with `''` escapes.
pub const STRING: &str = "STRING = /'([^']|'')*'/;";

/// Common punctuation used by list-shaped productions.
pub const LIST_PUNCT: &str = "COMMA = \",\"; LPAREN = \"(\"; RPAREN = \")\";";

/// Whitespace skip rule (also provided by the root `sql_2003` feature).
pub const WS: &str = "WS = skip /[ \\t\\r\\n]+/;";

/// Build a token-file source: header plus fragments.
pub fn token_file(feature: &str, fragments: &[&str]) -> String {
    let mut out = format!("tokens {feature};\n");
    for f in fragments {
        out.push_str(f);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_grammar::dsl::parse_tokens;

    #[test]
    fn fragments_parse() {
        let src = token_file("t", &[IDENT, NUMBER, STRING, LIST_PUNCT, WS]);
        let ts = parse_tokens(&src).unwrap();
        assert_eq!(ts.len(), 7);
        let s = ts.build().unwrap();
        let toks = s.scan("abc 1.5e3 'it''s' (a, b)").unwrap();
        let names: Vec<&str> = toks.iter().map(|t| s.name(t.kind)).collect();
        assert_eq!(
            names,
            ["IDENT", "NUMBER", "STRING", "LPAREN", "IDENT", "COMMA", "IDENT", "RPAREN"]
        );
    }
}

//! Schema-definition feature diagrams (33–40): CREATE TABLE (columns,
//! constraints, temporaries), CREATE VIEW / SCHEMA / DOMAIN, ALTER TABLE,
//! and DROP.

use crate::dml::{TABLE_NAME_RULE, TABLE_NAME_TOKENS};
use crate::tokens::{token_file, IDENT, LIST_PUNCT};
use crate::CatalogBuilder;
use sqlweave_feature_model::{Cardinality, FeatureId};

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    // ---- diagram 33: table_definition ----
    let tbl = cat.b.optional(parent, "table_definition");
    cat.grammar(
        "table_definition",
        &format!(
            "grammar table_definition;
             sql_statement : table_definition #create_table ;
             table_definition : CREATE TABLE table_name LPAREN table_element (COMMA table_element)* RPAREN ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "table_definition",
            &["CREATE = kw; TABLE = kw;", LIST_PUNCT, TABLE_NAME_TOKENS, IDENT],
        ),
    );

    // diagram 34: column_definition
    let col = cat.b.mandatory(tbl, "column_definition");
    cat.b.with_cardinality(col, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "column_definition",
        "grammar column_definition;
         table_element : column_definition #column ;
         column_definition : IDENT data_type ;",
        &token_file("column_definition", &[IDENT]),
    );
    cat.b.requires("column_definition", "data_type");

    cat.b.optional(col, "default_clause");
    cat.grammar(
        "default_clause",
        "grammar default_clause;
         column_definition : IDENT data_type (DEFAULT literal)? ;",
        "tokens default_clause; DEFAULT = kw;",
    );
    cat.b.requires("default_clause", "literal");

    cat.b.optional(col, "identity_column");
    cat.grammar(
        "identity_column",
        "grammar identity_column;
         column_definition : IDENT data_type (GENERATED ALWAYS AS IDENTITY)? ;",
        "tokens identity_column; GENERATED = kw; ALWAYS = kw; AS = kw; IDENTITY = kw;",
    );

    let cc = cat.b.optional(col, "column_constraints");
    cat.grammar(
        "column_constraints",
        "grammar column_constraints;
         column_definition : IDENT data_type column_constraint* ;",
        "",
    );
    cat.b.or(
        cc,
        &[
            "not_null_constraint",
            "column_unique",
            "column_primary_key",
            "column_check",
            "column_references",
        ],
    );
    cat.grammar(
        "not_null_constraint",
        "grammar not_null_constraint; column_constraint : NOT NULL #not_null ;",
        "tokens not_null_constraint; NOT = kw; NULL = kw;",
    );
    cat.grammar(
        "column_unique",
        "grammar column_unique; column_constraint : UNIQUE #unique ;",
        "tokens column_unique; UNIQUE = kw;",
    );
    cat.grammar(
        "column_primary_key",
        "grammar column_primary_key; column_constraint : PRIMARY KEY #primary_key ;",
        "tokens column_primary_key; PRIMARY = kw; KEY = kw;",
    );
    cat.grammar(
        "column_check",
        "grammar column_check;
         column_constraint : CHECK LPAREN search_condition RPAREN #check ;",
        "tokens column_check; CHECK = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.b.requires("column_check", "predicates");
    cat.grammar(
        "column_references",
        &format!(
            "grammar column_references;
             column_constraint : REFERENCES table_name (LPAREN column_name_list RPAREN)? #references ;
             column_name_list : IDENT (COMMA IDENT)* ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "column_references",
            &["REFERENCES = kw;", LIST_PUNCT, TABLE_NAME_TOKENS, IDENT],
        ),
    );

    // diagram 35: table_constraint
    let tc = cat.b.optional(tbl, "table_constraint");
    cat.grammar(
        "table_constraint",
        "grammar table_constraint;
             table_element : table_constraint #constraint ;
             table_constraint : (CONSTRAINT IDENT)? table_constraint_body ;
             column_name_list : IDENT (COMMA IDENT)* ;",
        &token_file("table_constraint", &["CONSTRAINT = kw;", LIST_PUNCT, IDENT]),
    );
    cat.b.or(
        tc,
        &[
            "primary_key_constraint",
            "unique_constraint",
            "foreign_key_constraint",
            "check_constraint",
        ],
    );
    cat.grammar(
        "primary_key_constraint",
        "grammar primary_key_constraint;
         table_constraint_body : PRIMARY KEY LPAREN column_name_list RPAREN #primary_key ;",
        &token_file("primary_key_constraint", &["PRIMARY = kw; KEY = kw;", LIST_PUNCT]),
    );
    cat.grammar(
        "unique_constraint",
        "grammar unique_constraint;
         table_constraint_body : UNIQUE LPAREN column_name_list RPAREN #unique ;",
        &token_file("unique_constraint", &["UNIQUE = kw;", LIST_PUNCT]),
    );
    cat.grammar(
        "foreign_key_constraint",
        &format!(
            "grammar foreign_key_constraint;
             table_constraint_body : FOREIGN KEY LPAREN column_name_list RPAREN REFERENCES table_name (LPAREN column_name_list RPAREN)? (ON DELETE referential_action)? (ON UPDATE referential_action)? #foreign_key ;
             referential_action : CASCADE #cascade | RESTRICT #restrict | SET NULL #set_null | SET DEFAULT #set_default | NO ACTION #no_action ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "foreign_key_constraint",
            &[
                "FOREIGN = kw; KEY = kw; REFERENCES = kw; ON = kw; DELETE = kw;\
                 UPDATE = kw; CASCADE = kw; RESTRICT = kw; SET = kw; NULL = kw;\
                 DEFAULT = kw; NO = kw; ACTION = kw;",
                LIST_PUNCT,
                TABLE_NAME_TOKENS,
                IDENT,
            ],
        ),
    );
    cat.grammar(
        "check_constraint",
        "grammar check_constraint;
         table_constraint_body : CHECK LPAREN search_condition RPAREN #check ;",
        "tokens check_constraint; CHECK = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.b.requires("check_constraint", "predicates");

    cat.b.optional(tbl, "temporary_table");
    cat.grammar(
        "temporary_table",
        "grammar temporary_table;
         table_definition : CREATE ((GLOBAL | LOCAL) TEMPORARY)? TABLE table_name LPAREN table_element (COMMA table_element)* RPAREN ;",
        "tokens temporary_table; GLOBAL = kw; LOCAL = kw; TEMPORARY = kw;",
    );

    // ---- diagram 36: view_definition ----
    let view = cat.b.optional(parent, "view_definition");
    cat.grammar(
        "view_definition",
        &format!(
            "grammar view_definition;
             sql_statement : view_definition #create_view ;
             view_definition : CREATE VIEW table_name (LPAREN column_name_list RPAREN)? AS query_expression ;
             column_name_list : IDENT (COMMA IDENT)* ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "view_definition",
            &["CREATE = kw; VIEW = kw; AS = kw;", LIST_PUNCT, TABLE_NAME_TOKENS, IDENT],
        ),
    );
    cat.b.requires("view_definition", "query_expression");
    cat.b.optional(view, "recursive_view");
    cat.grammar(
        "recursive_view",
        "grammar recursive_view;
         view_definition : CREATE RECURSIVE? VIEW table_name (LPAREN column_name_list RPAREN)? AS query_expression ;",
        "tokens recursive_view; RECURSIVE = kw;",
    );
    cat.b.optional(view, "with_check_option");
    cat.grammar(
        "with_check_option",
        "grammar with_check_option;
         view_definition : CREATE VIEW table_name (LPAREN column_name_list RPAREN)? AS query_expression (WITH CHECK OPTION)? ;",
        "tokens with_check_option; WITH = kw; CHECK = kw; OPTION = kw;",
    );

    // ---- diagram 37: schema_definition ----
    let sch = cat.b.optional(parent, "schema_definition");
    cat.grammar(
        "schema_definition",
        "grammar schema_definition;
             sql_statement : schema_definition #create_schema ;
             schema_definition : CREATE SCHEMA IDENT ;",
        &token_file("schema_definition", &["CREATE = kw; SCHEMA = kw;", IDENT]),
    );
    cat.b.optional(sch, "schema_authorization");
    cat.grammar(
        "schema_authorization",
        "grammar schema_authorization;
         schema_definition : CREATE SCHEMA IDENT (AUTHORIZATION IDENT)? ;",
        "tokens schema_authorization; AUTHORIZATION = kw;",
    );

    // ---- diagram 38: domain_definition ----
    let dom = cat.b.optional(parent, "domain_definition");
    cat.grammar(
        "domain_definition",
        "grammar domain_definition;
             sql_statement : domain_definition #create_domain ;
             domain_definition : CREATE DOMAIN IDENT AS? data_type ;",
        &token_file("domain_definition", &["CREATE = kw; DOMAIN = kw; AS = kw;", IDENT]),
    );
    cat.b.requires("domain_definition", "data_type");
    cat.b.optional(dom, "domain_default");
    cat.grammar(
        "domain_default",
        "grammar domain_default;
         domain_definition : CREATE DOMAIN IDENT AS? data_type (DEFAULT literal)? ;",
        "tokens domain_default; DEFAULT = kw;",
    );
    cat.b.requires("domain_default", "literal");
    cat.b.optional(dom, "domain_check");
    cat.grammar(
        "domain_check",
        "grammar domain_check;
         domain_definition : CREATE DOMAIN IDENT AS? data_type (CHECK LPAREN search_condition RPAREN)? ;",
        "tokens domain_check; CHECK = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.b.requires("domain_check", "predicates");

    // ---- diagram 39: alter_table_statement ----
    let alt = cat.b.optional(parent, "alter_table_statement");
    cat.grammar(
        "alter_table_statement",
        &format!(
            "grammar alter_table_statement;
             sql_statement : alter_table_statement #alter_table ;
             alter_table_statement : ALTER TABLE table_name alter_action ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "alter_table_statement",
            &["ALTER = kw; TABLE = kw;", TABLE_NAME_TOKENS, IDENT],
        ),
    );
    cat.b.or(
        alt,
        &[
            "add_column",
            "drop_column",
            "alter_column_default",
            "add_constraint",
            "drop_constraint",
        ],
    );
    cat.grammar(
        "add_column",
        "grammar add_column; alter_action : ADD COLUMN? column_definition #add_column ;",
        "tokens add_column; ADD = kw; COLUMN = kw;",
    );
    cat.b.requires("add_column", "column_definition");
    cat.grammar(
        "drop_column",
        "grammar drop_column;
         alter_action : DROP COLUMN? IDENT (CASCADE | RESTRICT)? #drop_column ;",
        &token_file(
            "drop_column",
            &["DROP = kw; COLUMN = kw; CASCADE = kw; RESTRICT = kw;", IDENT],
        ),
    );
    cat.grammar(
        "alter_column_default",
        "grammar alter_column_default;
         alter_action : ALTER COLUMN? IDENT SET DEFAULT literal #set_default
                      | ALTER COLUMN? IDENT DROP DEFAULT #drop_default ;",
        &token_file(
            "alter_column_default",
            &["ALTER = kw; COLUMN = kw; SET = kw; DROP = kw; DEFAULT = kw;", IDENT],
        ),
    );
    cat.b.requires("alter_column_default", "literal");
    cat.grammar(
        "add_constraint",
        "grammar add_constraint; alter_action : ADD table_constraint #add_constraint ;",
        "tokens add_constraint; ADD = kw;",
    );
    cat.b.requires("add_constraint", "table_constraint");
    cat.grammar(
        "drop_constraint",
        "grammar drop_constraint;
         alter_action : DROP CONSTRAINT IDENT (CASCADE | RESTRICT)? #drop_constraint ;",
        &token_file(
            "drop_constraint",
            &["DROP = kw; CONSTRAINT = kw; CASCADE = kw; RESTRICT = kw;", IDENT],
        ),
    );

    // ---- diagram 40: drop_statement ----
    let drp = cat.b.optional(parent, "drop_statement");
    cat.grammar(
        "drop_statement",
        "grammar drop_statement; sql_statement : drop_statement #drop ;",
        "",
    );
    cat.b.or(drp, &["drop_table", "drop_view", "drop_schema", "drop_domain"]);
    for (feat, kw, label) in [
        ("drop_table", "TABLE", "table"),
        ("drop_view", "VIEW", "view"),
        ("drop_schema", "SCHEMA", "schema"),
        ("drop_domain", "DOMAIN", "domain"),
    ] {
        cat.grammar(
            feat,
            &format!(
                "grammar {feat};
                 drop_statement : DROP {kw} table_name (CASCADE | RESTRICT)? #{label} ;
                 {TABLE_NAME_RULE}"
            ),
            &token_file(
                feat,
                &[
                    &format!("DROP = kw; {kw} = kw; CASCADE = kw; RESTRICT = kw;"),
                    TABLE_NAME_TOKENS,
                    IDENT,
                ],
            ),
        );
    }
}

//! Transaction-control feature diagram (42).

use crate::tokens::{token_file, IDENT};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let tx = cat.b.optional(parent, "transaction_statement");
    cat.grammar(
        "transaction_statement",
        "grammar transaction_statement;
         sql_statement : transaction_statement #transaction ;",
        "",
    );

    cat.b.mandatory(tx, "start_transaction");
    cat.grammar(
        "start_transaction",
        "grammar start_transaction;
         transaction_statement : START TRANSACTION transaction_modes? #start ;
         transaction_modes : transaction_mode (COMMA transaction_mode)* ;
         transaction_mode : READ ONLY #read_only | READ WRITE #read_write ;",
        "tokens start_transaction; START = kw; TRANSACTION = kw; READ = kw;\
         ONLY = kw; WRITE = kw; COMMA = \",\";",
    );

    cat.b.mandatory(tx, "commit_rollback");
    cat.grammar(
        "commit_rollback",
        "grammar commit_rollback;
         transaction_statement : COMMIT WORK? #commit | ROLLBACK WORK? #rollback ;",
        "tokens commit_rollback; COMMIT = kw; ROLLBACK = kw; WORK = kw;",
    );

    cat.b.optional(tx, "isolation_levels");
    cat.grammar(
        "isolation_levels",
        "grammar isolation_levels;
         transaction_mode : ISOLATION LEVEL isolation_level #isolation ;
         isolation_level : READ UNCOMMITTED #read_uncommitted
                         | READ COMMITTED #read_committed
                         | REPEATABLE READ #repeatable_read
                         | SERIALIZABLE #serializable ;",
        "tokens isolation_levels; ISOLATION = kw; LEVEL = kw; READ = kw;\
         UNCOMMITTED = kw; COMMITTED = kw; REPEATABLE = kw; SERIALIZABLE = kw;",
    );

    cat.b.optional(tx, "savepoints");
    cat.grammar(
        "savepoints",
        "grammar savepoints;
             transaction_statement : SAVEPOINT IDENT #savepoint
                                   | RELEASE SAVEPOINT IDENT #release
                                   | ROLLBACK WORK? TO SAVEPOINT? IDENT #rollback_to ;",
        &token_file(
            "savepoints",
            &["SAVEPOINT = kw; RELEASE = kw; ROLLBACK = kw; WORK = kw; TO = kw;", IDENT],
        ),
    );

    cat.b.optional(tx, "set_transaction");
    cat.grammar(
        "set_transaction",
        "grammar set_transaction;
         transaction_statement : SET LOCAL? TRANSACTION transaction_modes #set_transaction ;",
        "tokens set_transaction; SET = kw; LOCAL = kw; TRANSACTION = kw;",
    );
}

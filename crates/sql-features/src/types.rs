//! The data-type feature diagram (28), shared by DDL and CAST.
//!
//! Every concrete type family appends alternatives to `scalar_type` (rule
//! R3); the `array_type` suffix merges an optional onto the `data_type`
//! backbone (rule R4).

use crate::expressions::{INTERVAL_QUALIFIER_RULES, INTERVAL_QUALIFIER_TOKENS};
use crate::tokens::{token_file, NUMBER};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let dt = cat.b.optional(parent, "data_type");
    cat.grammar(
        "data_type",
        "grammar data_type; data_type : scalar_type ;",
        "",
    );

    // At least one type family must be present for `scalar_type` to exist.
    cat.b.or(
        dt,
        &[
            "character_types",
            "exact_numeric_types",
            "approximate_numeric_types",
            "boolean_type",
            "datetime_types",
            "interval_type",
            "binary_types",
        ],
    );

    cat.grammar(
        "character_types",
        "grammar character_types;
         scalar_type : (CHARACTER | CHAR) VARYING? (LPAREN NUMBER RPAREN)? #character
                     | VARCHAR (LPAREN NUMBER RPAREN)? #varchar
                     | CLOB #clob ;",
        &token_file(
            "character_types",
            &[
                "CHARACTER = kw; CHAR = kw; VARYING = kw; VARCHAR = kw; CLOB = kw;",
                "LPAREN = \"(\"; RPAREN = \")\";",
                NUMBER,
            ],
        ),
    );

    cat.grammar(
        "exact_numeric_types",
        "grammar exact_numeric_types;
         scalar_type : (NUMERIC | DECIMAL | DEC) (LPAREN NUMBER (COMMA NUMBER)? RPAREN)? #decimal
                     | SMALLINT #smallint
                     | (INTEGER | INT) #integer
                     | BIGINT #bigint ;",
        &token_file(
            "exact_numeric_types",
            &[
                "NUMERIC = kw; DECIMAL = kw; DEC = kw; SMALLINT = kw;\
                 INTEGER = kw; INT = kw; BIGINT = kw;",
                "LPAREN = \"(\"; RPAREN = \")\"; COMMA = \",\";",
                NUMBER,
            ],
        ),
    );

    cat.grammar(
        "approximate_numeric_types",
        "grammar approximate_numeric_types;
         scalar_type : FLOAT (LPAREN NUMBER RPAREN)? #float
                     | REAL #real
                     | DOUBLE PRECISION #double ;",
        &token_file(
            "approximate_numeric_types",
            &[
                "FLOAT = kw; REAL = kw; DOUBLE = kw; PRECISION = kw;",
                "LPAREN = \"(\"; RPAREN = \")\";",
                NUMBER,
            ],
        ),
    );

    cat.grammar(
        "boolean_type",
        "grammar boolean_type; scalar_type : BOOLEAN #boolean ;",
        "tokens boolean_type; BOOLEAN = kw;",
    );

    cat.grammar(
        "datetime_types",
        "grammar datetime_types;
         scalar_type : DATE #date
                     | TIME (LPAREN NUMBER RPAREN)? ((WITH | WITHOUT) TIME ZONE)? #time
                     | TIMESTAMP (LPAREN NUMBER RPAREN)? ((WITH | WITHOUT) TIME ZONE)? #timestamp ;",
        &token_file(
            "datetime_types",
            &[
                "DATE = kw; TIME = kw; TIMESTAMP = kw; WITH = kw; WITHOUT = kw; ZONE = kw;",
                "LPAREN = \"(\"; RPAREN = \")\";",
                NUMBER,
            ],
        ),
    );

    cat.grammar(
        "interval_type",
        &format!(
            "grammar interval_type;
             scalar_type : INTERVAL interval_qualifier #interval ;
             {INTERVAL_QUALIFIER_RULES}"
        ),
        &token_file(
            "interval_type",
            &["INTERVAL = kw;", INTERVAL_QUALIFIER_TOKENS],
        ),
    );

    cat.grammar(
        "binary_types",
        "grammar binary_types;
         scalar_type : BLOB #blob | BINARY VARYING? (LPAREN NUMBER RPAREN)? #binary ;",
        &token_file(
            "binary_types",
            &[
                "BLOB = kw; BINARY = kw; VARYING = kw;",
                "LPAREN = \"(\"; RPAREN = \")\";",
                NUMBER,
            ],
        ),
    );

    // Array suffix applies to any scalar type (SQL:2003 collection types).
    cat.b.optional(dt, "array_type");
    cat.grammar(
        "array_type",
        "grammar array_type;
         data_type : scalar_type (ARRAY (LBRACKET NUMBER RBRACKET)?)? ;",
        &token_file(
            "array_type",
            &["ARRAY = kw; LBRACKET = \"[\"; RBRACKET = \"]\";", NUMBER],
        ),
    );
}

//! Sensor-network query extensions (diagram 45) — the TinySQL-style
//! constructs the paper cites as motivation for scaled-down SQL dialects
//! ("sensor networks specific query constructs such as epoch duration and
//! sample period clause").

use crate::tokens::{token_file, NUMBER};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let sensor = cat.b.optional(parent, "sensor_query");
    cat.grammar("sensor_query", "", "");
    cat.b.requires("sensor_query", "query_specification");

    cat.b.optional(sensor, "epoch_duration");
    cat.grammar(
        "epoch_duration",
        "grammar epoch_duration;
         query_specification : SELECT select_list table_expression (EPOCH DURATION NUMBER)? ;",
        &token_file("epoch_duration", &["EPOCH = kw; DURATION = kw;", NUMBER]),
    );

    cat.b.optional(sensor, "sample_period");
    cat.grammar(
        "sample_period",
        "grammar sample_period;
         query_specification : SELECT select_list table_expression (SAMPLE PERIOD NUMBER)? ;",
        &token_file("sample_period", &["SAMPLE = kw; PERIOD = kw;", NUMBER]),
    );

    cat.b.optional(sensor, "lifetime_clause");
    cat.grammar(
        "lifetime_clause",
        "grammar lifetime_clause;
         query_specification : SELECT select_list table_expression (LIFETIME NUMBER)? ;",
        &token_file("lifetime_clause", &["LIFETIME = kw;", NUMBER]),
    );
}

//! Query-side feature diagrams (2–15): Figure 1 (*Query Specification*),
//! Figure 2 (*Table Expression*), and their satellite diagrams — set
//! quantifier, select list, FROM, table references, joins, WHERE, GROUP BY,
//! HAVING, windows, ORDER BY, query expressions (set operations / WITH),
//! and subqueries.

use crate::tokens::{token_file, IDENT, LIST_PUNCT, NUMBER};
use crate::CatalogBuilder;
use sqlweave_feature_model::{Cardinality, FeatureId};

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let qstmt = cat.b.optional(parent, "query_statement");
    cat.grammar(
        "query_statement",
        "grammar query_statement; sql_statement : query_expression #query ;",
        "",
    );

    // ---- diagram 14: query_expression ----
    let qe = cat.b.mandatory(qstmt, "query_expression");
    cat.grammar(
        "query_expression",
        "grammar query_expression;
         query_expression : query_term ;
         query_term : query_primary ;
         query_primary : query_specification #select ;",
        "",
    );

    // ---- diagram 2 (Figure 1): query_specification ----
    let qs = cat.b.mandatory(qe, "query_specification");
    cat.grammar(
        "query_specification",
        "grammar query_specification;
         query_specification : SELECT select_list table_expression ;",
        "tokens query_specification; SELECT = kw;",
    );

    // diagram 4: set_quantifier
    let sq = cat.b.optional(qs, "set_quantifier");
    cat.grammar(
        "set_quantifier",
        "grammar set_quantifier;
         query_specification : SELECT set_quantifier? select_list table_expression ;",
        "",
    );
    cat.b.or(sq, &["all", "distinct"]);
    cat.grammar(
        "all",
        "grammar all; set_quantifier : ALL #all ;",
        "tokens all; ALL = kw;",
    );
    cat.grammar(
        "distinct",
        "grammar distinct; set_quantifier : DISTINCT #distinct ;",
        "tokens distinct; DISTINCT = kw;",
    );

    // diagram 5: select_list
    let sl = cat.b.mandatory(qs, "select_list");
    cat.grammar("select_list", "", "");
    let members = cat.b.or(sl, &["select_sublist", "select_asterisk"]);
    let sublist = members[0];
    cat.b.with_cardinality(sublist, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "select_sublist",
        "grammar select_sublist;
         select_list : select_sublist (COMMA select_sublist)* #columns ;
         select_sublist : derived_column #derived ;",
        "tokens select_sublist; COMMA = \",\";",
    );
    cat.grammar(
        "select_asterisk",
        "grammar select_asterisk; select_list : ASTERISK #star ;",
        "tokens select_asterisk; ASTERISK = \"*\";",
    );
    let dc = cat.b.mandatory(sublist, "derived_column");
    cat.grammar(
        "derived_column",
        "grammar derived_column; derived_column : value_expression ;",
        "",
    );
    cat.b.requires("derived_column", "value_expression");
    cat.b.optional(dc, "as_clause");
    cat.grammar(
        "as_clause",
        "grammar as_clause;
         derived_column : value_expression as_clause? ;
         as_clause : AS? IDENT ;",
        &token_file("as_clause", &["AS = kw;", IDENT]),
    );
    cat.b.optional(sublist, "qualified_asterisk");
    cat.grammar(
        "qualified_asterisk",
        "grammar qualified_asterisk;
         select_sublist : identifier_chain DOT ASTERISK #qualified_star ;",
        "tokens qualified_asterisk; DOT = \".\"; ASTERISK = \"*\";",
    );
    cat.b.requires("qualified_asterisk", "identifier_chain");
    // `t.*` must be tried before the committed derived-column alternative.
    cat.registry.order_after("select_sublist", "qualified_asterisk");

    // ---- diagram 3 (Figure 2): table_expression ----
    let te = cat.b.mandatory(qs, "table_expression");
    cat.grammar(
        "table_expression",
        "grammar table_expression; table_expression : from_clause ;",
        "",
    );

    // diagram 6: from
    let from = cat.b.mandatory(te, "from");
    cat.grammar(
        "from",
        "grammar from; from_clause : FROM table_reference ;",
        "tokens from; FROM = kw;",
    );

    // diagram 7: table_reference
    let tr = cat.b.mandatory(from, "table_reference");
    cat.b.with_cardinality(tr, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "table_reference",
        "grammar table_reference;
             table_reference : table_primary ;
             table_primary : table_name #table ;
             table_name : IDENT (DOT IDENT)* ;",
        &token_file("table_reference", &["DOT = \".\";", IDENT]),
    );
    cat.b.optional(tr, "correlation_name");
    cat.grammar(
        "correlation_name",
        "grammar correlation_name;
             table_primary : table_name correlation? #table ;
             correlation : AS? IDENT ;",
        &token_file("correlation_name", &["AS = kw;", IDENT]),
    );
    cat.b.optional(tr, "derived_table");
    cat.grammar(
        "derived_table",
        "grammar derived_table; table_primary : subquery correlation #derived_table ;",
        "",
    );
    cat.b.requires("derived_table", "subquery");
    cat.b.requires("derived_table", "correlation_name");

    cat.b.optional(from, "from_list");
    cat.grammar(
        "from_list",
        "grammar from_list; from_clause : FROM table_reference (COMMA table_reference)* ;",
        "tokens from_list; COMMA = \",\";",
    );

    // diagram 8: joined_table
    let jt = cat.b.optional(from, "joined_table");
    cat.grammar(
        "joined_table",
        "grammar joined_table;
         table_reference : table_primary joined_table* ;
         joined_table : join_type? JOIN table_primary join_condition #qualified ;
         join_condition : ON search_condition #on ;",
        "tokens joined_table; JOIN = kw; ON = kw;",
    );
    cat.b.requires("joined_table", "predicates");
    cat.b.mandatory(jt, "inner_join");
    cat.grammar(
        "inner_join",
        "grammar inner_join; join_type : INNER #inner ;",
        "tokens inner_join; INNER = kw;",
    );
    let oj = cat.b.optional(jt, "outer_join");
    cat.grammar("outer_join", "", "");
    cat.b.or(oj, &["left_join", "right_join", "full_join"]);
    cat.grammar(
        "left_join",
        "grammar left_join; join_type : LEFT OUTER? #left ;",
        "tokens left_join; LEFT = kw; OUTER = kw;",
    );
    cat.grammar(
        "right_join",
        "grammar right_join; join_type : RIGHT OUTER? #right ;",
        "tokens right_join; RIGHT = kw; OUTER = kw;",
    );
    cat.grammar(
        "full_join",
        "grammar full_join; join_type : FULL OUTER? #full ;",
        "tokens full_join; FULL = kw; OUTER = kw;",
    );
    cat.b.optional(jt, "cross_join");
    cat.grammar(
        "cross_join",
        "grammar cross_join; joined_table : CROSS JOIN table_primary #cross ;",
        "tokens cross_join; CROSS = kw; JOIN = kw;",
    );
    cat.b.optional(jt, "natural_join");
    cat.grammar(
        "natural_join",
        "grammar natural_join; joined_table : NATURAL join_type? JOIN table_primary #natural ;",
        "tokens natural_join; NATURAL = kw; JOIN = kw;",
    );
    cat.b.optional(jt, "join_using");
    cat.grammar(
        "join_using",
        "grammar join_using;
             join_condition : USING LPAREN column_name_list RPAREN #using ;
             column_name_list : IDENT (COMMA IDENT)* ;",
        &token_file("join_using", &["USING = kw;", LIST_PUNCT, IDENT]),
    );

    // diagram 9: where
    cat.b.optional(te, "where");
    cat.grammar(
        "where",
        "grammar where;
         table_expression : from_clause where_clause? ;
         where_clause : WHERE search_condition ;",
        "tokens where; WHERE = kw;",
    );
    cat.b.requires("where", "predicates");

    // diagram 10: group_by
    let gb = cat.b.optional(te, "group_by");
    cat.grammar(
        "group_by",
        "grammar group_by;
         table_expression : from_clause group_by_clause? ;
         group_by_clause : GROUP BY grouping_element (COMMA grouping_element)* ;
         grouping_element : column_reference #column ;",
        "tokens group_by; GROUP = kw; BY = kw; COMMA = \",\";",
    );
    cat.b.requires("group_by", "column_reference");
    cat.b.optional(gb, "grouping_sets");
    cat.grammar(
        "grouping_sets",
        "grammar grouping_sets;
         grouping_element : GROUPING SETS LPAREN grouping_element (COMMA grouping_element)* RPAREN #sets ;",
        &token_file("grouping_sets", &["GROUPING = kw; SETS = kw;", LIST_PUNCT]),
    );
    cat.b.optional(gb, "rollup");
    cat.grammar(
        "rollup",
        "grammar rollup;
         grouping_element : ROLLUP LPAREN column_reference (COMMA column_reference)* RPAREN #rollup ;",
        &token_file("rollup", &["ROLLUP = kw;", LIST_PUNCT]),
    );
    cat.b.optional(gb, "cube");
    cat.grammar(
        "cube",
        "grammar cube;
         grouping_element : CUBE LPAREN column_reference (COMMA column_reference)* RPAREN #cube ;",
        &token_file("cube", &["CUBE = kw;", LIST_PUNCT]),
    );

    // diagram 11: having
    cat.b.optional(te, "having");
    cat.grammar(
        "having",
        "grammar having;
         table_expression : from_clause having_clause? ;
         having_clause : HAVING search_condition ;",
        "tokens having; HAVING = kw;",
    );
    cat.b.requires("having", "group_by");
    cat.b.requires("having", "predicates");

    // diagram 12: window_clause
    let win = cat.b.optional(te, "window_clause");
    cat.grammar(
        "window_clause",
        "grammar window_clause;
             table_expression : from_clause window_clause? ;
             window_clause : WINDOW window_definition (COMMA window_definition)* ;
             window_definition : IDENT AS LPAREN window_spec RPAREN ;
             window_spec : ;",
        &token_file("window_clause", &["WINDOW = kw; AS = kw;", LIST_PUNCT, IDENT]),
    );
    cat.b.optional(win, "partition_by");
    cat.grammar(
        "partition_by",
        "grammar partition_by;
         window_spec : partition_clause? ;
         partition_clause : PARTITION BY column_reference (COMMA column_reference)* ;",
        "tokens partition_by; PARTITION = kw; BY = kw; COMMA = \",\";",
    );
    cat.b.requires("partition_by", "column_reference");
    cat.b.optional(win, "window_order");
    cat.grammar(
        "window_order",
        "grammar window_order;
         window_spec : window_order_clause? ;
         window_order_clause : ORDER BY sort_specification (COMMA sort_specification)* ;",
        "tokens window_order; ORDER = kw; BY = kw; COMMA = \",\";",
    );
    cat.b.requires("window_order", "order_by");
    cat.b.optional(win, "window_frame");
    // window_order is delayed by its requires(order_by) edge; keep the
    // frame clause after the ORDER BY clause inside window_spec.
    cat.registry.order_after("window_frame", "window_order");
    cat.grammar(
        "window_frame",
        "grammar window_frame;
             window_spec : frame_clause? ;
             frame_clause : (ROWS | RANGE) frame_extent ;
             frame_extent : BETWEEN frame_bound AND frame_bound #bounded | frame_bound #single ;
             frame_bound : UNBOUNDED (PRECEDING | FOLLOWING) #unbounded
                         | CURRENT ROW #current_row
                         | NUMBER (PRECEDING | FOLLOWING) #offset ;",
        &token_file(
            "window_frame",
            &[
                "ROWS = kw; RANGE = kw; BETWEEN = kw; AND = kw; UNBOUNDED = kw;\
                 PRECEDING = kw; FOLLOWING = kw; CURRENT = kw; ROW = kw;",
                NUMBER,
            ],
        ),
    );

    // ---- diagram 15: subquery (declared before the postfix clauses so the
    // alternatives land early; harmless either way) ----
    cat.b.optional(qe, "subquery");
    cat.grammar(
        "subquery",
        "grammar subquery;
         query_primary : subquery #nested ;
         subquery : LPAREN query_expression RPAREN ;",
        "tokens subquery; LPAREN = \"(\"; RPAREN = \")\";",
    );

    // ---- set operations (part of diagram 14) ----
    let so = cat.b.optional(qe, "set_operations");
    cat.grammar(
        "set_operations",
        "grammar set_operations;
         query_expression : query_term (set_operator query_term)* ;",
        "",
    );
    cat.b.or(so, &["union_op", "except_op", "intersect_op"]);
    cat.grammar(
        "union_op",
        "grammar union_op; set_operator : UNION (ALL | DISTINCT)? #union ;",
        "tokens union_op; UNION = kw; ALL = kw; DISTINCT = kw;",
    );
    cat.grammar(
        "except_op",
        "grammar except_op; set_operator : EXCEPT (ALL | DISTINCT)? #except ;",
        "tokens except_op; EXCEPT = kw; ALL = kw; DISTINCT = kw;",
    );
    cat.grammar(
        "intersect_op",
        "grammar intersect_op; set_operator : INTERSECT (ALL | DISTINCT)? #intersect ;",
        "tokens intersect_op; INTERSECT = kw; ALL = kw; DISTINCT = kw;",
    );

    // ---- diagram 13: order_by (after set operations in clause order) ----
    let ob = cat.b.optional(qe, "order_by");
    cat.grammar(
        "order_by",
        "grammar order_by;
         query_expression : query_term order_by_clause? ;
         order_by_clause : ORDER BY sort_specification (COMMA sort_specification)* ;
         sort_specification : value_expression ;",
        "tokens order_by; ORDER = kw; BY = kw; COMMA = \",\";",
    );
    cat.b.requires("order_by", "value_expression");
    cat.b.optional(ob, "asc_desc");
    cat.grammar(
        "asc_desc",
        "grammar asc_desc; sort_specification : value_expression (ASC | DESC)? ;",
        "tokens asc_desc; ASC = kw; DESC = kw;",
    );
    cat.b.optional(ob, "nulls_ordering");
    cat.grammar(
        "nulls_ordering",
        "grammar nulls_ordering;
         sort_specification : value_expression (NULLS (FIRST | LAST))? ;",
        "tokens nulls_ordering; NULLS = kw; FIRST = kw; LAST = kw;",
    );

    // row-limit clause (OFFSET … FETCH FIRST …; SQL:2008 extension, kept as
    // an extension feature per the paper's "other packages" note)
    cat.b.optional(qe, "row_limit");
    cat.grammar(
        "row_limit",
        "grammar row_limit;
             query_expression : query_term (OFFSET NUMBER (ROW | ROWS)?)? (FETCH (FIRST | NEXT) NUMBER (ROW | ROWS) ONLY)? ;",
        &token_file(
            "row_limit",
            &[
                "OFFSET = kw; FETCH = kw; FIRST = kw; NEXT = kw; ROW = kw; ROWS = kw; ONLY = kw;",
                NUMBER,
            ],
        ),
    );

    // ---- WITH clause (part of diagram 14) ----
    let wc = cat.b.optional(qe, "with_clause");
    cat.grammar(
        "with_clause",
        "grammar with_clause;
             query_expression : with_clause? query_term ;
             with_clause : WITH with_element (COMMA with_element)* ;
             with_element : IDENT (LPAREN column_name_list RPAREN)? AS LPAREN query_expression RPAREN ;
             column_name_list : IDENT (COMMA IDENT)* ;",
        &token_file("with_clause", &["WITH = kw; AS = kw;", LIST_PUNCT, IDENT]),
    );
    cat.b.optional(wc, "recursive_with");
    cat.grammar(
        "recursive_with",
        "grammar recursive_with;
         with_clause : WITH RECURSIVE? with_element (COMMA with_element)* ;",
        "tokens recursive_with; WITH = kw; RECURSIVE = kw;",
    );
}

//! Value-expression feature diagrams (16–25): literals, column references,
//! arithmetic, CASE/CAST, string/numeric/datetime functions, aggregates,
//! and scalar subqueries.
//!
//! Grammar layering (all LL-friendly, no left recursion):
//!
//! ```text
//! value_expression : term ((PLUS | MINUS) term)*            -- arithmetic
//! term             : factor ((ASTERISK | SOLIDUS) factor)*  -- arithmetic
//! factor           : (PLUS|MINUS)? value_primary (CONCAT value_primary)*
//! value_primary    : column | literal | (…) | CASE | CAST | functions | …
//! ```
//!
//! Base features contribute the plain layer (`value_expression : term`);
//! operator features merge their repetition/optional slots via rule R4.

use crate::tokens::{token_file, IDENT, NUMBER, STRING};
use crate::CatalogBuilder;
use sqlweave_feature_model::FeatureId;

/// The datetime-field production shared by EXTRACT and interval
/// qualifiers; identical text composes idempotently.
pub(crate) const INTERVAL_FIELD_RULE: &str =
    "interval_field : YEAR #year | MONTH #month | DAY #day | HOUR #hour | MINUTE #minute | SECOND #second ;";

/// Shared interval-qualifier productions (also used by `interval_type`);
/// identical text composes idempotently.
pub(crate) const INTERVAL_QUALIFIER_RULES: &str = "interval_qualifier : interval_field (TO interval_field)? ;
 interval_field : YEAR #year | MONTH #month | DAY #day | HOUR #hour | MINUTE #minute | SECOND #second ;";

/// Token fragment for the datetime-field keywords.
pub(crate) const INTERVAL_FIELD_TOKENS: &str =
    "YEAR = kw; MONTH = kw; DAY = kw; HOUR = kw; MINUTE = kw; SECOND = kw;";

/// Token fragment for the interval-qualifier keywords.
pub(crate) const INTERVAL_QUALIFIER_TOKENS: &str =
    "TO = kw; YEAR = kw; MONTH = kw; DAY = kw; HOUR = kw; MINUTE = kw; SECOND = kw;";

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    let exprs = cat.b.optional(parent, "expressions");

    // ---- diagram 16: value_expression ----
    let ve = cat.b.mandatory(exprs, "value_expression");
    cat.grammar(
        "value_expression",
        "grammar value_expression;
         value_expression : term ;
         term : factor ;
         factor : value_primary ;",
        "",
    );

    // ---- diagram 17: literal ----
    let lit = cat.b.mandatory(ve, "literal");
    cat.grammar(
        "literal",
        "grammar literal; value_primary : literal #literal ;",
        "",
    );
    cat.b.mandatory(lit, "numeric_literal");
    cat.grammar(
        "numeric_literal",
        "grammar numeric_literal; literal : NUMBER #number ;",
        &token_file("numeric_literal", &[NUMBER]),
    );
    cat.b.optional(lit, "string_literal");
    cat.grammar(
        "string_literal",
        "grammar string_literal; literal : STRING #string ;",
        &token_file("string_literal", &[STRING]),
    );
    cat.b.optional(lit, "boolean_literal");
    cat.grammar(
        "boolean_literal",
        "grammar boolean_literal; literal : TRUE #true | FALSE #false ;",
        "tokens boolean_literal; TRUE = kw; FALSE = kw;",
    );
    cat.b.optional(lit, "null_literal");
    cat.grammar(
        "null_literal",
        "grammar null_literal; literal : NULL #null ;",
        "tokens null_literal; NULL = kw;",
    );
    cat.b.optional(lit, "datetime_literal");
    cat.grammar(
        "datetime_literal",
        "grammar datetime_literal;
         literal : DATE STRING #date | TIME STRING #time | TIMESTAMP STRING #timestamp ;",
        &token_file(
            "datetime_literal",
            &["DATE = kw; TIME = kw; TIMESTAMP = kw;", STRING],
        ),
    );
    cat.b.optional(lit, "interval_literal");
    cat.grammar(
        "interval_literal",
        &format!(
            "grammar interval_literal;
             literal : INTERVAL (PLUS | MINUS)? STRING interval_qualifier #interval ;
             {INTERVAL_QUALIFIER_RULES}"
        ),
        &token_file(
            "interval_literal",
            &[
                "INTERVAL = kw; PLUS = \"+\"; MINUS = \"-\";",
                INTERVAL_QUALIFIER_TOKENS,
                STRING,
            ],
        ),
    );

    // ---- diagram 18: column_reference ----
    let cr = cat.b.mandatory(ve, "column_reference");
    cat.grammar(
        "column_reference",
        "grammar column_reference;
         value_primary : column_reference #column ;
         column_reference : identifier_chain ;",
        "",
    );
    cat.b.mandatory(cr, "identifier_chain");
    cat.grammar(
        "identifier_chain",
        "grammar identifier_chain; identifier_chain : IDENT (DOT IDENT)* ;",
        &token_file("identifier_chain", &["DOT = \".\";", IDENT]),
    );

    // ---- diagram 19: arithmetic ----
    let arith = cat.b.optional(ve, "arithmetic");
    cat.grammar("arithmetic", "", "");
    cat.b.mandatory(arith, "additive_ops");
    cat.grammar(
        "additive_ops",
        "grammar additive_ops; value_expression : term ((PLUS | MINUS) term)* ;",
        "tokens additive_ops; PLUS = \"+\"; MINUS = \"-\";",
    );
    cat.b.optional(arith, "multiplicative_ops");
    cat.grammar(
        "multiplicative_ops",
        "grammar multiplicative_ops; term : factor ((ASTERISK | SOLIDUS) factor)* ;",
        "tokens multiplicative_ops; ASTERISK = \"*\"; SOLIDUS = \"/\";",
    );
    cat.b.optional(arith, "unary_sign");
    cat.grammar(
        "unary_sign",
        "grammar unary_sign; factor : (PLUS | MINUS)? value_primary ;",
        "tokens unary_sign; PLUS = \"+\"; MINUS = \"-\";",
    );

    cat.b.optional(ve, "parenthesized_expression");
    cat.grammar(
        "parenthesized_expression",
        "grammar parenthesized_expression;
         value_primary : LPAREN value_expression RPAREN #paren ;",
        "tokens parenthesized_expression; LPAREN = \"(\"; RPAREN = \")\";",
    );

    cat.b.optional(ve, "concat_operator");
    cat.grammar(
        "concat_operator",
        "grammar concat_operator; factor : value_primary (CONCAT value_primary)* ;",
        "tokens concat_operator; CONCAT = \"||\";",
    );

    // ---- diagram 20: case_expression ----
    let case = cat.b.optional(ve, "case_expression");
    cat.grammar(
        "case_expression",
        "grammar case_expression; value_primary : case_expression #case ;",
        "",
    );
    cat.b.mandatory(case, "searched_case");
    cat.grammar(
        "searched_case",
        "grammar searched_case;
         case_expression : CASE searched_when+ (ELSE value_expression)? END #searched ;
         searched_when : WHEN search_condition THEN value_expression ;",
        "tokens searched_case; CASE = kw; WHEN = kw; THEN = kw; ELSE = kw; END = kw;",
    );
    cat.b.requires("searched_case", "predicates");
    cat.b.optional(case, "simple_case");
    cat.grammar(
        "simple_case",
        "grammar simple_case;
         case_expression : CASE value_expression simple_when+ (ELSE value_expression)? END #simple ;
         simple_when : WHEN value_expression THEN value_expression ;",
        "tokens simple_case; CASE = kw; WHEN = kw; THEN = kw; ELSE = kw; END = kw;",
    );
    cat.b.optional(case, "nullif_function");
    cat.grammar(
        "nullif_function",
        "grammar nullif_function;
         value_primary : NULLIF LPAREN value_expression COMMA value_expression RPAREN #nullif ;",
        "tokens nullif_function; NULLIF = kw; LPAREN = \"(\"; RPAREN = \")\"; COMMA = \",\";",
    );
    cat.b.optional(case, "coalesce_function");
    cat.grammar(
        "coalesce_function",
        "grammar coalesce_function;
         value_primary : COALESCE LPAREN value_expression (COMMA value_expression)* RPAREN #coalesce ;",
        "tokens coalesce_function; COALESCE = kw; LPAREN = \"(\"; RPAREN = \")\"; COMMA = \",\";",
    );

    // ---- diagram 21: cast_expression ----
    cat.b.optional(ve, "cast_expression");
    cat.grammar(
        "cast_expression",
        "grammar cast_expression;
         value_primary : cast_expression #cast ;
         cast_expression : CAST LPAREN value_expression AS data_type RPAREN ;",
        "tokens cast_expression; CAST = kw; AS = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.b.requires("cast_expression", "data_type");

    // ---- diagram 22: string_functions ----
    let sf = cat.b.optional(ve, "string_functions");
    cat.grammar(
        "string_functions",
        "grammar string_functions; value_primary : string_function #string_fn ;",
        "",
    );
    cat.b.or(
        sf,
        &["substring_fn", "fold_fn", "trim_fn", "char_length_fn", "position_fn"],
    );
    cat.grammar(
        "substring_fn",
        "grammar substring_fn;
         string_function : SUBSTRING LPAREN value_expression FROM value_expression (FOR value_expression)? RPAREN #substring ;",
        "tokens substring_fn; SUBSTRING = kw; FROM = kw; FOR = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "fold_fn",
        "grammar fold_fn;
         string_function : UPPER LPAREN value_expression RPAREN #upper
                         | LOWER LPAREN value_expression RPAREN #lower ;",
        "tokens fold_fn; UPPER = kw; LOWER = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "trim_fn",
        "grammar trim_fn;
         string_function : TRIM LPAREN ((LEADING | TRAILING | BOTH) FROM)? value_expression RPAREN #trim ;",
        "tokens trim_fn; TRIM = kw; LEADING = kw; TRAILING = kw; BOTH = kw; FROM = kw;\
         LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "char_length_fn",
        "grammar char_length_fn;
         string_function : (CHAR_LENGTH | CHARACTER_LENGTH) LPAREN value_expression RPAREN #char_length ;",
        "tokens char_length_fn; CHAR_LENGTH = kw; CHARACTER_LENGTH = kw;\
         LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "position_fn",
        "grammar position_fn;
         string_function : POSITION LPAREN value_expression IN value_expression RPAREN #position ;",
        "tokens position_fn; POSITION = kw; IN = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );

    // ---- diagram 23: numeric_functions ----
    let nf = cat.b.optional(ve, "numeric_functions");
    cat.grammar(
        "numeric_functions",
        "grammar numeric_functions; value_primary : numeric_function #numeric_fn ;",
        "",
    );
    cat.b.or(
        nf,
        &["abs_fn", "mod_fn", "floor_ceil_fn", "power_fn", "sqrt_fn", "ln_fn", "exp_fn"],
    );
    cat.grammar(
        "abs_fn",
        "grammar abs_fn; numeric_function : ABS LPAREN value_expression RPAREN #abs ;",
        "tokens abs_fn; ABS = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "mod_fn",
        "grammar mod_fn;
         numeric_function : MOD LPAREN value_expression COMMA value_expression RPAREN #mod ;",
        "tokens mod_fn; MOD = kw; LPAREN = \"(\"; RPAREN = \")\"; COMMA = \",\";",
    );
    cat.grammar(
        "floor_ceil_fn",
        "grammar floor_ceil_fn;
         numeric_function : FLOOR LPAREN value_expression RPAREN #floor
                          | (CEIL | CEILING) LPAREN value_expression RPAREN #ceiling ;",
        "tokens floor_ceil_fn; FLOOR = kw; CEIL = kw; CEILING = kw;\
         LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "power_fn",
        "grammar power_fn;
         numeric_function : POWER LPAREN value_expression COMMA value_expression RPAREN #power ;",
        "tokens power_fn; POWER = kw; LPAREN = \"(\"; RPAREN = \")\"; COMMA = \",\";",
    );
    cat.grammar(
        "sqrt_fn",
        "grammar sqrt_fn; numeric_function : SQRT LPAREN value_expression RPAREN #sqrt ;",
        "tokens sqrt_fn; SQRT = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "ln_fn",
        "grammar ln_fn; numeric_function : LN LPAREN value_expression RPAREN #ln ;",
        "tokens ln_fn; LN = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "exp_fn",
        "grammar exp_fn; numeric_function : EXP LPAREN value_expression RPAREN #exp ;",
        "tokens exp_fn; EXP = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );

    // ---- diagram 24: datetime_functions ----
    let df = cat.b.optional(ve, "datetime_functions");
    cat.grammar(
        "datetime_functions",
        "grammar datetime_functions; value_primary : datetime_function #datetime_fn ;",
        "",
    );
    cat.b.or(df, &["current_datetime_fn", "extract_fn"]);
    cat.grammar(
        "current_datetime_fn",
        "grammar current_datetime_fn;
         datetime_function : CURRENT_DATE #current_date
                           | CURRENT_TIME #current_time
                           | CURRENT_TIMESTAMP #current_timestamp ;",
        "tokens current_datetime_fn; CURRENT_DATE = kw; CURRENT_TIME = kw; CURRENT_TIMESTAMP = kw;",
    );
    cat.grammar(
        "extract_fn",
        &format!(
            "grammar extract_fn;
             datetime_function : EXTRACT LPAREN interval_field FROM value_expression RPAREN #extract ;
             {INTERVAL_FIELD_RULE}"
        ),
        &token_file(
            "extract_fn",
            &[
                "EXTRACT = kw; FROM = kw; LPAREN = \"(\"; RPAREN = \")\";",
                INTERVAL_FIELD_TOKENS,
            ],
        ),
    );

    // ---- diagram 25: aggregate_functions ----
    let agg = cat.b.optional(ve, "aggregate_functions");
    cat.grammar(
        "aggregate_functions",
        "grammar aggregate_functions;
         value_primary : aggregate_function #aggregate ;
         agg_quantifier : (DISTINCT | ALL)? ;",
        "tokens aggregate_functions; DISTINCT = kw; ALL = kw;",
    );
    cat.b.or(
        agg,
        &[
            "count_star",
            "count_agg",
            "sum_agg",
            "avg_agg",
            "min_agg",
            "max_agg",
            "stddev_pop_agg",
            "stddev_samp_agg",
            "var_pop_agg",
            "var_samp_agg",
        ],
    );
    cat.grammar(
        "count_star",
        "grammar count_star; aggregate_function : COUNT LPAREN ASTERISK RPAREN #count_star ;",
        "tokens count_star; COUNT = kw; ASTERISK = \"*\"; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.grammar(
        "count_agg",
        "grammar count_agg;
         aggregate_function : COUNT LPAREN agg_quantifier value_expression RPAREN #count ;",
        "tokens count_agg; COUNT = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    for (feat, kw, label) in [
        ("sum_agg", "SUM", "sum"),
        ("avg_agg", "AVG", "avg"),
        ("min_agg", "MIN", "min"),
        ("max_agg", "MAX", "max"),
        ("stddev_pop_agg", "STDDEV_POP", "stddev_pop"),
        ("stddev_samp_agg", "STDDEV_SAMP", "stddev_samp"),
        ("var_pop_agg", "VAR_POP", "var_pop"),
        ("var_samp_agg", "VAR_SAMP", "var_samp"),
    ] {
        cat.grammar(
            feat,
            &format!(
                "grammar {feat};
                 aggregate_function : {kw} LPAREN agg_quantifier value_expression RPAREN #{label} ;"
            ),
            &format!("tokens {feat}; {kw} = kw; LPAREN = \"(\"; RPAREN = \")\";"),
        );
    }

    // ---- SQL:2003 ranking window functions (requires named windows) ----
    let wf = cat.b.optional(ve, "window_functions");
    cat.grammar(
        "window_functions",
        "grammar window_functions;
         value_primary : ranking_function #window_fn ;
         ranking_function : ranking_kind LPAREN RPAREN OVER LPAREN window_spec RPAREN ;",
        "tokens window_functions; OVER = kw; LPAREN = \"(\"; RPAREN = \")\";",
    );
    cat.b.requires("window_functions", "window_clause");
    cat.b.or(wf, &["rank_fn", "dense_rank_fn", "row_number_fn"]);
    cat.grammar(
        "rank_fn",
        "grammar rank_fn; ranking_kind : RANK #rank ;",
        "tokens rank_fn; RANK = kw;",
    );
    cat.grammar(
        "dense_rank_fn",
        "grammar dense_rank_fn; ranking_kind : DENSE_RANK #dense_rank ;",
        "tokens dense_rank_fn; DENSE_RANK = kw;",
    );
    cat.grammar(
        "row_number_fn",
        "grammar row_number_fn; ranking_kind : ROW_NUMBER #row_number ;",
        "tokens row_number_fn; ROW_NUMBER = kw;",
    );

    // ---- scalar subqueries (bridges to the DQL subtree) ----
    cat.b.optional(ve, "scalar_subquery");
    cat.grammar(
        "scalar_subquery",
        "grammar scalar_subquery; value_primary : subquery #scalar_subquery ;",
        "",
    );
    cat.b.requires("scalar_subquery", "subquery");
}

//! Data-manipulation feature diagrams (29–32): INSERT, UPDATE, DELETE,
//! MERGE.

use crate::tokens::{token_file, IDENT, LIST_PUNCT};
use crate::CatalogBuilder;
use sqlweave_feature_model::{Cardinality, FeatureId};

/// `table_name` is shared by every statement that names a table; identical
/// text composes idempotently.
pub(crate) const TABLE_NAME_RULE: &str = "table_name : IDENT (DOT IDENT)* ;";

/// Token fragment for [`TABLE_NAME_RULE`].
pub(crate) const TABLE_NAME_TOKENS: &str = "DOT = \".\";";

pub(crate) fn define(cat: &mut CatalogBuilder, parent: FeatureId) {
    // ---- diagram 29: insert_statement ----
    let ins = cat.b.optional(parent, "insert_statement");
    cat.grammar(
        "insert_statement",
        &format!(
            "grammar insert_statement;
             sql_statement : insert_statement #insert ;
             insert_statement : INSERT INTO table_name insert_source ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "insert_statement",
            &["INSERT = kw; INTO = kw;", TABLE_NAME_TOKENS, IDENT],
        ),
    );
    let iv = cat.b.mandatory(ins, "insert_values");
    cat.b.with_cardinality(iv, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "insert_values",
        "grammar insert_values;
         insert_source : VALUES row_constructor (COMMA row_constructor)* #values ;
         row_constructor : LPAREN insert_value (COMMA insert_value)* RPAREN ;
         insert_value : value_expression #value | DEFAULT #default ;",
        &token_file("insert_values", &["VALUES = kw; DEFAULT = kw;", LIST_PUNCT]),
    );
    cat.b.requires("insert_values", "value_expression");
    cat.b.optional(ins, "insert_columns");
    cat.grammar(
        "insert_columns",
        "grammar insert_columns;
             insert_statement : INSERT INTO table_name (LPAREN column_name_list RPAREN)? insert_source ;
             column_name_list : IDENT (COMMA IDENT)* ;",
        &token_file("insert_columns", &[LIST_PUNCT, IDENT]),
    );
    cat.b.optional(ins, "insert_query");
    cat.grammar(
        "insert_query",
        "grammar insert_query; insert_source : query_expression #query ;",
        "",
    );
    cat.b.requires("insert_query", "query_expression");
    cat.b.optional(ins, "insert_default_values");
    cat.grammar(
        "insert_default_values",
        "grammar insert_default_values; insert_source : DEFAULT VALUES #default_values ;",
        "tokens insert_default_values; DEFAULT = kw; VALUES = kw;",
    );
    // `DEFAULT VALUES` must be tried before the committed VALUES list.
    cat.registry.order_after("insert_values", "insert_default_values");

    // ---- diagram 30: update_statement ----
    let upd = cat.b.optional(parent, "update_statement");
    cat.grammar(
        "update_statement",
        &format!(
            "grammar update_statement;
             sql_statement : update_statement #update ;
             update_statement : UPDATE table_name SET set_clause (COMMA set_clause)* ;
             set_clause : IDENT EQ update_source ;
             update_source : value_expression #value | DEFAULT #default ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "update_statement",
            &[
                "UPDATE = kw; SET = kw; DEFAULT = kw; EQ = \"=\"; COMMA = \",\";",
                TABLE_NAME_TOKENS,
                IDENT,
            ],
        ),
    );
    cat.b.requires("update_statement", "value_expression");
    cat.b.optional(upd, "update_where");
    cat.grammar(
        "update_where",
        "grammar update_where;
         update_statement : UPDATE table_name SET set_clause (COMMA set_clause)* (WHERE search_condition)? ;",
        "tokens update_where; WHERE = kw;",
    );
    cat.b.requires("update_where", "predicates");
    cat.b.optional(upd, "update_positioned");
    // The positioned form must be *tried before* the searched form: the
    // searched alternative's optional `(WHERE search_condition)?` commits
    // to an empty WHERE when the condition fails to parse, leaving the
    // trailing `WHERE CURRENT OF …` unconsumed. Composing positioned first
    // puts it ahead in the choice order (R6 composition sequence).
    cat.registry.order_after("update_statement", "update_positioned");
    cat.registry.order_after("update_where", "update_positioned");
    cat.grammar(
        "update_positioned",
        "grammar update_positioned;
         update_statement : UPDATE table_name SET set_clause (COMMA set_clause)* WHERE CURRENT OF IDENT #positioned ;",
        &token_file(
            "update_positioned",
            &["WHERE = kw; CURRENT = kw; OF = kw;", IDENT],
        ),
    );
    cat.b.requires("update_positioned", "cursor_statement");

    // ---- diagram 31: delete_statement ----
    let del = cat.b.optional(parent, "delete_statement");
    cat.grammar(
        "delete_statement",
        &format!(
            "grammar delete_statement;
             sql_statement : delete_statement #delete ;
             delete_statement : DELETE FROM table_name ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "delete_statement",
            &["DELETE = kw; FROM = kw;", TABLE_NAME_TOKENS, IDENT],
        ),
    );
    cat.b.optional(del, "delete_where");
    cat.grammar(
        "delete_where",
        "grammar delete_where;
         delete_statement : DELETE FROM table_name (WHERE search_condition)? ;",
        "tokens delete_where; WHERE = kw;",
    );
    cat.b.requires("delete_where", "predicates");
    cat.b.optional(del, "delete_positioned");
    // Same ordering requirement as update_positioned.
    cat.registry.order_after("delete_statement", "delete_positioned");
    cat.registry.order_after("delete_where", "delete_positioned");
    cat.grammar(
        "delete_positioned",
        "grammar delete_positioned;
         delete_statement : DELETE FROM table_name WHERE CURRENT OF IDENT #positioned ;",
        &token_file(
            "delete_positioned",
            &["WHERE = kw; CURRENT = kw; OF = kw;", IDENT],
        ),
    );
    cat.b.requires("delete_positioned", "cursor_statement");

    // ---- diagram 32: merge_statement ----
    let mrg = cat.b.optional(parent, "merge_statement");
    cat.b.with_cardinality(mrg, Cardinality::ONE_OR_MORE);
    cat.grammar(
        "merge_statement",
        &format!(
            "grammar merge_statement;
             sql_statement : merge_statement #merge ;
             merge_statement : MERGE INTO table_name USING table_name ON search_condition merge_when+ ;
             {TABLE_NAME_RULE}"
        ),
        &token_file(
            "merge_statement",
            &[
                "MERGE = kw; INTO = kw; USING = kw; ON = kw; WHEN = kw;",
                TABLE_NAME_TOKENS,
                IDENT,
            ],
        ),
    );
    cat.b.requires("merge_statement", "predicates");
    cat.b.or(mrg, &["merge_update_branch", "merge_insert_branch"]);
    cat.grammar(
        "merge_update_branch",
        "grammar merge_update_branch;
         merge_when : WHEN MATCHED THEN UPDATE SET set_clause (COMMA set_clause)* #matched ;",
        "tokens merge_update_branch; WHEN = kw; MATCHED = kw; THEN = kw;\
         UPDATE = kw; SET = kw; COMMA = \",\";",
    );
    cat.b.requires("merge_update_branch", "update_statement");
    cat.grammar(
        "merge_insert_branch",
        "grammar merge_insert_branch;
             merge_when : WHEN NOT MATCHED THEN INSERT (LPAREN column_name_list RPAREN)? VALUES row_constructor #not_matched ;
             column_name_list : IDENT (COMMA IDENT)* ;",
        &token_file(
            "merge_insert_branch",
            &[
                "WHEN = kw; NOT = kw; MATCHED = kw; THEN = kw; INSERT = kw; VALUES = kw;",
                LIST_PUNCT,
                IDENT,
            ],
        ),
    );
    cat.b.requires("merge_insert_branch", "insert_values");
}

//! Damage-region relexing for incremental editing.
//!
//! An edit replaces one byte range of a document. Because maximal-munch
//! scanning is suffix-pure — the scan from any byte position depends only
//! on the text from that position on — the token stream after an edit can
//! be repaired locally: restart the scanner at a boundary provably
//! unaffected by the edit, scan forward over the changed region, and stop
//! as soon as the scan lands on an old token boundary past the edit (from
//! there the old suffix text is byte-identical, so the old tokens are
//! exactly what a full rescan would produce, modulo a span shift).
//!
//! The delicate part is the *restart* position. A munch can examine bytes
//! past the end of the token it emits (scanning `12.x` accepts `12` but
//! examines `.` and `x` while hoping for a fraction), so a token wholly
//! before the edit may still have *observed* edited bytes and would match
//! differently on the new text.
//! [`crate::dfa::Dfa::probe_overhang_by_tag`] bounds that lookahead per
//! rule: a token whose end is at least its rule's bound before the edit
//! cannot have observed it. Rules whose bound is `None` — typically
//! quoted strings with doubled-quote escapes, where the closing quote's
//! accept state re-enters the unbounded string body — get no static
//! bound at all; their tokens instead carry *exact* probe frontiers,
//! recorded at scan time and maintained across edits, and so do failed
//! munches (lexical errors), which have no accepting state to anchor any
//! bound. Both exact-frontier sets are supplied by the caller from
//! previous scans.

use crate::compiled;
use crate::line_index::LineIndex;
use crate::scanner::{LexError, Scanner, Token, TokenKind};

/// Random access to the previous scan's token stream, spans in old-text
/// byte coordinates.
///
/// [`Scanner::relex`] is generic over this so incremental callers that
/// keep token spans in a rebased representation (true span = stored span
/// + a per-chunk base offset, so a suffix shift after an edit is O(#chunks)
/// instead of O(#tokens)) can answer the relex's span queries on demand:
/// the relex only reads O(log n) tokens through binary searches plus the
/// damaged window itself, so no caller needs to materialize absolute
/// spans for the whole stream first.
pub trait TokenSource {
    /// Number of tokens in the stream.
    fn len(&self) -> usize;
    /// The `i`-th token with its absolute old-text span (`i < len()`).
    fn get(&self, i: usize) -> Token;
    /// Whether the stream has no tokens.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TokenSource for [Token] {
    fn len(&self) -> usize {
        <[Token]>::len(self)
    }
    fn get(&self, i: usize) -> Token {
        self[i]
    }
}

impl TokenSource for Vec<Token> {
    fn len(&self) -> usize {
        <[Token]>::len(self)
    }
    fn get(&self, i: usize) -> Token {
        self[i]
    }
}

/// `slice::partition_point` over a [`TokenSource`]: first index where
/// `pred` is false, assuming `pred` is monotone over the stream.
fn partition<S: TokenSource + ?Sized>(src: &S, mut pred: impl FnMut(Token) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, src.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(src.get(mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Whether some token in `src` starts exactly at `at` (binary search).
fn starts_at<S: TokenSource + ?Sized>(src: &S, at: usize) -> bool {
    let i = partition(src, |t| t.start < at);
    i < src.len() && src.get(i).start == at
}

/// One maximal-munch step taken in isolation: the match (if any), and the
/// exclusive *probe frontier* — one past the furthest byte the automaton
/// examined while looking for a longer match. `usize::MAX` means the
/// munch ran into end of input, i.e. it observed "no more bytes", which an
/// append would invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawStep {
    /// End byte of the longest match; `None` if no rule matched here.
    pub end: Option<usize>,
    /// Kind of the match; `None` for skip-rule matches (and failures).
    pub kind: Option<TokenKind>,
    /// Exclusive probe frontier (`usize::MAX` = observed end of input).
    pub probe: usize,
}

/// The result of [`Scanner::relex`]: a splice of the old token stream.
///
/// Old tokens `old_lo..old_hi` are replaced by `tokens` (spans already in
/// new-text coordinates); old tokens before `old_lo` are untouched, old
/// tokens from `old_hi` on are reproduced by shifting their spans by the
/// edit's length delta. Lexical errors in `start_byte..resync_new` are
/// likewise replaced by `errors`.
#[derive(Debug, Clone)]
pub struct Relex {
    /// First old token index replaced.
    pub old_lo: usize,
    /// One past the last old token index replaced.
    pub old_hi: usize,
    /// Replacement tokens, spans in the edited text.
    pub tokens: Vec<Token>,
    /// Lexical errors inside the relexed window, in order, with line and
    /// column already resolved against the edited text.
    pub errors: Vec<LexError>,
    /// Probe frontier of each entry of `errors` (same order), for future
    /// restart decisions.
    pub err_probes: Vec<usize>,
    /// `(token_start, frontier)` of every token the relexed window
    /// produced whose kind is probe-unbounded, ascending, in new-text
    /// coordinates — collected *before* the common-prefix trim, so the
    /// pairs cover the whole rescanned window `start_byte..resync_new`
    /// even when the leading tokens were dropped from `tokens`. Callers
    /// maintaining a probe cache splice these over their old entries in
    /// that range.
    pub tok_probes: Vec<(usize, usize)>,
    /// Byte where relexing began (old and new text agree before this).
    pub start_byte: usize,
    /// Old-text byte where the scan rejoined the old stream; `None` if it
    /// scanned to end of input instead (then `old_hi == old token count`).
    pub resync_old: Option<usize>,
    /// New-text byte of the same boundary (`resync_old` + length delta).
    pub resync_new: Option<usize>,
}

impl Scanner {
    /// Take one maximal-munch step at `pos`, reporting the probe frontier
    /// alongside the match. Mirrors the compiled per-byte walk of
    /// [`Scanner::scan_compiled`] exactly (same tables, same UTF-8
    /// fallback), so a sequence of `step_raw` calls reproduces a full scan
    /// step for step.
    pub fn step_raw(&self, input: &str, pos: usize) -> RawStep {
        let bytes = input.as_bytes();
        let compiled = &self.compiled;
        let mut state = 0u32;
        let mut i = pos;
        let mut best: Option<(usize, u32)> = None;
        let mut probe = usize::MAX; // overwritten unless we run off the end
        while i < bytes.len() {
            let b = bytes[i];
            let next = if b < 0x80 {
                i += 1;
                compiled.step_ascii(state, b)
            } else {
                let c = input[i..].chars().next().expect("non-empty suffix");
                i += c.len_utf8();
                match self.dfa.step(state, c) {
                    Some(next) => next,
                    None => compiled::DEAD,
                }
            };
            if next == compiled::DEAD {
                probe = i;
                break;
            }
            state = next;
            let meta = compiled.accept_meta(state);
            if meta != compiled::NO_ACCEPT {
                best = Some((i, meta));
            }
        }
        match best {
            Some((end, meta)) => RawStep {
                end: Some(end),
                kind: (meta & compiled::SKIP_FLAG == 0)
                    .then_some(TokenKind(meta & compiled::TAG_MASK)),
                probe,
            },
            None => RawStep { end: None, kind: None, probe },
        }
    }

    /// Upper bound, in bytes, of [`crate::dfa::Dfa::probe_overhang`]
    /// (characters are at most 4 bytes).
    pub fn probe_overhang_bytes(&self) -> Option<usize> {
        self.dfa.probe_overhang().map(|chars| chars * 4)
    }

    /// Upper bound, in bytes, on the probe overhang of every *bounded*
    /// rule ([`crate::dfa::Dfa::probe_overhang_by_tag`]; characters are
    /// at most 4 bytes). Unbounded non-skip rules are excluded — their
    /// matches carry exact recorded frontiers instead — but an unbounded
    /// *skip* rule returns `None`: skip matches leave no token behind to
    /// carry a frontier, so no finite restart bound exists and relexing
    /// falls back to byte 0.
    pub fn bounded_overhang_bytes(&self) -> Option<usize> {
        let mut max = 1usize;
        for (tag, oh) in self.overhang_by_tag.iter().enumerate() {
            match oh {
                Some(chars) => max = max.max(chars * 4),
                None if self.skip.contains(tag) => return None,
                None => {}
            }
        }
        Some(max)
    }

    /// `true` if a match of `kind` can examine input unboundedly far past
    /// its own end (e.g. an unterminated-string prefix re-entering the
    /// string body), so its restart safety needs an exact recorded probe
    /// frontier rather than the static per-rule bound.
    pub fn kind_probe_unbounded(&self, kind: TokenKind) -> bool {
        self.overhang_by_tag
            .get(kind.index())
            .is_some_and(|oh| oh.is_none())
    }

    /// Exact probe frontiers, via [`Scanner::step_raw`], of every token
    /// in `toks` whose kind is probe-unbounded, as ascending
    /// `(token_start, frontier)` pairs — the per-document cache an
    /// incremental caller feeds back to [`Scanner::relex`] as
    /// `old_tok_probes` on later edits.
    pub fn token_probes(&self, text: &str, toks: &[Token]) -> Vec<(usize, usize)> {
        toks.iter()
            .filter(|t| self.kind_probe_unbounded(t.kind))
            .map(|t| (t.start, self.step_raw(text, t.start).probe))
            .collect()
    }

    /// Relex the damage region of an edit that replaced old-text bytes
    /// `edit_start..edit_old_end` (the replacement now occupies new-text
    /// bytes `edit_start..edit_new_end`).
    ///
    /// `old_toks` is the previous full token stream (spans in the
    /// pre-edit text, whose byte length is `old_text_len` — the restart
    /// and resync logic compares old *positions*, never old bytes, so a
    /// caller may splice its text buffer in place before calling),
    /// `old_errors` the previous lexical errors as `(position, probe)`
    /// pairs in ascending position order, and `old_tok_probes` the
    /// recorded frontiers of the previous probe-unbounded tokens
    /// (ascending `(token_start, frontier)` pairs, as produced by
    /// [`Scanner::token_probes`] and maintained across edits from
    /// [`Relex::tok_probes`]). `new_lines` must already be the line index
    /// of `new_text`. The scan restarts at the latest boundary where
    /// every earlier match and failure provably never examined an edited
    /// byte, and stops at the first old scan boundary at or past the edit
    /// (token start, error position, or end of input).
    #[allow(clippy::too_many_arguments)]
    pub fn relex<S: TokenSource + ?Sized>(
        &self,
        old_text_len: usize,
        new_text: &str,
        new_lines: &LineIndex,
        old_toks: &S,
        old_errors: &[(usize, usize)],
        old_tok_probes: &[(usize, usize)],
        edit_start: usize,
        edit_old_end: usize,
        edit_new_end: usize,
    ) -> Relex {
        debug_assert!(edit_start <= edit_old_end && edit_old_end <= old_text_len);
        debug_assert!(edit_start <= edit_new_end && edit_new_end <= new_text.len());
        // A bounded-rule match ending more than `bm` bytes before the
        // edit died before reaching it; token ends are ascending, so the
        // candidate prefix is a partition. Restart at the end of the last
        // such token: the gap after it (skip runs, error skips) gets
        // rescanned, every earlier skip munch ends no later and is
        // covered by the same bound (skip rules are all bounded whenever
        // `bm` is `Some`), and the two exact-frontier passes below handle
        // the munches the static bound cannot: unbounded-rule matches
        // and failed munches.
        let mut start_byte = match self.bounded_overhang_bytes() {
            Some(bm) => {
                let safe = partition(old_toks, |t| t.end.saturating_add(bm) <= edit_start);
                if safe == 0 { 0 } else { old_toks.get(safe - 1).end }
            }
            None => 0,
        };
        // Matches of probe-unbounded rules carry exact recorded
        // frontiers; the first (leftmost) one that observed an edited
        // byte caps the restart, and rescanning every later one keeps
        // the cache splice sound. Ascending order makes the first
        // violator below the current restart the only one that matters.
        for &(at, probe) in old_tok_probes {
            if at >= start_byte {
                break;
            }
            if probe > edit_start {
                start_byte = at;
                break;
            }
        }
        // Failed munches have no accept to anchor the overhang bound; use
        // their recorded probe frontiers exactly.
        for &(at, probe) in old_errors {
            if at < start_byte && probe > edit_start {
                start_byte = at;
            }
        }
        let old_lo = partition(old_toks, |t| t.start < start_byte);

        let delta = edit_new_end as isize - edit_old_end as isize;
        let mut tokens = Vec::new();
        let mut errors = Vec::new();
        let mut err_probes = Vec::new();
        let mut tok_probes = Vec::new();
        let mut pos = start_byte;
        let mut resync_old = None;
        while pos < new_text.len() {
            if pos >= edit_new_end {
                // Fresh scan boundary past the edit: if the corresponding
                // old byte was also a scan boundary, the identical suffix
                // text reproduces the old stream from here on.
                let old_pos = (pos as isize - delta) as usize;
                let at_token = starts_at(old_toks, old_pos);
                let at_error =
                    old_errors.binary_search_by_key(&old_pos, |&(at, _)| at).is_ok();
                if at_token || at_error {
                    resync_old = Some(old_pos);
                    break;
                }
            }
            let step = self.step_raw(new_text, pos);
            match step.end {
                Some(end) => {
                    if let Some(kind) = step.kind {
                        tokens.push(Token { kind, start: pos, end });
                        if self.kind_probe_unbounded(kind) {
                            tok_probes.push((pos, step.probe));
                        }
                    }
                    pos = end;
                }
                None => {
                    let found = new_text[pos..].chars().next();
                    let (line, column) = new_lines.line_col(new_text, pos);
                    errors.push(LexError { at: pos, line, column, found });
                    err_probes.push(step.probe);
                    match found {
                        Some(c) => pos += c.len_utf8(),
                        None => break,
                    }
                }
            }
        }
        let old_hi = match resync_old {
            Some(q) => partition(old_toks, |t| t.start < q),
            None => old_toks.len(),
        };

        // Trim the re-produced common prefix (tokens strictly before the
        // edit match the old stream byte for byte) so callers see the
        // minimal damaged token range. Only spans ending at or before the
        // edit are comparable — an equal-span token overlapping the edit
        // may have different text.
        let mut keep = 0usize;
        let mut lo = old_lo;
        while keep < tokens.len()
            && lo < old_hi
            && tokens[keep] == old_toks.get(lo)
            && tokens[keep].end <= edit_start
        {
            keep += 1;
            lo += 1;
        }
        tokens.drain(..keep);

        Relex {
            old_lo: lo,
            old_hi,
            tokens,
            errors,
            err_probes,
            tok_probes,
            start_byte,
            resync_old,
            resync_new: resync_old.map(|q| (q as isize + delta) as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenset::TokenSet;

    fn sql_scanner() -> Scanner {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.keyword("FROM").unwrap();
        ts.punct("SEMI", ";").unwrap();
        ts.punct("COMMA", ",").unwrap();
        ts.pattern("IDENT", "[A-Za-z_][A-Za-z0-9_]*").unwrap();
        ts.pattern("NUMBER", "[0-9]+(\\.[0-9]+)?([eE][+\\-]?[0-9]+)?").unwrap();
        ts.pattern("STRING", "'([^']|'')*'").unwrap();
        ts.skip("WS", "[ \\t\\r\\n]+").unwrap();
        ts.skip("LINE_COMMENT", "--[^\\n]*").unwrap();
        ts.build().unwrap()
    }

    /// Apply `relex` and reassemble the full token stream + errors, for
    /// comparison against a from-scratch resilient scan.
    fn incremental_scan(
        s: &Scanner,
        old_text: &str,
        edit: (usize, usize, &str),
    ) -> (Vec<Token>, Vec<usize>) {
        let (start, old_end, rep) = edit;
        let mut new_text = String::new();
        new_text.push_str(&old_text[..start]);
        new_text.push_str(rep);
        new_text.push_str(&old_text[old_end..]);

        let mut old_toks = Vec::new();
        let old_errs = s.scan_resilient_into(old_text, &mut old_toks);
        let old_err_probes: Vec<(usize, usize)> = old_errs
            .iter()
            .map(|e| (e.at, s.step_raw(old_text, e.at).probe))
            .collect();
        let old_tok_probes = s.token_probes(old_text, &old_toks);

        let new_lines = LineIndex::new(&new_text);
        let delta = (start + rep.len()) as isize - old_end as isize;
        let r = s.relex(
            old_text.len(),
            &new_text,
            &new_lines,
            &old_toks,
            &old_err_probes,
            &old_tok_probes,
            start,
            old_end,
            start + rep.len(),
        );

        let mut toks: Vec<Token> = old_toks[..r.old_lo].to_vec();
        toks.extend_from_slice(&r.tokens);
        for t in &old_toks[r.old_hi..] {
            toks.push(Token {
                kind: t.kind,
                start: (t.start as isize + delta) as usize,
                end: (t.end as isize + delta) as usize,
            });
        }
        let mut errs: Vec<usize> = old_err_probes
            .iter()
            .filter(|&&(at, _)| at < r.start_byte)
            .map(|&(at, _)| at)
            .collect();
        errs.extend(r.errors.iter().map(|e| e.at));
        if let Some(q) = r.resync_old {
            errs.extend(
                old_err_probes
                    .iter()
                    .filter(|&&(at, _)| at >= q)
                    .map(|&(at, _)| (at as isize + delta) as usize),
            );
        }
        (toks, errs)
    }

    fn assert_edit_matches_full(s: &Scanner, old_text: &str, edit: (usize, usize, &str)) {
        let (start, old_end, rep) = edit;
        let mut new_text = String::new();
        new_text.push_str(&old_text[..start]);
        new_text.push_str(rep);
        new_text.push_str(&old_text[old_end..]);
        let mut full = Vec::new();
        let full_errs = s.scan_resilient_into(&new_text, &mut full);
        let (inc, inc_errs) = incremental_scan(s, old_text, edit);
        assert_eq!(inc, full, "edit {edit:?} on {old_text:?}");
        assert_eq!(
            inc_errs,
            full_errs.iter().map(|e| e.at).collect::<Vec<_>>(),
            "errors after edit {edit:?} on {old_text:?}"
        );
    }

    #[test]
    fn single_token_edits_resync_quickly() {
        let s = sql_scanner();
        let text = "SELECT alpha, beta FROM t1; SELECT gamma FROM t2";
        for (start, old_end, rep) in [
            (7, 12, "omega"),      // replace an identifier
            (7, 7, "x"),           // grow an identifier at its start
            (12, 12, "_tail"),     // grow an identifier at its end
            (26, 27, ""),          // delete the semicolon
            (26, 26, ";;"),        // insert more separators
            (0, 6, "FROM"),        // replace the leading keyword
            (48, 48, " WHERE"),    // append at EOF (lexical error: none)
            (0, 48, ""),           // delete everything
            (20, 24, ""),          // delete `FROM` (merges surrounding ws)
        ] {
            assert_edit_matches_full(&s, text, (start, old_end, rep));
        }
    }

    #[test]
    fn edits_that_merge_or_split_tokens() {
        let s = sql_scanner();
        // Deleting the space merges `alpha beta` into one identifier.
        assert_edit_matches_full(&s, "alpha beta", (5, 6, ""));
        // Inserting a space splits one identifier.
        assert_edit_matches_full(&s, "alphabeta", (5, 5, " "));
        // Editing `12.5` into `12x5`: the number's lookahead probed the
        // dot, the restart must back over it.
        assert_edit_matches_full(&s, "12.5 rest", (3, 4, "x"));
        assert_edit_matches_full(&s, "12.5 rest", (2, 3, ""));
        // `1e` exponent lookahead: `12e+` probes two past the mantissa.
        assert_edit_matches_full(&s, "12 e5", (2, 3, ""));
    }

    #[test]
    fn edits_inside_strings_and_comments() {
        let s = sql_scanner();
        let text = "SELECT 'a string' FROM t -- trailing\nSELECT b FROM u";
        for edit in [
            (9, 15, "редактор"), // replace string contents (multi-byte)
            (8, 8, "''"),        // escaped quote inside the string
            (16, 17, ""),        // delete the closing quote (unterminated)
            (30, 30, "mid"),     // edit inside the line comment
            (36, 37, " "),       // delete the newline ending the comment
        ] {
            assert_edit_matches_full(&s, text, edit);
        }
        // Closing a previously unterminated string rewrites the suffix.
        assert_edit_matches_full(&s, "SELECT 'open FROM t", (13, 13, "' "));
    }

    #[test]
    fn edits_around_lexical_errors() {
        let s = sql_scanner();
        let text = "SELECT # a FROM ? t";
        for edit in [
            (7, 8, "#?"),   // grow the garbage
            (7, 8, "x"),    // fix the first error
            (16, 17, ""),   // delete the second error
            (0, 0, "? "),   // new leading error
            (19, 19, " ~"), // new trailing error
        ] {
            assert_edit_matches_full(&s, text, edit);
        }
    }

    #[test]
    fn randomized_edits_match_full_rescan() {
        let s = sql_scanner();
        // Deterministic xorshift so failures reproduce.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound.max(1) as u64) as usize
        };
        let base = "SELECT a1, b2 FROM t; SELECT 'x''y' FROM u -- c\nSELECT 12.5e3 FROM v;";
        let pieces = ["", "x", ";", "'", " ", "SELECT", "12.", "--", "\n", "#", "''", "e5"];
        let mut text = base.to_string();
        for round in 0..300 {
            let mut start = next(text.len() + 1);
            while !text.is_char_boundary(start) {
                start -= 1;
            }
            let mut end = (start + next(8)).min(text.len());
            while !text.is_char_boundary(end) {
                end -= 1;
            }
            let end = end.max(start);
            let rep = pieces[next(pieces.len())];
            assert_edit_matches_full(&s, &text, (start, end, rep));
            let mut edited = String::new();
            edited.push_str(&text[..start]);
            edited.push_str(rep);
            edited.push_str(&text[end..]);
            text = edited;
            if text.len() > 400 || text.is_empty() {
                text = base.to_string();
            }
            let _ = round;
        }
    }

    #[test]
    fn unbounded_string_rule_keeps_restart_local() {
        let s = sql_scanner();
        // The doubled-quote escape makes STRING probe-unbounded (the
        // closing quote's accept state re-enters the string body on a
        // further `'`), poisoning the whole-automaton bound — but the
        // per-rule analysis keeps every other rule bounded, so the
        // scanner still has a finite restart bound plus exact frontiers
        // for the string tokens alone.
        let string = s.kind_of("STRING").unwrap();
        assert!(s.kind_probe_unbounded(string));
        assert!(!s.kind_probe_unbounded(s.kind_of("IDENT").unwrap()));
        assert_eq!(s.probe_overhang_bytes(), None);
        let bm = s.bounded_overhang_bytes().expect("every skip rule is bounded");

        let old = "SELECT 'a''b' FROM t; SELECT gamma FROM u";
        let mut old_toks = Vec::new();
        assert!(s.scan_resilient_into(old, &mut old_toks).is_empty());
        let probes = s.token_probes(old, &old_toks);
        assert_eq!(probes.len(), 1, "one string literal, one exact frontier");

        // Replace the trailing identifier: the string's recorded
        // frontier (the space killing its munch) never reached the
        // edit, so the restart stays within the static bound of the
        // edit instead of backing up to byte 0.
        let edit = old.len() - 1;
        let mut new = old.to_string();
        new.replace_range(edit.., "v");
        let new_lines = LineIndex::new(&new);
        let r = s.relex(
            old.len(), &new, &new_lines, &old_toks, &[], &probes, edit, old.len(), old.len(),
        );
        assert!(
            r.start_byte + bm >= edit,
            "restart {} not local to edit at {edit}",
            r.start_byte
        );
        assert!(r.start_byte > 13, "restart {} backed over the string", r.start_byte);
        assert!(r.tok_probes.is_empty(), "no string inside the rescanned window");
    }

    /// A token stream stored with stale spans plus one compensating base
    /// offset — the chunked-span shape an incremental caller keeps —
    /// exercising the generic [`TokenSource`] access path of `relex`.
    struct Rebased {
        toks: Vec<Token>,
        base: isize,
    }
    impl TokenSource for Rebased {
        fn len(&self) -> usize {
            self.toks.len()
        }
        fn get(&self, i: usize) -> Token {
            let t = self.toks[i];
            Token {
                kind: t.kind,
                start: (t.start as isize + self.base) as usize,
                end: (t.end as isize + self.base) as usize,
            }
        }
    }

    #[test]
    fn relex_through_a_rebased_token_source_matches_flat() {
        let s = sql_scanner();
        let old = "SELECT alpha, beta FROM t1; SELECT gamma FROM t2";
        let mut old_toks = Vec::new();
        assert!(s.scan_resilient_into(old, &mut old_toks).is_empty());
        let rebased = Rebased {
            toks: old_toks
                .iter()
                .map(|t| Token { kind: t.kind, start: t.start + 7, end: t.end + 7 })
                .collect(),
            base: -7,
        };
        for (start, old_end, rep) in [(7, 12, "omega"), (26, 27, ""), (48, 48, " x")] {
            let mut new = String::new();
            new.push_str(&old[..start]);
            new.push_str(rep);
            new.push_str(&old[old_end..]);
            let lines = LineIndex::new(&new);
            let new_end = start + rep.len();
            let flat =
                s.relex(old.len(), &new, &lines, &old_toks, &[], &[], start, old_end, new_end);
            let reb =
                s.relex(old.len(), &new, &lines, &rebased, &[], &[], start, old_end, new_end);
            assert_eq!(flat.old_lo, reb.old_lo, "edit {start}..{old_end}");
            assert_eq!(flat.old_hi, reb.old_hi, "edit {start}..{old_end}");
            assert_eq!(flat.tokens, reb.tokens, "edit {start}..{old_end}");
            assert_eq!(flat.start_byte, reb.start_byte, "edit {start}..{old_end}");
            assert_eq!(flat.resync_old, reb.resync_old, "edit {start}..{old_end}");
        }
    }

    #[test]
    fn step_raw_probe_marks_eof_observation() {
        let s = sql_scanner();
        // An identifier running to end of input observed EOF.
        assert_eq!(s.step_raw("abc", 0).probe, usize::MAX);
        // One followed by a dead byte did not.
        let step = s.step_raw("abc;x", 0);
        assert_eq!(step.end, Some(3));
        assert_eq!(step.probe, 4);
    }
}

//! Dense byte-oriented lowering of the minimized DFA — the lexing hot path.
//!
//! The interval DFA ([`crate::dfa::Dfa`]) is exact but pays a binary search
//! over `(char, char)` intervals for every input character. This module
//! compiles it once, at scanner-build time, into the classic table-driven
//! form:
//!
//! * a 256-entry **byte → equivalence class** map (two bytes share a class
//!   iff every DFA state moves them to the same successor),
//! * a flattened `states × classes` next-state table (`Vec<u32>`, one
//!   bounds-checked index per input byte, [`DEAD`] = reject),
//! * packed **accept/skip metadata** per state (`u32`: the winning rule tag
//!   with [`SKIP_FLAG`] folded in, [`NO_ACCEPT`] = not accepting).
//!
//! Only ASCII bytes are classified: SQL keywords, operators and pattern
//! alphabets are ASCII, so ≥ 99 % of realistic input takes the dense path.
//! Bytes ≥ 0x80 map to the reject class and the scanner instead decodes the
//! full UTF-8 scalar and steps the *interval* DFA for that one character
//! ([`crate::dfa::Dfa::step`]); both automata share state numbering, so the
//! walk continues seamlessly in either direction. Unicode identifiers and
//! string-literal contents therefore stay byte-for-byte identical to the
//! interval walker — proven by the differential suites, not assumed.

use crate::dfa::Dfa;

/// Next-state sentinel: no transition (the implicit dead state).
pub const DEAD: u32 = u32::MAX;

/// Accept-metadata sentinel: the state accepts nothing.
pub const NO_ACCEPT: u32 = u32::MAX;

/// Accept-metadata flag: the winning rule is a skip rule (whitespace,
/// comments) and the match is dropped instead of emitted.
pub const SKIP_FLAG: u32 = 1 << 31;

/// Mask extracting the rule tag from accept metadata.
pub const TAG_MASK: u32 = SKIP_FLAG - 1;

/// A fixed-capacity packed bitset (one bit per token rule); the compact
/// replacement for the scanner's former `Vec<bool>` skip table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-clear set of `len` bits.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Read bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }
}

impl FromIterator<bool> for BitSet {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitSet {
        let mut set = BitSet::new(0);
        for (i, b) in iter.into_iter().enumerate() {
            set.len = i + 1;
            if set.words.len() * 64 < set.len {
                set.words.push(0);
            }
            if b {
                set.insert(i);
            }
        }
        set
    }
}

/// The compiled byte-class form of a minimized DFA. Build once with
/// [`CompiledDfa::compile`]; shares state numbering with the source DFA.
#[derive(Debug, Clone)]
pub struct CompiledDfa {
    /// Byte → equivalence class. Class 0 is the reject class (no ASCII
    /// transition anywhere; also where all bytes ≥ 0x80 land — the scanner
    /// routes those through the interval DFA instead).
    class_of: [u8; 256],
    /// Number of classes (reject class included).
    n_classes: usize,
    /// Flattened `states × n_classes` next-state table; [`DEAD`] = reject.
    table: Vec<u32>,
    /// Per-state packed accept metadata: [`NO_ACCEPT`], or the winning rule
    /// tag with [`SKIP_FLAG`] folded in for skip rules.
    accept: Vec<u32>,
}

impl CompiledDfa {
    /// Lower `dfa` into dense tables. `skip` marks skip-rule tags so their
    /// flag can be packed into the per-state accept metadata.
    pub fn compile(dfa: &Dfa, skip: &BitSet) -> CompiledDfa {
        let n_states = dfa.states.len();

        // Column signature per ASCII byte: the successor of every state.
        // Two bytes with identical columns are one equivalence class; the
        // all-DEAD column is class 0. (At most 129 classes, so `u8` ids.)
        let mut class_of = [0u8; 256];
        let mut columns: Vec<Vec<u32>> = vec![vec![DEAD; n_states]];
        for b in 0u8..0x80 {
            let Some(interval) = dfa.classify(b as char) else {
                continue; // stays in the reject class
            };
            let column: Vec<u32> = dfa
                .states
                .iter()
                .map(|s| s.trans[interval].unwrap_or(DEAD))
                .collect();
            let class = columns
                .iter()
                .position(|c| *c == column)
                .unwrap_or_else(|| {
                    columns.push(column);
                    columns.len() - 1
                });
            class_of[b as usize] = class as u8;
        }

        let n_classes = columns.len();
        let mut table = vec![DEAD; n_states * n_classes];
        for (class, column) in columns.iter().enumerate() {
            for (state, &next) in column.iter().enumerate() {
                table[state * n_classes + class] = next;
            }
        }

        let accept = dfa
            .states
            .iter()
            .map(|s| match s.accept {
                None => NO_ACCEPT,
                Some(tag) => {
                    debug_assert!((tag as u32) < TAG_MASK);
                    let flag = if skip.contains(tag) { SKIP_FLAG } else { 0 };
                    tag as u32 | flag
                }
            })
            .collect();

        CompiledDfa { class_of, n_classes, table, accept }
    }

    /// Step on an ASCII byte: one class lookup, one table index.
    #[inline]
    pub fn step_ascii(&self, state: u32, byte: u8) -> u32 {
        debug_assert!(byte < 0x80);
        let class = self.class_of[byte as usize] as usize;
        self.table[state as usize * self.n_classes + class]
    }

    /// [`CompiledDfa::step_ascii`] without bounds checks, for the
    /// vectorized core's inner loop.
    ///
    /// # Safety
    /// `state` must be a live state of this automaton (every non-[`DEAD`]
    /// table entry is, and the scan loop never steps from [`DEAD`]);
    /// `byte` must be < 0x80.
    #[inline]
    pub(crate) unsafe fn step_ascii_unchecked(&self, state: u32, byte: u8) -> u32 {
        debug_assert!(byte < 0x80);
        debug_assert!((state as usize) < self.accept.len());
        let class = *self.class_of.get_unchecked(byte as usize) as usize;
        *self.table.get_unchecked(state as usize * self.n_classes + class)
    }

    /// [`CompiledDfa::accept_meta`] without bounds checks.
    ///
    /// # Safety
    /// `state` must be a live state of this automaton.
    #[inline]
    pub(crate) unsafe fn accept_meta_unchecked(&self, state: u32) -> u32 {
        debug_assert!((state as usize) < self.accept.len());
        *self.accept.get_unchecked(state as usize)
    }

    /// Packed accept metadata of `state` ([`NO_ACCEPT`] when rejecting).
    #[inline]
    pub fn accept_meta(&self, state: u32) -> u32 {
        self.accept[state as usize]
    }

    /// Byte-equivalence class of `byte`. Two bytes share a class iff every
    /// state moves them to the same successor, so class equality is a
    /// machine-checkable proof that two bytes are interchangeable
    /// everywhere — the property the vectorized path's keyword soundness
    /// gate relies on for case-insensitivity.
    #[inline]
    pub fn byte_class(&self, byte: u8) -> u8 {
        self.class_of[byte as usize]
    }

    /// Number of byte equivalence classes, reject class included — the
    /// width of the dispatch table and the size metric reported by
    /// `sqlweave bench` (schema v3).
    pub fn byte_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of states (same as the source DFA).
    pub fn states(&self) -> usize {
        self.accept.len()
    }

    /// Total table bytes (next-state entries + accept metadata), the
    /// footprint trade-off of compilation.
    pub fn table_bytes(&self) -> usize {
        std::mem::size_of_val(&self.class_of)
            + self.table.len() * std::mem::size_of::<u32>()
            + self.accept.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::parse;

    fn compiled_of(patterns: &[&str], skip_tags: &[usize]) -> (Dfa, CompiledDfa) {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_pattern(&parse(p).unwrap(), i);
        }
        nfa.finish();
        let dfa = crate::minimize::minimize(&Dfa::from_nfa(&nfa));
        let mut skip = BitSet::new(patterns.len());
        for &t in skip_tags {
            skip.insert(t);
        }
        let compiled = CompiledDfa::compile(&dfa, &skip);
        (dfa, compiled)
    }

    /// Reference longest-match via the compiled tables only (ASCII input).
    fn simulate_ascii(c: &CompiledDfa, input: &str) -> Option<(usize, usize)> {
        let mut state = 0u32;
        let mut best = None;
        for (i, &b) in input.as_bytes().iter().enumerate() {
            let next = c.step_ascii(state, b);
            if next == DEAD {
                break;
            }
            state = next;
            let meta = c.accept_meta(state);
            if meta != NO_ACCEPT {
                best = Some((i + 1, (meta & TAG_MASK) as usize));
            }
        }
        best
    }

    #[test]
    fn agrees_with_interval_dfa_on_ascii() {
        let patterns = ["select", "[a-z_][a-z0-9_]*", "[0-9]+", "<=|<>|<", "'([^'])*'"];
        let (dfa, compiled) = compiled_of(&patterns, &[]);
        for input in [
            "select", "selects", "sel", "x1_y", "042", "<", "<=", "<>", "'ab c'", "''", "9z",
            "", "#",
        ] {
            assert_eq!(simulate_ascii(&compiled, input), dfa.simulate(input), "on {input:?}");
        }
    }

    #[test]
    fn byte_classes_collapse_equivalent_bytes() {
        // Inside [a-z]+ every lowercase letter behaves identically: one
        // class for a-z, the reject class for everything else.
        let (_, compiled) = compiled_of(&["[a-z]+"], &[]);
        assert_eq!(compiled.byte_classes(), 2);
        let a = compiled.class_of[b'a' as usize];
        assert_eq!(compiled.class_of[b'q' as usize], a);
        assert_eq!(compiled.class_of[b'z' as usize], a);
        assert_eq!(compiled.class_of[b'0' as usize], 0);
        assert_eq!(compiled.class_of[0xC3], 0, "non-ASCII stays in the reject class");
    }

    #[test]
    fn skip_flag_packed_into_accept_metadata() {
        let (dfa, compiled) = compiled_of(&["[a-z]+", "[ ]+"], &[1]);
        let (_, tag) = dfa.simulate("   ").unwrap();
        assert_eq!(tag, 1);
        let (len, _) = simulate_ascii(&compiled, "   ").unwrap();
        assert_eq!(len, 3);
        // walk to the accepting state and check the packed flag
        let mut state = 0u32;
        state = compiled.step_ascii(state, b' ');
        let meta = compiled.accept_meta(state);
        assert_eq!(meta & SKIP_FLAG, SKIP_FLAG);
        assert_eq!(meta & TAG_MASK, 1);
        // the identifier rule is not skip-flagged
        let mut state = 0u32;
        state = compiled.step_ascii(state, b'x');
        assert_eq!(compiled.accept_meta(state), 0);
    }

    #[test]
    fn reject_class_is_dead_everywhere() {
        let (dfa, compiled) = compiled_of(&["[a-z]+"], &[]);
        for state in 0..dfa.len() as u32 {
            assert_eq!(compiled.step_ascii(state, b'!'), DEAD);
        }
    }

    #[test]
    fn bitset_roundtrip() {
        let bits = [true, false, false, true, true];
        let set: BitSet = bits.iter().copied().collect();
        assert_eq!(set.len(), 5);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(set.contains(i), b, "bit {i}");
        }
        let mut wide = BitSet::new(130);
        wide.insert(0);
        wide.insert(64);
        wide.insert(129);
        assert!(wide.contains(0) && wide.contains(64) && wide.contains(129));
        assert!(!wide.contains(63) && !wide.contains(65) && !wide.contains(128));
    }

    #[test]
    fn table_bytes_accounts_for_density() {
        let (dfa, compiled) = compiled_of(&["[a-z]+", "[0-9]+"], &[]);
        assert_eq!(compiled.states(), dfa.len());
        assert!(compiled.table_bytes() >= 256 + dfa.len() * 4);
    }
}

//! Static analyses over a composed token set, for the product-line linter.
//!
//! The scanner resolves rule conflicts silently (smallest prioritized index
//! wins per DFA state), which is the right *runtime* behavior but hides
//! defects a dialect author wants surfaced ahead of time: a rule that can
//! never be emitted because earlier rules cover its whole language, or a
//! skip rule whose language collides with a real token. This module runs a
//! subset construction that keeps the **full** accepting-tag set per DFA
//! state — rather than only the winning tag — and derives both facts from
//! it exactly (no approximation: two rules overlap iff some reachable DFA
//! state accepts both).

use crate::dfa::alphabet_intervals;
use crate::nfa::Nfa;
use crate::tokenset::{TokenRule, TokenSet, TokenSetError};
use std::collections::{BTreeSet, HashMap};

/// Result of [`analyze`]: per-rule emittability and pairwise overlaps.
///
/// Rule indices refer to `rules`, which is the set in *scanner priority
/// order* (keywords/puncts hoisted above patterns/skips, declaration order
/// within each class) — the same order the built [`crate::Scanner`] uses.
#[derive(Debug, Clone)]
pub struct TokenSetAnalysis {
    /// Rules in scanner priority order.
    pub rules: Vec<TokenRule>,
    /// `winnable[i]` — some input makes the scanner emit (or skip-match)
    /// rule `i`. A `false` entry is a fully shadowed rule.
    pub winnable: Vec<bool>,
    /// Pairs `(i, j)` with `i < j` whose languages intersect: some string
    /// is matched in full by both rules. Rule `i` wins those strings.
    pub overlaps: Vec<(usize, usize)>,
}

impl TokenSetAnalysis {
    /// Indices of rules that can never be emitted.
    pub fn shadowed(&self) -> Vec<usize> {
        self.winnable
            .iter()
            .enumerate()
            .filter(|(_, &w)| !w)
            .map(|(i, _)| i)
            .collect()
    }

    /// The rules shadowing rule `i`: every rule with higher priority whose
    /// language overlaps `i`'s.
    pub fn shadowers(&self, i: usize) -> Vec<usize> {
        self.overlaps
            .iter()
            .filter(|&&(a, b)| b == i && a < i)
            .map(|&(a, _)| a)
            .collect()
    }
}

/// Analyze `ts`. Fails only if a rule's pattern fails to compile, which
/// [`TokenSet::add`] already prevents for sets built through the public API.
pub fn analyze(ts: &TokenSet) -> Result<TokenSetAnalysis, TokenSetError> {
    let rules = ts.prioritized();
    let mut nfa = Nfa::new();
    for (tag, rule) in rules.iter().enumerate() {
        let re = rule.to_regex().map_err(|error| TokenSetError::BadPattern {
            name: rule.name.clone(),
            error,
        })?;
        nfa.add_pattern(&re, tag);
    }
    nfa.finish();

    // Subset construction recording the full accept set per DFA state.
    let intervals = alphabet_intervals(&nfa);
    let mut index: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut worklist: Vec<Vec<usize>> = Vec::new();
    let mut accept_sets: Vec<BTreeSet<usize>> = Vec::new();

    let accepts_of = |nfa: &Nfa, set: &[usize]| -> BTreeSet<usize> {
        set.iter().filter_map(|&s| nfa.states[s].accept).collect()
    };

    let start = nfa.eps_closure(&[nfa.start()]);
    accept_sets.push(accepts_of(&nfa, &start));
    index.insert(start.clone(), 0);
    worklist.push(start);

    while let Some(set) = worklist.pop() {
        for &(lo, _hi) in &intervals {
            // Any character of the interval is representative (intervals
            // are cut at every class boundary).
            let mut moved: Vec<usize> = Vec::new();
            for &s in &set {
                for (class, t) in &nfa.states[s].trans {
                    if class.contains(lo) && !moved.contains(t) {
                        moved.push(*t);
                    }
                }
            }
            if moved.is_empty() {
                continue;
            }
            let closed = nfa.eps_closure(&moved);
            if !index.contains_key(&closed) {
                index.insert(closed.clone(), accept_sets.len());
                accept_sets.push(accepts_of(&nfa, &closed));
                worklist.push(closed);
            }
        }
    }

    // A rule is winnable iff it is the highest-priority (smallest) tag of
    // some reachable accepting state: maximal-munch keeps extending the
    // match, but every accepting state it can stop in reports its smallest
    // tag, so a rule that is nowhere the smallest is never emitted.
    let mut winnable = vec![false; rules.len()];
    let mut overlaps: BTreeSet<(usize, usize)> = BTreeSet::new();
    for set in &accept_sets {
        if let Some(&winner) = set.iter().next() {
            winnable[winner] = true;
        }
        for &a in set {
            for &b in set.iter().filter(|&&b| b > a) {
                overlaps.insert((a, b));
            }
        }
    }

    Ok(TokenSetAnalysis {
        rules,
        winnable,
        overlaps: overlaps.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenset::RuleKind;

    fn names(a: &TokenSetAnalysis, idxs: &[usize]) -> Vec<String> {
        idxs.iter().map(|&i| a.rules[i].name.clone()).collect()
    }

    #[test]
    fn healthy_set_has_no_shadowed_rules() {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        ts.pattern("NUM", "[0-9]+").unwrap();
        ts.skip("WS", " +").unwrap();
        let a = analyze(&ts).unwrap();
        assert!(a.shadowed().is_empty(), "{:?}", names(&a, &a.shadowed()));
    }

    #[test]
    fn fully_shadowed_pattern_detected() {
        let mut ts = TokenSet::new();
        ts.pattern("ANY", "[a-z]+").unwrap();
        ts.pattern("ABC", "abc").unwrap(); // ⊂ ANY at every length it matches
        let a = analyze(&ts).unwrap();
        let shadowed = a.shadowed();
        assert_eq!(names(&a, &shadowed), ["ABC"]);
        let shadowers = a.shadowers(shadowed[0]);
        assert_eq!(names(&a, &shadowers), ["ANY"]);
    }

    #[test]
    fn keyword_ident_overlap_reported_not_shadowed() {
        let mut ts = TokenSet::new();
        ts.keyword("FROM").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        let a = analyze(&ts).unwrap();
        // Keyword wins its own spelling; IDENT still wins everything else.
        assert!(a.shadowed().is_empty());
        let kw = a.rules.iter().position(|r| r.name == "FROM").unwrap();
        let id = a.rules.iter().position(|r| r.name == "IDENT").unwrap();
        assert!(a.overlaps.contains(&(kw.min(id), kw.max(id))));
    }

    #[test]
    fn skip_rule_overlap_with_token_detected() {
        let mut ts = TokenSet::new();
        ts.pattern("DASHES", "-+").unwrap();
        ts.skip("COMMENT", "--[a-z]*").unwrap();
        let a = analyze(&ts).unwrap();
        let d = a.rules.iter().position(|r| r.name == "DASHES").unwrap();
        let c = a.rules.iter().position(|r| r.name == "COMMENT").unwrap();
        // `--` is matched by both: the token rule wins (declared earlier in
        // priority order), so the comment rule never sees bare dashes.
        assert!(
            a.overlaps.contains(&(d.min(c), d.max(c))),
            "overlaps: {:?}",
            a.overlaps
        );
    }

    #[test]
    fn disjoint_rules_do_not_overlap() {
        let mut ts = TokenSet::new();
        ts.pattern("NUM", "[0-9]+").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        let a = analyze(&ts).unwrap();
        assert!(a.overlaps.is_empty(), "{:?}", a.overlaps);
    }

    #[test]
    fn analysis_order_matches_scanner_priority() {
        let mut ts = TokenSet::new();
        ts.pattern("IDENT", "[a-z]+").unwrap(); // declared first…
        ts.keyword("FROM").unwrap(); // …but keywords are hoisted
        let a = analyze(&ts).unwrap();
        assert_eq!(a.rules[0].name, "FROM");
        assert!(matches!(a.rules[1].kind, RuleKind::Pattern(_)));
    }
}

//! Maximal-munch scanning with a compiled DFA.
//!
//! Four equivalent scanning substrates share one token contract:
//!
//! * [`Scanner::scan`] / [`Scanner::scan_into`] — the hot path: the
//!   vectorized run-skipper of [`crate::vector`] (chunked SWAR/SIMD
//!   classification of self-loop runs plus the generated keyword hash),
//!   falling back to the compiled tables at run boundaries and to the
//!   interval DFA for multi-byte UTF-8 scalars.
//! * [`Scanner::scan_compiled`] — the per-byte compiled byte-class walk
//!   (the previous hot path), preserved both as a differential oracle and
//!   as the scalar leg of the vectorization ablation.
//! * [`Scanner::scan_reference`] — the original per-character interval
//!   walker (binary search per `char`), preserved as a differential oracle
//!   alongside the even slower [`Scanner::scan_naive`].

use crate::compiled::{self, BitSet, CompiledDfa};
use crate::dfa::Dfa;
use crate::line_index::LineIndex;
use crate::vector::{SimdLevel, VectorTables};
use std::fmt;

/// Index of a token rule inside the [`crate::TokenSet`] that built the
/// scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenKind(pub u32);

impl TokenKind {
    /// The dense rule index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One scanned token. Text is referenced by byte span into the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Which rule matched.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The matched lexeme.
    pub fn text<'a>(&self, input: &'a str) -> &'a str {
        &input[self.start..self.end]
    }
}

/// Lexical error: no rule matches at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub column: usize,
    /// The offending character, if any (None at end of input).
    pub found: Option<char>,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.found {
            Some(c) => write!(
                f,
                "lexical error at line {}, column {}: unexpected character {c:?}",
                self.line, self.column
            ),
            None => write!(
                f,
                "lexical error at line {}, column {}: unexpected end of input",
                self.line, self.column
            ),
        }
    }
}

impl std::error::Error for LexError {}

/// Compute 1-based line/column of a byte offset.
///
/// Convenience wrapper that builds a throwaway [`LineIndex`]; callers
/// reporting many positions against the same source should build one
/// index and call [`LineIndex::line_col`] directly.
pub fn line_col(input: &str, at: usize) -> (usize, usize) {
    LineIndex::new(input).line_col(input, at)
}

/// A compiled scanner: minimized DFA, its dense byte-class lowering, and
/// rule metadata (interned names, packed skip bitset).
#[derive(Debug, Clone)]
pub struct Scanner {
    pub(crate) dfa: Dfa,
    pub(crate) compiled: CompiledDfa,
    pub(crate) vector: VectorTables,
    pub(crate) names: Box<[Box<str>]>,
    pub(crate) skip: BitSet,
    /// Per-rule probe-overhang bound in characters
    /// ([`crate::dfa::Dfa::probe_overhang_by_tag`], computed once at
    /// build); `None` entries mark rules whose matches can look ahead
    /// unboundedly and need exact recorded probe frontiers instead.
    pub(crate) overhang_by_tag: Box<[Option<usize>]>,
}

impl Scanner {
    /// Rule name for a token kind.
    pub fn name(&self, kind: TokenKind) -> &str {
        &self.names[kind.index()]
    }

    /// Kind for a rule name, if present.
    pub fn kind_of(&self, name: &str) -> Option<TokenKind> {
        self.names
            .iter()
            .position(|n| &**n == name)
            .map(|i| TokenKind(i as u32))
    }

    /// `true` if `kind` is a skip rule (its matches are dropped).
    pub fn is_skip(&self, kind: TokenKind) -> bool {
        self.skip.contains(kind.index())
    }

    /// Number of rules (including skip rules).
    pub fn rule_count(&self) -> usize {
        self.names.len()
    }

    /// Number of DFA states (size metric for Experiment B3).
    pub fn dfa_states(&self) -> usize {
        self.dfa.len()
    }

    /// Number of byte equivalence classes in the compiled dispatch tables
    /// (size metric for Experiment B6 / bench schema v3).
    pub fn byte_classes(&self) -> usize {
        self.compiled.byte_classes()
    }

    /// The compiled byte-class tables (for ablation benches and tooling).
    pub fn compiled(&self) -> &CompiledDfa {
        &self.compiled
    }

    /// The minimized interval DFA the compiled tables were lowered from
    /// (the UTF-8 fallback substrate; exposed so ablation benches can
    /// re-run the lowering in isolation).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The chunked-classification level the vectorized path selected at
    /// build time (runtime-detected; pinned to SWAR under `no-simd`).
    pub fn simd_level(&self) -> SimdLevel {
        self.vector.level
    }

    /// Which vectorized strategy the build-time soundness gate chose:
    /// `"keyword-hash"` (keyword-free automaton + generated hash) or
    /// `"run-only"` (run-skipping over the full compiled DFA).
    pub fn vector_strategy(&self) -> &'static str {
        self.vector.strategy()
    }

    /// Number of keywords in the generated perfect-hash (0 when the
    /// soundness gate fell back to run-only mode).
    pub fn keywords_hashed(&self) -> usize {
        self.vector.keywords_hashed()
    }

    /// Scan the whole input, dropping skip-rule matches.
    pub fn scan(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        self.scan_into(input, &mut out)?;
        Ok(out)
    }

    /// Scan the whole input, appending tokens to a caller-owned vector so
    /// batch drivers can recycle the allocation across statements. The
    /// vector is *not* cleared first.
    ///
    /// This is the hot path: the vectorized run-skipper of
    /// [`crate::vector`] — chunked SWAR/SIMD classification of DFA
    /// self-loop runs, per-byte table stepping only at run boundaries, and
    /// keyword recognition through the generated per-dialect hash. Bytes
    /// ≥ 0x80 stop every run, decode the full UTF-8 scalar, and step the
    /// interval DFA for that character, so multi-byte content — Unicode
    /// string literals, exotic whitespace — behaves exactly like the
    /// reference walker.
    pub fn scan_into(&self, input: &str, out: &mut Vec<Token>) -> Result<(), LexError> {
        match self.scan_core(input, 0, out) {
            Ok(()) => Ok(()),
            Err(pos) => {
                let (line, column) = line_col(input, pos);
                Err(LexError {
                    at: pos,
                    line,
                    column,
                    found: input[pos..].chars().next(),
                })
            }
        }
    }

    /// [`Scanner::scan`] with the chunked classifier pinned to `level`
    /// (for the vectorization ablation and the differential suites).
    /// Returns `None` if `level` is not available on this machine.
    pub fn scan_with_simd(
        &self,
        level: SimdLevel,
        input: &str,
    ) -> Option<Result<Vec<Token>, LexError>> {
        if !level.available() {
            return None;
        }
        let mut out = Vec::new();
        let res = match self.vector.scan_core(&self.dfa, &self.compiled, input, 0, &mut out, level)
        {
            Ok(()) => Ok(out),
            Err(pos) => {
                let (line, column) = line_col(input, pos);
                Err(LexError {
                    at: pos,
                    line,
                    column,
                    found: input[pos..].chars().next(),
                })
            }
        };
        Some(res)
    }

    /// Scan the whole input, collecting *every* lexical error instead of
    /// stopping at the first: on a stuck position the offending character
    /// is recorded and skipped, and scanning resumes at the next
    /// character. Tokens for the recognizable stretches are appended to
    /// `out` in source order; the returned errors are likewise ordered by
    /// byte offset. Error fields are built exactly as in
    /// [`Scanner::scan_into`], so the first error of a resilient scan is
    /// byte-identical to the strict error.
    pub fn scan_resilient_into(&self, input: &str, out: &mut Vec<Token>) -> Vec<LexError> {
        let mut errors = Vec::new();
        let mut index: Option<LineIndex> = None;
        let mut pos = 0usize;
        loop {
            match self.scan_core(input, pos, out) {
                Ok(()) => break,
                Err(at) => {
                    let index = index.get_or_insert_with(|| LineIndex::new(input));
                    let (line, column) = index.line_col(input, at);
                    let found = input[at..].chars().next();
                    errors.push(LexError { at, line, column, found });
                    match found {
                        Some(c) => pos = at + c.len_utf8(),
                        None => break,
                    }
                }
            }
        }
        errors
    }

    /// The maximal-munch core shared by the strict and resilient entry
    /// points: the vectorized run-skipping loop, scanning from byte
    /// `start` to the end of input, appending non-skip tokens, returning
    /// `Err(pos)` with the byte offset of the first position where no rule
    /// matches.
    fn scan_core(&self, input: &str, start: usize, out: &mut Vec<Token>) -> Result<(), usize> {
        self.vector
            .scan_core(&self.dfa, &self.compiled, input, start, out, self.vector.level)
    }

    /// Scan with the per-byte compiled byte-class walk — the pre-vector
    /// hot path, preserved as a differential oracle and as the scalar leg
    /// of the vectorization ablation (Experiment B9). Produces identical
    /// output to [`Scanner::scan`].
    pub fn scan_compiled(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        self.scan_compiled_into(input, &mut out)?;
        Ok(out)
    }

    /// [`Scanner::scan_compiled`] into a caller-owned vector (not cleared
    /// first), so ablation benches compare equal-allocation paths.
    pub fn scan_compiled_into(&self, input: &str, out: &mut Vec<Token>) -> Result<(), LexError> {
        match self.scan_core_compiled(input, 0, out) {
            Ok(()) => Ok(()),
            Err(pos) => {
                let (line, column) = line_col(input, pos);
                Err(LexError {
                    at: pos,
                    line,
                    column,
                    found: input[pos..].chars().next(),
                })
            }
        }
    }

    /// The per-byte table-driven maximal-munch loop (the PR-4 hot path):
    /// one bounds-checked table index per ASCII byte.
    fn scan_core_compiled(
        &self,
        input: &str,
        start: usize,
        out: &mut Vec<Token>,
    ) -> Result<(), usize> {
        let bytes = input.as_bytes();
        let compiled = &self.compiled;
        let mut pos = start;
        while pos < bytes.len() {
            let mut state = 0u32;
            let mut i = pos;
            // (end, packed accept metadata) of the longest match so far
            let mut best: Option<(usize, u32)> = None;
            while i < bytes.len() {
                let b = bytes[i];
                let next = if b < 0x80 {
                    i += 1;
                    compiled.step_ascii(state, b)
                } else {
                    // Multi-byte scalar: `i` is a char boundary because the
                    // scan advances by whole characters.
                    let c = input[i..].chars().next().expect("non-empty suffix");
                    i += c.len_utf8();
                    match self.dfa.step(state, c) {
                        Some(next) => next,
                        None => compiled::DEAD,
                    }
                };
                if next == compiled::DEAD {
                    break;
                }
                state = next;
                let meta = compiled.accept_meta(state);
                if meta != compiled::NO_ACCEPT {
                    best = Some((i, meta));
                }
            }
            match best {
                Some((end, meta)) => {
                    debug_assert!(end > pos, "zero-length token match would not progress");
                    if meta & compiled::SKIP_FLAG == 0 {
                        out.push(Token {
                            kind: TokenKind(meta & compiled::TAG_MASK),
                            start: pos,
                            end,
                        });
                    }
                    pos = end;
                }
                None => return Err(pos),
            }
        }
        Ok(())
    }

    /// Scan with the per-character interval walker — the pre-compilation
    /// hot path, preserved as a differential oracle (and as the `interval`
    /// leg of the scanner-compilation ablation, Experiment B6). Produces
    /// identical output to [`Scanner::scan`].
    pub fn scan_reference(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        self.scan_reference_into(input, &mut out)?;
        Ok(out)
    }

    /// [`Scanner::scan_reference`] into a caller-owned vector (not cleared
    /// first), so ablation benches compare equal-allocation paths.
    pub fn scan_reference_into(
        &self,
        input: &str,
        out: &mut Vec<Token>,
    ) -> Result<(), LexError> {
        let mut pos = 0usize;
        while pos < input.len() {
            let rest = &input[pos..];
            match self.dfa.simulate(rest) {
                Some((len, tag)) => {
                    debug_assert!(len > 0, "zero-length token match would not progress");
                    if !self.skip.contains(tag) {
                        out.push(Token {
                            kind: TokenKind(tag as u32),
                            start: pos,
                            end: pos + len,
                        });
                    }
                    pos += len;
                }
                None => {
                    let (line, column) = line_col(input, pos);
                    return Err(LexError {
                        at: pos,
                        line,
                        column,
                        found: rest.chars().next(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Reference implementation scanning with per-rule NFA simulation; used
    /// as the naive-scanner ablation baseline (Experiment B5) and in
    /// differential tests. Produces identical output to [`Scanner::scan`].
    pub fn scan_naive(
        &self,
        input: &str,
        nfas: &[crate::nfa::Nfa],
    ) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < input.len() {
            let rest = &input[pos..];
            // Try every rule; longest match wins, ties by rule order.
            let mut best: Option<(usize, usize)> = None;
            for (tag, nfa) in nfas.iter().enumerate() {
                if let Some((len, _)) = nfa.simulate(rest) {
                    match best {
                        Some((blen, _)) if blen >= len => {}
                        _ => best = Some((len, tag)),
                    }
                }
            }
            match best {
                Some((len, tag)) => {
                    if !self.skip.contains(tag) {
                        out.push(Token {
                            kind: TokenKind(tag as u32),
                            start: pos,
                            end: pos + len,
                        });
                    }
                    pos += len;
                }
                None => {
                    let (line, column) = line_col(input, pos);
                    return Err(LexError {
                        at: pos,
                        line,
                        column,
                        found: rest.chars().next(),
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenset::TokenSet;

    fn sql_scanner() -> Scanner {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.keyword("FROM").unwrap();
        ts.keyword("WHERE").unwrap();
        ts.punct("COMMA", ",").unwrap();
        ts.punct("EQ", "=").unwrap();
        ts.punct("LPAREN", "(").unwrap();
        ts.punct("RPAREN", ")").unwrap();
        ts.pattern("IDENT", "[A-Za-z_][A-Za-z0-9_]*").unwrap();
        ts.pattern("NUMBER", "[0-9]+(\\.[0-9]+)?").unwrap();
        ts.pattern("STRING", "'([^'])*'").unwrap();
        ts.skip("WS", "[ \\t\\r\\n]+").unwrap();
        ts.skip("LINE_COMMENT", "--[^\\n]*").unwrap();
        ts.build().unwrap()
    }

    fn kinds(s: &Scanner, input: &str) -> Vec<String> {
        s.scan(input)
            .unwrap()
            .iter()
            .map(|t| s.name(t.kind).to_string())
            .collect()
    }

    #[test]
    fn basic_statement() {
        let s = sql_scanner();
        assert_eq!(
            kinds(&s, "SELECT a, b FROM t WHERE a = 1"),
            [
                "SELECT", "IDENT", "COMMA", "IDENT", "FROM", "IDENT", "WHERE", "IDENT", "EQ",
                "NUMBER"
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = sql_scanner();
        assert_eq!(kinds(&s, "select From WHERE"), ["SELECT", "FROM", "WHERE"]);
    }

    #[test]
    fn keyword_prefix_is_identifier() {
        let s = sql_scanner();
        assert_eq!(kinds(&s, "selection fromage"), ["IDENT", "IDENT"]);
    }

    #[test]
    fn spans_and_text() {
        let s = sql_scanner();
        let input = "SELECT name FROM users";
        let toks = s.scan(input).unwrap();
        assert_eq!(toks[1].text(input), "name");
        assert_eq!(toks[3].text(input), "users");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end, 6);
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let s = sql_scanner();
        assert_eq!(
            kinds(&s, "SELECT a -- trailing comment\nFROM t"),
            ["SELECT", "IDENT", "FROM", "IDENT"]
        );
    }

    #[test]
    fn string_literals() {
        let s = sql_scanner();
        let input = "WHERE name = 'O Brien'";
        let toks = s.scan(input).unwrap();
        assert_eq!(s.name(toks[3].kind), "STRING");
        assert_eq!(toks[3].text(input), "'O Brien'");
    }

    #[test]
    fn numbers_with_decimals() {
        let s = sql_scanner();
        let input = "3.14 42";
        let toks = s.scan(input).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text(input), "3.14");
        assert_eq!(toks[1].text(input), "42");
    }

    #[test]
    fn lex_error_position() {
        let s = sql_scanner();
        let err = s.scan("SELECT a\nFROM #").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 6);
        assert_eq!(err.found, Some('#'));
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        let s = sql_scanner();
        assert_eq!(s.scan("").unwrap(), vec![]);
        assert_eq!(s.scan("   \n\t ").unwrap(), vec![]);
    }

    #[test]
    fn kind_lookup_roundtrip() {
        let s = sql_scanner();
        let k = s.kind_of("IDENT").unwrap();
        assert_eq!(s.name(k), "IDENT");
        assert!(s.kind_of("NOPE").is_none());
        assert!(s.is_skip(s.kind_of("WS").unwrap()));
        assert!(!s.is_skip(k));
    }

    #[test]
    fn compiled_tables_report_sizes() {
        let s = sql_scanner();
        assert!(s.byte_classes() > 2, "SQL token set has several byte classes");
        assert!(s.byte_classes() <= 129);
        assert_eq!(s.compiled().states(), s.dfa_states());
    }

    #[test]
    fn compiled_agrees_with_reference_walker() {
        let s = sql_scanner();
        for input in [
            "SELECT a, b FROM t WHERE a = 1",
            "select From WHERE",
            "3.14 42 'str' -- c\nx",
            "",
            "   \t\n",
            "ident_42='x'",
        ] {
            assert_eq!(s.scan(input), s.scan_reference(input), "on {input:?}");
        }
    }

    #[test]
    fn utf8_string_contents_take_the_fallback_path() {
        // `'([^'])*'` covers every non-quote scalar, so multi-byte content
        // exercises the interval fallback mid-token.
        let s = sql_scanner();
        let input = "WHERE name = 'héllo wörld — 中文 🦀'";
        let toks = s.scan(input).unwrap();
        assert_eq!(s.name(toks[3].kind), "STRING");
        assert_eq!(toks[3].text(input), "'héllo wörld — 中文 🦀'");
        assert_eq!(s.scan(input), s.scan_reference(input));
    }

    #[test]
    fn resilient_scan_collects_every_error_and_all_tokens() {
        let s = sql_scanner();
        let input = "SELECT # a\nFROM ~ t ?";
        let mut toks = Vec::new();
        let errors = s.scan_resilient_into(input, &mut toks);
        let kinds: Vec<&str> = toks.iter().map(|t| s.name(t.kind)).collect();
        assert_eq!(kinds, ["SELECT", "IDENT", "FROM", "IDENT"]);
        assert_eq!(errors.len(), 3);
        assert_eq!(
            errors.iter().map(|e| e.found).collect::<Vec<_>>(),
            [Some('#'), Some('~'), Some('?')]
        );
        assert_eq!((errors[1].line, errors[1].column), (2, 6));
        // First error is byte-identical to the strict scan's error.
        assert_eq!(errors[0], s.scan(input).unwrap_err());
    }

    #[test]
    fn resilient_scan_matches_strict_scan_on_clean_input() {
        let s = sql_scanner();
        for input in ["SELECT a, b FROM t WHERE a = 1", "", "  \n"] {
            let mut toks = Vec::new();
            assert!(s.scan_resilient_into(input, &mut toks).is_empty());
            assert_eq!(toks, s.scan(input).unwrap(), "on {input:?}");
        }
    }

    #[test]
    fn resilient_scan_skips_multibyte_garbage_without_splitting_chars() {
        let s = sql_scanner();
        let mut toks = Vec::new();
        let errors = s.scan_resilient_into("a é b 中 c", &mut toks);
        let kinds: Vec<&str> = toks.iter().map(|t| s.name(t.kind)).collect();
        assert_eq!(kinds, ["IDENT", "IDENT", "IDENT"]);
        assert_eq!(
            errors.iter().map(|e| e.found).collect::<Vec<_>>(),
            [Some('é'), Some('中')]
        );
    }

    #[test]
    fn utf8_lex_errors_identical_to_reference() {
        let s = sql_scanner();
        for input in ["SELECT é FROM t", "λx", "a\n€", "'unterminated ü"] {
            let fast = s.scan(input).unwrap_err();
            let reference = s.scan_reference(input).unwrap_err();
            assert_eq!(fast, reference, "on {input:?}");
            assert_eq!(fast.to_string(), reference.to_string());
        }
        let err = s.scan("SELECT é FROM t").unwrap_err();
        assert_eq!(err.found, Some('é'));
        assert_eq!(err.column, 8);
    }
}

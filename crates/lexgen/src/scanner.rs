//! Maximal-munch scanning with a compiled DFA.

use crate::dfa::Dfa;
use std::fmt;

/// Index of a token rule inside the [`crate::TokenSet`] that built the
/// scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenKind(pub u32);

impl TokenKind {
    /// The dense rule index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One scanned token. Text is referenced by byte span into the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Which rule matched.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The matched lexeme.
    pub fn text<'a>(&self, input: &'a str) -> &'a str {
        &input[self.start..self.end]
    }
}

/// Lexical error: no rule matches at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub column: usize,
    /// The offending character, if any (None at end of input).
    pub found: Option<char>,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.found {
            Some(c) => write!(
                f,
                "lexical error at line {}, column {}: unexpected character {c:?}",
                self.line, self.column
            ),
            None => write!(
                f,
                "lexical error at line {}, column {}: unexpected end of input",
                self.line, self.column
            ),
        }
    }
}

impl std::error::Error for LexError {}

/// Compute 1-based line/column of a byte offset.
pub fn line_col(input: &str, at: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, c) in input.char_indices() {
        if i >= at {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A compiled scanner: minimized DFA + rule metadata.
#[derive(Debug, Clone)]
pub struct Scanner {
    pub(crate) dfa: Dfa,
    pub(crate) names: Vec<String>,
    pub(crate) skip: Vec<bool>,
}

impl Scanner {
    /// Rule name for a token kind.
    pub fn name(&self, kind: TokenKind) -> &str {
        &self.names[kind.index()]
    }

    /// Kind for a rule name, if present.
    pub fn kind_of(&self, name: &str) -> Option<TokenKind> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| TokenKind(i as u32))
    }

    /// Number of rules (including skip rules).
    pub fn rule_count(&self) -> usize {
        self.names.len()
    }

    /// Number of DFA states (size metric for Experiment B3).
    pub fn dfa_states(&self) -> usize {
        self.dfa.len()
    }

    /// Scan the whole input, dropping skip-rule matches.
    pub fn scan(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        self.scan_into(input, &mut out)?;
        Ok(out)
    }

    /// Scan the whole input, appending tokens to a caller-owned vector so
    /// batch drivers can recycle the allocation across statements. The
    /// vector is *not* cleared first.
    pub fn scan_into(&self, input: &str, out: &mut Vec<Token>) -> Result<(), LexError> {
        let mut pos = 0usize;
        while pos < input.len() {
            let rest = &input[pos..];
            match self.dfa.simulate(rest) {
                Some((len, tag)) => {
                    debug_assert!(len > 0, "zero-length token match would not progress");
                    if !self.skip[tag] {
                        out.push(Token {
                            kind: TokenKind(tag as u32),
                            start: pos,
                            end: pos + len,
                        });
                    }
                    pos += len;
                }
                None => {
                    let (line, column) = line_col(input, pos);
                    return Err(LexError {
                        at: pos,
                        line,
                        column,
                        found: rest.chars().next(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Reference implementation scanning with per-rule NFA simulation; used
    /// as the naive-scanner ablation baseline (Experiment B5) and in
    /// differential tests. Produces identical output to [`Scanner::scan`].
    pub fn scan_naive(
        &self,
        input: &str,
        nfas: &[crate::nfa::Nfa],
    ) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < input.len() {
            let rest = &input[pos..];
            // Try every rule; longest match wins, ties by rule order.
            let mut best: Option<(usize, usize)> = None;
            for (tag, nfa) in nfas.iter().enumerate() {
                if let Some((len, _)) = nfa.simulate(rest) {
                    match best {
                        Some((blen, _)) if blen >= len => {}
                        _ => best = Some((len, tag)),
                    }
                }
            }
            match best {
                Some((len, tag)) => {
                    if !self.skip[tag] {
                        out.push(Token {
                            kind: TokenKind(tag as u32),
                            start: pos,
                            end: pos + len,
                        });
                    }
                    pos += len;
                }
                None => {
                    let (line, column) = line_col(input, pos);
                    return Err(LexError {
                        at: pos,
                        line,
                        column,
                        found: rest.chars().next(),
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenset::TokenSet;

    fn sql_scanner() -> Scanner {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.keyword("FROM").unwrap();
        ts.keyword("WHERE").unwrap();
        ts.punct("COMMA", ",").unwrap();
        ts.punct("EQ", "=").unwrap();
        ts.punct("LPAREN", "(").unwrap();
        ts.punct("RPAREN", ")").unwrap();
        ts.pattern("IDENT", "[A-Za-z_][A-Za-z0-9_]*").unwrap();
        ts.pattern("NUMBER", "[0-9]+(\\.[0-9]+)?").unwrap();
        ts.pattern("STRING", "'([^'])*'").unwrap();
        ts.skip("WS", "[ \\t\\r\\n]+").unwrap();
        ts.skip("LINE_COMMENT", "--[^\\n]*").unwrap();
        ts.build().unwrap()
    }

    fn kinds(s: &Scanner, input: &str) -> Vec<String> {
        s.scan(input)
            .unwrap()
            .iter()
            .map(|t| s.name(t.kind).to_string())
            .collect()
    }

    #[test]
    fn basic_statement() {
        let s = sql_scanner();
        assert_eq!(
            kinds(&s, "SELECT a, b FROM t WHERE a = 1"),
            [
                "SELECT", "IDENT", "COMMA", "IDENT", "FROM", "IDENT", "WHERE", "IDENT", "EQ",
                "NUMBER"
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = sql_scanner();
        assert_eq!(kinds(&s, "select From WHERE"), ["SELECT", "FROM", "WHERE"]);
    }

    #[test]
    fn keyword_prefix_is_identifier() {
        let s = sql_scanner();
        assert_eq!(kinds(&s, "selection fromage"), ["IDENT", "IDENT"]);
    }

    #[test]
    fn spans_and_text() {
        let s = sql_scanner();
        let input = "SELECT name FROM users";
        let toks = s.scan(input).unwrap();
        assert_eq!(toks[1].text(input), "name");
        assert_eq!(toks[3].text(input), "users");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end, 6);
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let s = sql_scanner();
        assert_eq!(
            kinds(&s, "SELECT a -- trailing comment\nFROM t"),
            ["SELECT", "IDENT", "FROM", "IDENT"]
        );
    }

    #[test]
    fn string_literals() {
        let s = sql_scanner();
        let input = "WHERE name = 'O Brien'";
        let toks = s.scan(input).unwrap();
        assert_eq!(s.name(toks[3].kind), "STRING");
        assert_eq!(toks[3].text(input), "'O Brien'");
    }

    #[test]
    fn numbers_with_decimals() {
        let s = sql_scanner();
        let input = "3.14 42";
        let toks = s.scan(input).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text(input), "3.14");
        assert_eq!(toks[1].text(input), "42");
    }

    #[test]
    fn lex_error_position() {
        let s = sql_scanner();
        let err = s.scan("SELECT a\nFROM #").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 6);
        assert_eq!(err.found, Some('#'));
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        let s = sql_scanner();
        assert_eq!(s.scan("").unwrap(), vec![]);
        assert_eq!(s.scan("   \n\t ").unwrap(), vec![]);
    }

    #[test]
    fn kind_lookup_roundtrip() {
        let s = sql_scanner();
        let k = s.kind_of("IDENT").unwrap();
        assert_eq!(s.name(k), "IDENT");
        assert!(s.kind_of("NOPE").is_none());
    }
}

//! Precomputed line-start table for O(log n) line/column lookups.
//!
//! [`crate::scanner::line_col`] rescans the input from byte 0 on every
//! call, which is fine for the strict single-error path but becomes
//! O(n·errors) once multi-error recovery reports many diagnostics against
//! the same source. [`LineIndex`] precomputes the byte offset of every
//! line start in one pass; each lookup is then a binary search plus a
//! column count bounded by the length of one line. Both the lexer and the
//! parser error paths share this type.

/// Byte offsets of every line start in a source string, in ascending
/// order. `starts[0]` is always `0`; each `\n` at byte `i` contributes a
/// start at `i + 1`.
#[derive(Debug, Clone)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Build the index in one pass over the input.
    pub fn new(input: &str) -> Self {
        let mut starts = Vec::with_capacity(16);
        starts.push(0);
        for (i, b) in input.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// Number of lines (a trailing `\n` opens a final empty line).
    pub fn line_count(&self) -> usize {
        self.starts.len()
    }

    /// Byte offset where 1-based `line` starts, if in range.
    pub fn line_start(&self, line: usize) -> Option<usize> {
        self.starts.get(line.checked_sub(1)?).copied()
    }

    /// The 1-based line number containing byte offset `at` (offsets at or
    /// past the end of input resolve to the last line). The line-number
    /// half of [`LineIndex::line_col`] without the column count, so it
    /// never touches the text — O(log lines).
    pub fn line_of(&self, at: usize) -> usize {
        self.starts.partition_point(|&s| s <= at)
    }

    /// Incrementally update the index for an edit replacing the byte range
    /// `start..old_end` with `replacement`: line starts at or before
    /// `start` are kept, starts inside the replaced window are dropped in
    /// favor of the replacement's own newlines, and starts after the
    /// window shift by the length delta. Equivalent to rebuilding with
    /// [`LineIndex::new`] on the edited text, but O(lines in the window +
    /// lines after it) with no rescans of the unedited prefix text.
    pub fn apply_edit(&mut self, start: usize, old_end: usize, replacement: &str) {
        debug_assert!(start <= old_end);
        let lo = self.starts.partition_point(|&s| s <= start);
        let hi = self.starts.partition_point(|&s| s <= old_end);
        let delta = replacement.len() as isize - (old_end - start) as isize;
        if delta != 0 {
            for s in &mut self.starts[hi..] {
                *s = (*s as isize + delta) as usize;
            }
        }
        let mid = replacement
            .bytes()
            .enumerate()
            .filter(|&(_, b)| b == b'\n')
            .map(|(i, _)| start + i + 1);
        self.starts.splice(lo..hi, mid);
    }

    /// Compute the 1-based line/column of byte offset `at`, identical to
    /// the naive [`crate::scanner::line_col`] scan: the line is found by
    /// binary search over the line starts, the column counts *characters*
    /// from the line start up to (not including) `at`. Offsets at or past
    /// the end of input resolve to the last line.
    pub fn line_col(&self, input: &str, at: usize) -> (usize, usize) {
        // Number of line starts ≤ `at`; starts[0] == 0 keeps this ≥ 1.
        let line = self.starts.partition_point(|&s| s <= at);
        let start = self.starts[line - 1];
        let column = input[start..]
            .char_indices()
            .take_while(|&(i, _)| start + i < at)
            .count()
            + 1;
        (line, column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original byte-0 rescan, kept as the differential oracle.
    fn naive(input: &str, at: usize) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in input.char_indices() {
            if i >= at {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    #[test]
    fn agrees_with_naive_scan_at_every_offset() {
        for input in [
            "",
            "a",
            "\n",
            "abc\ndef\nghi",
            "trailing newline\n",
            "\n\n\n",
            "SELECT é FROM t\nWHERE 中文 = '🦀'\n",
            "one\r\ntwo\r\nthree",
        ] {
            let index = LineIndex::new(input);
            // Every byte offset, plus a few past the end.
            for at in 0..=input.len() + 3 {
                assert_eq!(
                    index.line_col(input, at),
                    naive(input, at),
                    "input {input:?} at {at}"
                );
            }
        }
    }

    #[test]
    fn line_starts_and_counts() {
        let index = LineIndex::new("ab\ncd\n");
        assert_eq!(index.line_count(), 3);
        assert_eq!(index.line_start(1), Some(0));
        assert_eq!(index.line_start(2), Some(3));
        assert_eq!(index.line_start(3), Some(6));
        assert_eq!(index.line_start(4), None);
        assert_eq!(index.line_start(0), None);
    }

    #[test]
    fn apply_edit_matches_rebuild() {
        let bases = [
            "",
            "a",
            "abc\ndef\nghi",
            "one\ntwo\nthree\nfour\n",
            "\n\n\n",
            "no newlines at all",
            "é\n中文\n🦀",
        ];
        let replacements = ["", "x", "\n", "a\nb", "\n\n", "tail\n", "é", "中\n文", "🦀\n"];
        for base in bases {
            for rep in replacements {
                for start in (0..=base.len()).filter(|&i| base.is_char_boundary(i)) {
                    for end in (start..=base.len()).filter(|&i| base.is_char_boundary(i)) {
                        let mut edited = String::new();
                        edited.push_str(&base[..start]);
                        edited.push_str(rep);
                        edited.push_str(&base[end..]);
                        let mut index = LineIndex::new(base);
                        index.apply_edit(start, end, rep);
                        assert_eq!(
                            index.starts,
                            LineIndex::new(&edited).starts,
                            "base {base:?} edit {start}..{end} -> {rep:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn line_of_matches_line_col() {
        let input = "abc\ndef\n\nghi";
        let index = LineIndex::new(input);
        for at in 0..=input.len() + 2 {
            assert_eq!(index.line_of(at), index.line_col(input, at).0, "at {at}");
        }
    }

    #[test]
    fn multibyte_columns_count_characters_not_bytes() {
        let input = "SELECT é FROM t";
        let index = LineIndex::new(input);
        // `é` starts at byte 7 but is the 8th character.
        assert_eq!(index.line_col(input, 7), (1, 8));
    }
}

//! Vectorized run-skipping scan path — the post-PR-4 lexing hot tier.
//!
//! The compiled byte-class tables ([`crate::compiled`]) pay one dependent
//! table load per input byte. Most bytes of real SQL, though, are spent
//! *inside* a run the DFA crosses without changing state: whitespace,
//! identifier tails, digit strings, string-literal and comment interiors.
//! This module exploits that:
//!
//! * **Per-state run masks.** For every DFA state we precompute the set of
//!   ASCII bytes `b` with `step(state, b) == state` (the state's self-loop
//!   set). While the next bytes stay inside that set the walk cannot move,
//!   accept metadata cannot change, and the scanner may skip forward
//!   wholesale — maximal munch is preserved exactly because the state (and
//!   therefore the packed accept metadata) is unchanged across the run.
//! * **Chunked classification.** Runs are measured 8 bytes at a time with
//!   a portable SWAR loop (membership verdicts aggregated into one `u64`,
//!   `trailing_zeros` finds the first mismatch), or 16 bytes at a time
//!   with a two-nibble shuffle (`pshufb` on SSSE3, `vqtbl1q_u8` on NEON)
//!   behind runtime detection. Bytes ≥ 0x80 are never members, so
//!   multi-byte scalars stop every run and route through the interval-DFA
//!   fallback, exactly like the per-byte path.
//! * **Keyword perfect-hash.** Keywords fragment the identifier states of
//!   the full DFA (the state after `se` of `SELECT` is not the generic
//!   identifier state), which destroys run-skipping for identifiers. So a
//!   second, *keyword-free* automaton is compiled from the same rule list
//!   with the keyword rules removed, and keyword recognition moves to a
//!   per-dialect hash table generated at build time from the composed
//!   token set (no hardcoded SQL): tokens whose winning rule is a keyword
//!   "home" rule (usually `IDENT`) are post-classified with one
//!   case-insensitive hash probe per token.
//!
//! The keyword-free rewrite is only used when a build-time **soundness
//! gate** proves it tokenizes byte-identically to the full automaton (see
//! [`VectorTables::build`]); any keyword failing the gate drops the whole
//! dialect to run-skipping over the full compiled DFA, which is always
//! exact. Equivalence is additionally proven empirically by the
//! four-substrate differential suite in `tests/lex_differential.rs`.

use crate::compiled::{self, BitSet, CompiledDfa};
use crate::dfa::Dfa;
use crate::minimize::minimize;
use crate::nfa::Nfa;
use crate::scanner::{Token, TokenKind};
use crate::tokenset::{RuleKind, TokenRule};

/// Which chunked classifier [`skip_run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable 8-byte SWAR loop (always available).
    Swar,
    /// 16-byte `pshufb` two-nibble shuffle (x86-64, runtime-detected).
    Ssse3,
    /// 16-byte `vqtbl1q_u8` two-nibble shuffle (aarch64 baseline).
    Neon,
}

impl SimdLevel {
    /// Pick the widest classifier available on this machine. The `no-simd`
    /// cargo feature pins the answer to [`SimdLevel::Swar`] so the portable
    /// fallback is provably always available.
    pub fn detect() -> SimdLevel {
        #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
        {
            if std::arch::is_x86_feature_detected!("ssse3") {
                return SimdLevel::Ssse3;
            }
        }
        #[cfg(all(target_arch = "aarch64", not(feature = "no-simd")))]
        {
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Swar
    }

    /// Stable name for bench output and ablation labels.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Swar => "swar",
            SimdLevel::Ssse3 => "ssse3",
            SimdLevel::Neon => "neon",
        }
    }

    /// `true` if this level can run on the current machine.
    pub fn available(self) -> bool {
        match self {
            SimdLevel::Swar => true,
            SimdLevel::Ssse3 => {
                #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
                {
                    std::arch::is_x86_feature_detected!("ssse3")
                }
                #[cfg(not(all(target_arch = "x86_64", not(feature = "no-simd"))))]
                {
                    false
                }
            }
            SimdLevel::Neon => cfg!(all(target_arch = "aarch64", not(feature = "no-simd"))),
        }
    }
}

/// The self-loop byte set of one DFA state, in the three layouts the
/// classifiers want: a 128-bit ASCII membership bitmap for the scalar and
/// SWAR paths, plus the two 16-entry nibble tables the shuffle paths use
/// (`member(b) = lo[b & 0xF] & hi[b >> 4] != 0`; rows 8–15 of `hi` are
/// zero, so bytes ≥ 0x80 are never members and always stop a run).
#[derive(Debug, Clone)]
pub(crate) struct RunMask {
    bits: [u64; 2],
    lo: [u8; 16],
    hi: [u8; 16],
    /// Worth attempting a chunked skip (self-loop set is non-trivial).
    active: bool,
}

impl RunMask {
    fn from_bits(bits: [u64; 2]) -> RunMask {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for b in 0u8..0x80 {
            if bits[(b >> 6) as usize] >> (b & 63) & 1 != 0 {
                let h = b >> 4; // 0..8
                lo[(b & 0x0F) as usize] |= 1 << h;
                hi[h as usize] |= 1 << h;
            }
        }
        let active = (bits[0].count_ones() + bits[1].count_ones()) >= 2;
        RunMask { bits, lo, hi, active }
    }

    #[inline]
    fn member(&self, b: u8) -> bool {
        b < 0x80 && self.bits[(b >> 6) as usize] >> (b & 63) & 1 != 0
    }
}

/// Tags in the high word of a [`RunSet::dispatch`] entry.
const D_GENERAL: u64 = 0 << 32;
const D_SINGLE: u64 = 2 << 32;
const D_DEAD: u64 = 3 << 32;
/// Whole token is provably the maximal self-loop run from its first byte
/// (keywords, plain identifiers, whitespace): payload packs the run mask id
/// in bits 16..32 and either the accept meta (flagless, small tag) or
/// [`RUN_SKIP`] in bits 0..16, so the token is finished without entering
/// the DFA walk at all. Skip runs and emitting runs share one tag — and so
/// one branch target — because mixed input alternates between them on
/// nearly every token.
const D_RUN: u64 = 4 << 32;
const D_TAG: u64 = 7 << 32;

/// Low-half payload bit marking a [`D_RUN`] entry as a pure-skip run
/// (nothing is emitted; the resolve probe is bypassed). Emitting `D_RUN`
/// entries require `meta < RUN_SKIP`, so the bit is unambiguous.
const RUN_SKIP: u32 = 0x8000;

/// Per-state run-skip dispatch: a compact `u16` id per state (0 = the
/// state has no worthwhile self-loop set) into a *deduplicated* mask
/// table. Distinct self-loop sets are few (identifier-continue, digits,
/// whitespace, string/comment interiors), so the masks stay cache-hot and
/// the per-state inner-loop cost is one 2-byte load.
///
/// `dispatch` fuses the whole token-start decision into one 8-byte load
/// per ASCII first byte (tag in the high word, payload in the low word):
///
/// * [`D_RUN`] — the entire token is provably `b` plus the state's
///   self-loop run: the state `b` enters accepts and has no continuation
///   except its own self-loop (every other ASCII byte rejects, no
///   non-ASCII transition exists). Skip-flagged states emit nothing
///   ([`RUN_SKIP`]); others emit one token over the run's span. Either
///   way the maximal-munch bookkeeping is bypassed entirely.
/// * [`D_SINGLE`] — the state `b` enters accepts and has *no* continuation
///   at all, so the token is provably exactly `[b]`; the payload is the
///   packed accept meta.
/// * [`D_GENERAL`] — payload is `step(0, b)`: the full walk, seeded with
///   the first transition already taken.
/// * [`D_DEAD`] — no token starts with `b`: a lex error.
#[derive(Debug, Clone)]
pub(crate) struct RunSet {
    mask_id: Vec<u16>,
    masks: Vec<RunMask>,
    dispatch: [u64; 128],
}

impl RunSet {
    /// Compute self-loop masks for every state of `compiled`, plus the
    /// token-start dispatch table (which needs `dfa` to rule out non-ASCII
    /// continuations).
    fn build(dfa: &Dfa, compiled: &CompiledDfa) -> RunSet {
        // masks[0] is an unused placeholder so id 0 can mean "inactive".
        let mut masks = vec![RunMask::from_bits([0, 0])];
        let mut mask_id = Vec::with_capacity(compiled.states());
        for state in 0..compiled.states() as u32 {
            let mut bits = [0u64; 2];
            for b in 0u8..0x80 {
                if compiled.step_ascii(state, b) == state {
                    bits[(b >> 6) as usize] |= 1 << (b & 63);
                }
            }
            let mask = RunMask::from_bits(bits);
            if !mask.active {
                mask_id.push(0);
                continue;
            }
            let id = masks
                .iter()
                .position(|m| m.bits == mask.bits)
                .unwrap_or_else(|| {
                    masks.push(mask);
                    masks.len() - 1
                });
            mask_id.push(id as u16);
        }

        let mut dispatch = [D_DEAD; 128];
        for b in 0u8..0x80 {
            let s1 = compiled.step_ascii(0, b);
            if s1 == compiled::DEAD {
                continue; // stays D_DEAD
            }
            let meta = compiled.accept_meta(s1);
            // Every ASCII continuation self-loops or rejects…
            let ascii_closed = (0u8..0x80).all(|c| {
                let n = compiled.step_ascii(s1, c);
                n == s1 || n == compiled::DEAD
            });
            // …or rejects outright (no self-loop either).
            let ascii_dead =
                (0u8..0x80).all(|c| compiled.step_ascii(s1, c) == compiled::DEAD);
            // No alphabet interval reaching beyond ASCII may have a
            // transition out of the state (conservative: an interval
            // straddling 0x80 also disqualifies).
            let unicode_closed = dfa
                .intervals
                .iter()
                .enumerate()
                .all(|(ii, &(_, hi))| {
                    (hi as u32) < 0x80 || dfa.states[s1 as usize].trans[ii].is_none()
                });
            dispatch[b as usize] = if meta != compiled::NO_ACCEPT
                && meta & compiled::SKIP_FLAG != 0
                && ascii_closed
                && unicode_closed
            {
                // Pure-skip run; the mask id may be 0 (no chunked mask),
                // in which case the run degrades to byte-at-a-time
                // re-dispatch with identical output.
                D_RUN | u64::from(mask_id[s1 as usize]) << 16 | u64::from(RUN_SKIP)
            } else if meta != compiled::NO_ACCEPT && ascii_dead && unicode_closed {
                D_SINGLE | u64::from(meta)
            } else if meta != compiled::NO_ACCEPT
                && meta < RUN_SKIP // flagless, tag fits the packed payload
                && ascii_closed
                && unicode_closed
                && mask_id[s1 as usize] != 0
            {
                // Accepting state whose only continuations are its own
                // self-loop: the maximal munch from `b` is exactly the
                // run, with this state's meta. (An empty self-loop set
                // with these properties is D_SINGLE above; a one-byte set
                // has no chunked mask and stays D_GENERAL.)
                D_RUN | u64::from(mask_id[s1 as usize]) << 16 | u64::from(meta)
            } else {
                D_GENERAL | u64::from(s1)
            };
        }
        RunSet { mask_id, masks, dispatch }
    }
}

/// Length of the member-run at `bytes[start..]`, measured with the chunked
/// classifier selected by `level`.
#[inline]
pub(crate) fn skip_run(bytes: &[u8], start: usize, m: &RunMask, level: SimdLevel) -> usize {
    match level {
        #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
        // SAFETY: `Ssse3` is only ever selected by `SimdLevel::detect` (or
        // accepted by `Scanner::scan_with_simd`) after runtime detection.
        SimdLevel::Ssse3 => unsafe { skip_ssse3(bytes, start, m) },
        #[cfg(all(target_arch = "aarch64", not(feature = "no-simd")))]
        SimdLevel::Neon => skip_neon(bytes, start, m),
        _ => skip_swar(bytes, start, m),
    }
}

/// Portable chunked skipper: load 8 bytes, fold the eight membership
/// verdicts into one word, and let `trailing_zeros` locate the first
/// mismatch. The inner loop is branchless and unrolled by the compiler.
#[inline]
fn skip_swar(bytes: &[u8], start: usize, m: &RunMask) -> usize {
    let mut i = start;
    while i + 8 <= bytes.len() {
        let chunk = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
        let mut miss = 0u64;
        let mut k = 0;
        while k < 8 {
            let b = (chunk >> (k * 8)) as u8;
            miss |= u64::from(!m.member(b)) << (k * 8);
            k += 1;
        }
        if miss != 0 {
            return i + (miss.trailing_zeros() as usize >> 3) - start;
        }
        i += 8;
    }
    while i < bytes.len() && m.member(bytes[i]) {
        i += 1;
    }
    i - start
}

/// 16-byte two-nibble shuffle classifier. `pshufb` with the raw chunk
/// would already zero lanes whose high bit is set; we mask to the low
/// nibble anyway and rely on the zeroed rows 8–15 of the `hi` table, which
/// keeps the same encoding as the NEON variant.
#[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
#[target_feature(enable = "ssse3")]
#[inline]
unsafe fn skip_ssse3(bytes: &[u8], start: usize, m: &RunMask) -> usize {
    use std::arch::x86_64::*;
    let lo_tab = _mm_loadu_si128(m.lo.as_ptr() as *const __m128i);
    let hi_tab = _mm_loadu_si128(m.hi.as_ptr() as *const __m128i);
    let nibble = _mm_set1_epi8(0x0F);
    let zero = _mm_setzero_si128();
    let mut i = start;
    while i + 16 <= bytes.len() {
        let chunk = _mm_loadu_si128(bytes.as_ptr().add(i) as *const __m128i);
        let lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(chunk, nibble));
        let hi = _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi16(chunk, 4), nibble));
        let member = _mm_and_si128(lo, hi);
        let miss = _mm_movemask_epi8(_mm_cmpeq_epi8(member, zero)) as u32;
        if miss != 0 {
            return i + miss.trailing_zeros() as usize - start;
        }
        i += 16;
    }
    i - start + skip_swar(bytes, i, m)
}

/// 16-byte two-nibble shuffle on NEON; the mismatch mask is narrowed with
/// the `shrn` trick (4 bits per lane) before `trailing_zeros`.
#[cfg(all(target_arch = "aarch64", not(feature = "no-simd")))]
fn skip_neon(bytes: &[u8], start: usize, m: &RunMask) -> usize {
    use std::arch::aarch64::*;
    // SAFETY: NEON is baseline on aarch64; all loads are in bounds.
    unsafe {
        let lo_tab = vld1q_u8(m.lo.as_ptr());
        let hi_tab = vld1q_u8(m.hi.as_ptr());
        let nibble = vdupq_n_u8(0x0F);
        let mut i = start;
        while i + 16 <= bytes.len() {
            let chunk = vld1q_u8(bytes.as_ptr().add(i));
            let lo = vqtbl1q_u8(lo_tab, vandq_u8(chunk, nibble));
            let hi = vqtbl1q_u8(hi_tab, vshrq_n_u8(chunk, 4));
            let member = vandq_u8(lo, hi);
            let missed = vceqq_u8(member, vdupq_n_u8(0));
            let narrowed = vshrn_n_u16(vreinterpretq_u16_u8(missed), 4);
            let bits = vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
            if bits != 0 {
                return i + (bits.trailing_zeros() >> 2) as usize - start;
            }
            i += 16;
        }
        i - start + skip_swar(bytes, i, m)
    }
}

/// Case-folded 16-byte fingerprint of a lexeme: two 8-byte windows (front
/// and back, overlapping for lengths 8–16, zero-padded below 8) OR'd with
/// `0x20` so every ASCII letter folds to lowercase. For two same-length
/// strings of 16 bytes or fewer, equal fingerprints hold **iff** the
/// strings are equal under the `|0x20` fold.
#[inline]
fn fold_words(bytes: &[u8]) -> (u64, u64) {
    const FOLD: u64 = 0x2020_2020_2020_2020;
    let (a, b) = if bytes.len() >= 8 {
        let a = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte window"));
        let b = u64::from_le_bytes(
            bytes[bytes.len() - 8..].try_into().expect("8-byte window"),
        );
        (a, b)
    } else {
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        (u64::from_le_bytes(buf), 0)
    };
    (a | FOLD, b | FOLD)
}

/// [`fold_words`] of `bytes[pos..end]`, using one masked unaligned load for
/// short lexemes whenever 8 bytes are readable — the hot scan path calls
/// this once per home-tagged token, and a variable-length `memcpy` there
/// costs more than the hash itself.
#[inline]
fn fold_words_at(bytes: &[u8], pos: usize, end: usize) -> (u64, u64) {
    const FOLD: u64 = 0x2020_2020_2020_2020;
    let len = end - pos;
    if len < 8 && pos + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte window"));
        // `len` is 1..=7 here, so the shift is in range and the mask
        // reproduces the zero padding of the copying path exactly.
        (w & (u64::MAX >> (64 - 8 * len)) | FOLD, FOLD)
    } else {
        fold_words(&bytes[pos..end])
    }
}

/// Combine a [`fold_words`] fingerprint into the perfect-hash probe key.
/// Deliberately *weak* — one rotate and one xor — because it sits on the
/// latency-critical path of every home-tagged token; all the real mixing
/// happens in the bucket's multiplicative stage (`key * mult >> shift`),
/// and the build-time seed search simply rejects multipliers that collide.
/// The `|0x20` fold aliases a few punctuation bytes (`_` with DEL, etc.)
/// beyond the letter case pairs, which can only raise the collision rate —
/// every slot hit is verified, and buckets are per-length, so correctness
/// never depends on the key (pathological collisions land in a
/// linear fallback).
#[inline]
fn fold_mix(a: u64, b: u64) -> u64 {
    a.rotate_left(32) ^ b
}

#[inline]
fn fold_hash(bytes: &[u8]) -> u64 {
    let (a, b) = fold_words(bytes);
    fold_mix(a, b)
}

/// Deterministic multiplier sequence for the perfect-hash seed search.
fn seed_mult(attempt: u64) -> u64 {
    // splitmix64 finalizer; forced odd so the multiplication permutes.
    let mut z = attempt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

/// One keyword of the composed token set: uppercase spelling plus the
/// rule's index in the full prioritized order.
#[derive(Debug, Clone)]
struct Keyword {
    upper: Box<[u8]>,
    full_idx: u32,
    /// Precomputed [`fold_words`] fingerprint, present when comparing
    /// fingerprints is *exact* for this keyword: all bytes are ASCII
    /// letters (whose only `|0x20` alias is their own case pair) and the
    /// spelling fits the 16-byte window. `None` falls back to a real
    /// case-insensitive byte compare.
    folded: Option<(u64, u64)>,
}

impl Keyword {
    fn new(upper: Box<[u8]>, full_idx: u32) -> Keyword {
        let folded = (upper.len() <= 16 && upper.iter().all(u8::is_ascii_alphabetic))
            .then(|| fold_words(&upper));
        Keyword { upper, full_idx, folded }
    }

    /// Case-insensitive equality against a same-length lexeme.
    #[inline]
    fn matches(&self, lexeme: &[u8], folded_lexeme: (u64, u64)) -> bool {
        match self.folded {
            Some(f) => f == folded_lexeme,
            None => self.upper.eq_ignore_ascii_case(lexeme),
        }
    }
}

/// One perfect-hash table entry with the keyword's folded fingerprint
/// inlined, so the hot probe is a single slot load plus two word compares —
/// no pointer chase back into the keyword list.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Front fingerprint word. `0` marks "no inline fingerprint" (empty
    /// slot, or a keyword that needs a real byte compare): [`fold_words`]
    /// sets the `0x20` bit in every byte, so no lexeme ever folds to zero.
    a: u64,
    /// Back fingerprint word.
    b: u64,
    /// Full-order rule index for fingerprint slots; keyword-list index for
    /// byte-compare slots (`a == 0`); [`NO_KEYWORD`] for empty slots.
    id: u32,
}

const EMPTY_SLOT: Slot = Slot { a: 0, b: 0, id: NO_KEYWORD };

/// Per-length probe parameters into the shared [`KeywordHash::slots`]
/// backing. One flat 16-byte load replaces the old per-length bucket enum
/// (discriminant + boxed-slice deref) on the probe's critical path.
#[derive(Debug, Clone, Copy)]
struct BucketParam {
    /// Perfect-hash multiplier; `0` means "no perfect bucket for this
    /// length" (no keywords at all, or the cold linear fallback).
    mult: u64,
    /// Right shift selecting the slot index (64 − log₂ size).
    shift: u32,
    /// Slot-range start in [`KeywordHash::slots`]; for the linear fallback
    /// (`mult == 0`), start of the id range in [`KeywordHash::linear_ids`],
    /// with the range length stored in `shift`. [`NO_KEYWORD`] when empty.
    base: u32,
}

const EMPTY_PARAM: BucketParam = BucketParam { mult: 0, shift: 0, base: NO_KEYWORD };

const NO_KEYWORD: u32 = u32::MAX;

/// Generated per-dialect keyword recognizer: length-bucketed perfect hash
/// over the composed keyword set, probed once per home-tagged token.
#[derive(Debug, Clone)]
pub(crate) struct KeywordHash {
    kws: Vec<Keyword>,
    /// Indexed by lexeme length; lengths past the end cannot be keywords.
    params: Vec<BucketParam>,
    /// Shared slot backing for every length's perfect bucket.
    slots: Vec<Slot>,
    /// Keyword-list ids for lengths whose seed search failed (cold path).
    linear_ids: Vec<u32>,
}

impl KeywordHash {
    fn build(kws: Vec<Keyword>) -> KeywordHash {
        let max_len = kws.iter().map(|k| k.upper.len()).max().unwrap_or(0);
        let mut hash = KeywordHash {
            kws,
            params: vec![EMPTY_PARAM; max_len + 1],
            slots: Vec::new(),
            linear_ids: Vec::new(),
        };
        for len in 1..=max_len {
            let ids: Vec<u32> = hash
                .kws
                .iter()
                .enumerate()
                .filter(|(_, k)| k.upper.len() == len)
                .map(|(i, _)| i as u32)
                .collect();
            if !ids.is_empty() {
                hash.params[len] = hash.build_bucket(&ids);
            }
        }
        hash
    }

    /// Search for a collision-free multiplier over growing power-of-two
    /// table sizes; bounded so scanner construction stays fast even for
    /// adversarial keyword sets. Appends the winning slot table (or the
    /// linear-fallback id range) to the shared backing.
    fn build_bucket(&mut self, ids: &[u32]) -> BucketParam {
        let kws = &self.kws;
        let hashes: Vec<u64> = ids.iter().map(|&i| fold_hash(&kws[i as usize].upper)).collect();
        let mut size = (ids.len() * 2).next_power_of_two().max(4);
        while size <= 4096 {
            let shift = 64 - size.trailing_zeros();
            for attempt in 0..64u64 {
                let mult = seed_mult(attempt);
                let mut slots = vec![EMPTY_SLOT; size];
                let mut ok = true;
                for (&id, &h) in ids.iter().zip(&hashes) {
                    let slot = (h.wrapping_mul(mult) >> shift) as usize;
                    if slots[slot].id != NO_KEYWORD {
                        ok = false;
                        break;
                    }
                    let kw = &kws[id as usize];
                    slots[slot] = match kw.folded {
                        Some((a, b)) => Slot { a, b, id: kw.full_idx },
                        None => Slot { a: 0, b: 0, id },
                    };
                }
                if ok {
                    let base = self.slots.len() as u32;
                    self.slots.extend_from_slice(&slots);
                    return BucketParam { mult, shift, base };
                }
            }
            size *= 2;
        }
        let base = self.linear_ids.len() as u32;
        self.linear_ids.extend_from_slice(ids);
        BucketParam { mult: 0, shift: ids.len() as u32, base }
    }

    /// The full-order rule index of the keyword `lexeme` spells (in any
    /// case), if there is one.
    #[inline]
    pub(crate) fn lookup(&self, lexeme: &[u8]) -> Option<u32> {
        self.lookup_folded(lexeme, fold_words(lexeme))
    }

    /// [`Self::lookup`] of `bytes[pos..end]` with the fingerprint taken via
    /// the positioned fast path.
    #[inline]
    pub(crate) fn lookup_at(&self, bytes: &[u8], pos: usize, end: usize) -> Option<u32> {
        self.lookup_folded(&bytes[pos..end], fold_words_at(bytes, pos, end))
    }

    #[inline]
    fn lookup_folded(&self, lexeme: &[u8], folded: (u64, u64)) -> Option<u32> {
        let p = *self.params.get(lexeme.len())?;
        if p.mult != 0 {
            let idx = (fold_mix(folded.0, folded.1).wrapping_mul(p.mult) >> p.shift) as usize;
            let slot = &self.slots[p.base as usize + idx];
            // Hot probe: one load, two word compares. Same-length
            // fingerprint equality is exact for inlined slots.
            if slot.a == folded.0 && slot.b == folded.1 {
                return Some(slot.id);
            }
            // Cold residue: keyword without an exact fingerprint
            // (non-letter bytes or >16 bytes) needs a byte compare.
            if slot.a == 0 && slot.id != NO_KEYWORD {
                let kw = &self.kws[slot.id as usize];
                if kw.upper.eq_ignore_ascii_case(lexeme) {
                    return Some(kw.full_idx);
                }
            }
            return None;
        }
        if p.base == NO_KEYWORD {
            return None;
        }
        self.lookup_linear(lexeme, folded, p)
    }

    /// Cold path: linear scan of a length bucket the seed search abandoned.
    #[cold]
    fn lookup_linear(&self, lexeme: &[u8], folded: (u64, u64), p: BucketParam) -> Option<u32> {
        self.linear_ids[p.base as usize..(p.base + p.shift) as usize]
            .iter()
            .map(|&id| &self.kws[id as usize])
            .find(|k| k.matches(lexeme, folded))
            .map(|k| k.full_idx)
    }

    /// Number of keywords indexed (bench/introspection metric).
    pub(crate) fn len(&self) -> usize {
        self.kws.len()
    }
}

/// The keyword-free automaton plus the remap/hash metadata that restores
/// full-rule tokenization on emit.
#[derive(Debug, Clone)]
pub(crate) struct HashedTables {
    /// Keyword-free interval DFA (UTF-8 fallback substrate).
    dfa: Dfa,
    /// Its dense byte-class lowering.
    compiled: CompiledDfa,
    /// Per-state self-loop masks of `compiled`.
    run: RunSet,
    /// vec tag → packed full-rule accept meta (`tag | SKIP_FLAG?`).
    remap_meta: Vec<u32>,
    /// vec tag → full-order rule index (for keyword-priority resolution).
    remap_idx: Vec<u32>,
    /// vec tags some keyword lexeme resolves to (probe filter).
    is_home: Vec<bool>,
    hash: KeywordHash,
}

/// The vectorized scan strategy chosen at build time.
#[derive(Debug, Clone)]
pub(crate) enum VectorMode {
    /// Keyword-free automaton + generated keyword hash (gate passed).
    Hashed(Box<HashedTables>),
    /// Run-skipping over the full compiled DFA (no keywords, or the
    /// soundness gate rejected the keyword-free rewrite).
    RunOnly { run: Box<RunSet> },
}

/// Everything the vectorized scan path needs, built once per scanner.
#[derive(Debug, Clone)]
pub(crate) struct VectorTables {
    pub(crate) level: SimdLevel,
    pub(crate) mode: VectorMode,
}

impl VectorTables {
    /// Build the vector tables for a prioritized rule list whose full
    /// automaton is (`dfa`, `compiled`) with skip set `skip`.
    ///
    /// The keyword-free rewrite is enabled only if every keyword passes the
    /// soundness gate:
    ///
    /// 1. the keyword is pure ASCII;
    /// 2. the *full* automaton's longest match on the keyword's lowercase
    ///    spelling is the whole spelling, won by the keyword's own rule
    ///    (i.e. no earlier rule shadows it);
    /// 3. the *keyword-free* automaton's longest match on the same spelling
    ///    is also the whole spelling (the keyword is subsumed by some
    ///    non-keyword "home" rule, usually `IDENT`);
    /// 4. for every letter of the keyword, the upper- and lowercase bytes
    ///    sit in the same byte-equivalence class of **both** automata, so
    ///    every case variant provably follows the lowercase state path.
    ///
    /// Under 1–4, for every input position the keyword-free automaton's
    /// maximal-munch length equals the full automaton's (keyword matches
    /// are always covered by the home rule at at least the same length, and
    /// the keyword-free rule set is a subset of the full one), and the
    /// winning rule differs only when the lexeme *is* a keyword — exactly
    /// the case the emit-time hash probe resolves by full-order priority.
    /// Any gate failure falls back to run-skipping over the full DFA,
    /// which never changes tokenization at all.
    pub(crate) fn build(
        ordered: &[TokenRule],
        dfa: &Dfa,
        compiled: &CompiledDfa,
        skip: &BitSet,
    ) -> VectorTables {
        let level = SimdLevel::detect();
        let fallback = || VectorTables {
            level,
            mode: VectorMode::RunOnly { run: Box::new(RunSet::build(dfa, compiled)) },
        };

        let keywords: Vec<(usize, &TokenRule)> = ordered
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.kind, RuleKind::Keyword))
            .collect();
        let others: Vec<(usize, &TokenRule)> = ordered
            .iter()
            .enumerate()
            .filter(|(_, r)| !matches!(r.kind, RuleKind::Keyword))
            .collect();
        if keywords.is_empty() || others.is_empty() {
            return fallback();
        }

        // Keyword-free automaton over the remaining rules, same relative
        // priority order, tags renumbered densely.
        let mut nfa = Nfa::new();
        for (vec_tag, (_, rule)) in others.iter().enumerate() {
            match rule.to_regex() {
                Ok(re) => nfa.add_pattern(&re, vec_tag),
                Err(_) => return fallback(), // already rejected upstream
            }
        }
        nfa.finish();
        let vdfa = minimize(&Dfa::from_nfa(&nfa));
        let vskip: BitSet = others.iter().map(|(_, r)| r.is_skip()).collect();
        let vcompiled = CompiledDfa::compile(&vdfa, &vskip);

        let remap_idx: Vec<u32> = others.iter().map(|(fi, _)| *fi as u32).collect();
        let remap_meta: Vec<u32> = others
            .iter()
            .map(|(fi, _)| {
                let flag = if skip.contains(*fi) { compiled::SKIP_FLAG } else { 0 };
                *fi as u32 | flag
            })
            .collect();

        let mut is_home = vec![false; others.len()];
        let mut kws = Vec::with_capacity(keywords.len());
        for (full_idx, rule) in &keywords {
            let spelling = rule.name.as_str();
            if !spelling.is_ascii() || spelling.is_empty() {
                return fallback();
            }
            let lower = spelling.to_ascii_lowercase();
            // Gate 2: the full automaton recognizes the whole spelling as
            // this very keyword rule.
            if dfa.simulate(&lower) != Some((lower.len(), *full_idx)) {
                return fallback();
            }
            // Gate 3: some non-keyword rule subsumes the spelling at full
            // length in the keyword-free automaton.
            let home_tag = match vdfa.simulate(&lower) {
                Some((len, tag)) if len == lower.len() => tag,
                _ => return fallback(),
            };
            // Gate 4: case variants follow the same state path everywhere.
            for b in lower.bytes().filter(u8::is_ascii_lowercase) {
                let up = b.to_ascii_uppercase();
                if compiled.byte_class(b) != compiled.byte_class(up)
                    || vcompiled.byte_class(b) != vcompiled.byte_class(up)
                {
                    return fallback();
                }
            }
            is_home[home_tag] = true;
            kws.push(Keyword::new(
                spelling.to_ascii_uppercase().into_bytes().into_boxed_slice(),
                *full_idx as u32,
            ));
        }

        let mut run = RunSet::build(&vdfa, &vcompiled);
        let hash = KeywordHash::build(kws);
        // Pre-resolve D_SINGLE payloads: a one-byte token's lexeme *is*
        // its dispatch byte, so the emit policy (home check, hash probe,
        // full-order priority) collapses to a build-time constant and the
        // runtime handler can push the packed meta as-is.
        for b in 0u8..0x80 {
            let d = run.dispatch[b as usize];
            if d & D_TAG == D_SINGLE {
                let tag = (d as u32 & compiled::TAG_MASK) as usize;
                let mut full = remap_meta[tag];
                if is_home[tag] {
                    if let Some(kw_idx) = hash.lookup(&[b]) {
                        if kw_idx < remap_idx[tag] {
                            full = kw_idx;
                        }
                    }
                }
                run.dispatch[b as usize] = D_SINGLE | u64::from(full);
            }
        }
        VectorTables {
            level,
            mode: VectorMode::Hashed(Box::new(HashedTables {
                dfa: vdfa,
                compiled: vcompiled,
                run,
                remap_meta,
                remap_idx,
                is_home,
                hash,
            })),
        }
    }

    /// `"keyword-hash"` or `"run-only"` — which strategy the gate chose.
    pub(crate) fn strategy(&self) -> &'static str {
        match self.mode {
            VectorMode::Hashed(_) => "keyword-hash",
            VectorMode::RunOnly { .. } => "run-only",
        }
    }

    /// Number of generated keyword-hash entries (0 in run-only mode).
    pub(crate) fn keywords_hashed(&self) -> usize {
        match &self.mode {
            VectorMode::Hashed(h) => h.hash.len(),
            VectorMode::RunOnly { .. } => 0,
        }
    }

    /// The vectorized maximal-munch loop: scan from byte `start`, append
    /// non-skip tokens, `Err(pos)` at the first stuck position — the same
    /// contract (and provably the same output) as the per-byte cores.
    pub(crate) fn scan_core(
        &self,
        full_dfa: &Dfa,
        full_compiled: &CompiledDfa,
        input: &str,
        start: usize,
        out: &mut Vec<Token>,
        level: SimdLevel,
    ) -> Result<(), usize> {
        match &self.mode {
            VectorMode::Hashed(h) => {
                run_loop(&h.dfa, &h.compiled, &h.run, level, h.as_ref(), input, start, out)
            }
            VectorMode::RunOnly { run } => {
                run_loop(full_dfa, full_compiled, run, level, &Identity, input, start, out)
            }
        }
    }
}

/// Emit-time policy: translate the scanning automaton's packed accept meta
/// for the token `input[pos..end]` into full-rule accept meta.
trait EmitPolicy {
    fn resolve(&self, input: &str, pos: usize, end: usize, meta: u32) -> u32;
}

/// Full-DFA scan: metas are already full-rule metas.
struct Identity;

impl EmitPolicy for Identity {
    #[inline]
    fn resolve(&self, _input: &str, _pos: usize, _end: usize, meta: u32) -> u32 {
        meta
    }
}

impl EmitPolicy for HashedTables {
    #[inline]
    fn resolve(&self, input: &str, pos: usize, end: usize, meta: u32) -> u32 {
        let tag = (meta & compiled::TAG_MASK) as usize;
        if self.is_home[tag] {
            if let Some(kw_idx) = self.hash.lookup_at(input.as_bytes(), pos, end) {
                // Full-order priority between the keyword and the home
                // rule decides, exactly as the full DFA would.
                if kw_idx < self.remap_idx[tag] {
                    return kw_idx; // keyword rules are never skip rules
                }
            }
        }
        self.remap_meta[tag]
    }
}

/// Level dispatch for [`run_loop_inner`]. The SSSE3 arm re-enters through
/// a `#[target_feature]` wrapper so the 16-byte skipper inlines straight
/// into the token loop (no per-run call, no per-run nibble-table reload
/// scheduling barrier); other levels monomorphize the portable path.
#[allow(clippy::too_many_arguments)]
fn run_loop<E: EmitPolicy>(
    dfa: &Dfa,
    compiled: &CompiledDfa,
    run: &RunSet,
    level: SimdLevel,
    policy: &E,
    input: &str,
    start: usize,
    out: &mut Vec<Token>,
) -> Result<(), usize> {
    match level {
        #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
        // SAFETY: `Ssse3` is only selected after runtime detection.
        SimdLevel::Ssse3 => unsafe { run_loop_ssse3(dfa, compiled, run, policy, input, start, out) },
        _ => run_loop_inner(dfa, compiled, run, level, policy, input, start, out),
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
#[target_feature(enable = "ssse3")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_loop_ssse3<E: EmitPolicy>(
    dfa: &Dfa,
    compiled: &CompiledDfa,
    run: &RunSet,
    policy: &E,
    input: &str,
    start: usize,
    out: &mut Vec<Token>,
) -> Result<(), usize> {
    run_loop_inner(dfa, compiled, run, SimdLevel::Ssse3, policy, input, start, out)
}

/// The shared scan loop: per-byte table stepping with chunked run-skipping
/// layered on top. The inner loop is *step → skip → record*: after every
/// state entry the state's self-loop run is skipped wholesale (state and
/// accept meta provably unchanged across a self-loop run), then the accept
/// metadata is recorded at the run's end — identical maximal-munch
/// bookkeeping to the per-byte cores, minus the per-byte work. A one-byte
/// scalar membership pretest keeps zero-length runs (the common case for
/// punctuation-dense input) out of the chunked classifier entirely.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_loop_inner<E: EmitPolicy>(
    dfa: &Dfa,
    compiled: &CompiledDfa,
    run: &RunSet,
    level: SimdLevel,
    policy: &E,
    input: &str,
    start: usize,
    out: &mut Vec<Token>,
) -> Result<(), usize> {
    let bytes = input.as_bytes();
    let len = bytes.len();
    let mask_id: &[u16] = &run.mask_id;
    let masks: &[RunMask] = &run.masks;
    let dispatch: &[u64; 128] = &run.dispatch;
    let mut pos = start;
    while pos < len {
        let b0 = bytes[pos];
        let mut state: u32;
        let mut i: usize;
        if b0 < 0x80 {
            // Frequency-ordered tag tests (run ≫ single ≫ general ≫ dead):
            // mixed input alternates between token shapes on nearly every
            // token, so two well-predicted conditional branches beat one
            // BTB-hostile indirect jump here.
            let d = dispatch[b0 as usize];
            let payload = d as u32;
            let tag = d & D_TAG;
            if tag == D_RUN {
                // The whole token is the maximal self-loop run from
                // `pos` (keywords, identifiers, whitespace): extend it
                // with the chunked classifier and finish without ever
                // touching the DFA walk below.
                let mut end = pos + 1;
                let mid = (payload >> 16) as usize;
                if mid != 0 && end < len {
                    // SAFETY: non-zero ids index `masks` by construction.
                    let rm = unsafe { masks.get_unchecked(mid) };
                    if rm.member(bytes[end]) {
                        end += skip_run(bytes, end, rm, level);
                    }
                }
                let m = payload & 0xFFFF;
                if m & RUN_SKIP == 0 {
                    let meta = policy.resolve(input, pos, end, m);
                    if meta & compiled::SKIP_FLAG == 0 {
                        out.push(Token {
                            kind: TokenKind(meta & compiled::TAG_MASK),
                            start: pos,
                            end,
                        });
                    }
                }
                pos = end;
                continue;
            } else if tag == D_SINGLE {
                // One-byte token (punctuation, mostly). The payload is
                // already full-rule meta: inherently in full-DFA mode,
                // pre-resolved at build time in hashed mode.
                if payload & compiled::SKIP_FLAG == 0 {
                    out.push(Token {
                        kind: TokenKind(payload & compiled::TAG_MASK),
                        start: pos,
                        end: pos + 1,
                    });
                }
                pos += 1;
                continue;
            } else if tag == D_GENERAL {
                // First transition pre-taken by the dispatch table.
                state = payload;
                i = pos + 1;
            } else {
                return Err(pos);
            }
        } else {
            // Multi-byte scalar at token start: take the first transition
            // through the interval DFA.
            let c = input[pos..].chars().next().expect("non-empty suffix");
            match dfa.step(0, c) {
                Some(s) => {
                    state = s;
                    i = pos + c.len_utf8();
                }
                None => return Err(pos),
            }
        }
        // The walk proper: skip the state's self-loop run, record accept
        // metadata at the run's end, then take the next transition —
        // identical maximal-munch bookkeeping to the per-byte cores. Entry
        // invariant: `state` is live and `i > pos` (first byte consumed),
        // so zero-length matches are impossible.
        let mut best_end = usize::MAX;
        let mut best_meta = 0u32;
        loop {
            // SAFETY: live state index; `mask_id` has one entry per state.
            let id = unsafe { *mask_id.get_unchecked(state as usize) };
            if id != 0 && i < len {
                let rm = unsafe { masks.get_unchecked(id as usize) };
                if rm.member(bytes[i]) {
                    i += skip_run(bytes, i, rm, level);
                }
            }
            // SAFETY: live state index.
            let meta = unsafe { compiled.accept_meta_unchecked(state) };
            if meta != compiled::NO_ACCEPT {
                best_end = i;
                best_meta = meta;
            }
            if i >= len {
                break;
            }
            let b = bytes[i];
            let next = if b < 0x80 {
                // SAFETY: `state` is live — the loop breaks before
                // assigning DEAD.
                unsafe { compiled.step_ascii_unchecked(state, b) }
            } else {
                // Multi-byte scalar: `i` is a char boundary because runs
                // never include bytes ≥ 0x80 and the walk advances by
                // whole characters.
                let c = input[i..].chars().next().expect("non-empty suffix");
                i += c.len_utf8() - 1;
                match dfa.step(state, c) {
                    Some(next) => next,
                    None => compiled::DEAD,
                }
            };
            if next == compiled::DEAD {
                break;
            }
            i += 1;
            state = next;
        }
        if best_end == usize::MAX {
            return Err(pos);
        }
        debug_assert!(best_end > pos, "zero-length token match would not progress");
        let meta = policy.resolve(input, pos, best_end, best_meta);
        if meta & compiled::SKIP_FLAG == 0 {
            out.push(Token {
                kind: TokenKind(meta & compiled::TAG_MASK),
                start: pos,
                end: best_end,
            });
        }
        pos = best_end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(set: &[u8]) -> RunMask {
        let mut bits = [0u64; 2];
        for &b in set {
            assert!(b < 0x80);
            bits[(b >> 6) as usize] |= 1 << (b & 63);
        }
        RunMask::from_bits(bits)
    }

    #[test]
    fn nibble_tables_agree_with_bitmap() {
        let m = mask_of(&[b' ', b'\t', b'\n', b'a', b'z', b'_', b'0', b'9', 0x7F]);
        for b in 0u8..=0xFF {
            let via_nibbles = m.lo[(b & 0x0F) as usize] & m.hi[(b >> 4) as usize] != 0;
            assert_eq!(via_nibbles, m.member(b), "byte {b:#x}");
        }
    }

    #[test]
    fn swar_skip_finds_first_mismatch_at_every_offset() {
        let m = mask_of(&(b'a'..=b'z').collect::<Vec<_>>());
        for run_len in 0..40 {
            let mut input = vec![b'q'; run_len];
            input.push(b'!');
            input.extend_from_slice(b"tail");
            for start in 0..run_len.min(3) {
                assert_eq!(
                    skip_swar(&input, start, &m),
                    run_len - start,
                    "run_len={run_len} start={start}"
                );
            }
        }
        // run to end of input (no terminator)
        assert_eq!(skip_swar(&[b'x'; 23], 0, &m), 23);
        // empty and immediate mismatch
        assert_eq!(skip_swar(&[], 0, &m), 0);
        assert_eq!(skip_swar(b"!abc", 0, &m), 0);
    }

    #[test]
    fn swar_skip_stops_at_non_ascii() {
        let m = mask_of(&(0x20u8..0x7F).collect::<Vec<_>>());
        let mut input = vec![b'a'; 20];
        input.push(0xC3);
        input.push(0xA9);
        assert_eq!(skip_swar(&input, 0, &m), 20);
    }

    #[test]
    fn detected_level_agrees_with_swar_everywhere() {
        let level = SimdLevel::detect();
        let m = mask_of(&(b'a'..=b'z').chain([b'_', b'0', b'5']).collect::<Vec<_>>());
        for run_len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 63, 64, 65, 100] {
            let mut input = vec![b'm'; run_len];
            input.push(b'#');
            input.extend_from_slice(&[b'z'; 9]);
            assert_eq!(
                skip_run(&input, 0, &m, level),
                skip_swar(&input, 0, &m),
                "run_len={run_len} level={level:?}"
            );
        }
        // non-ASCII terminator at a chunk-interior offset
        let mut input = vec![b'k'; 37];
        input.push(0xE2);
        assert_eq!(skip_run(&input, 0, &m, level), 37);
    }

    #[test]
    fn keyword_hash_roundtrip_and_case_insensitivity() {
        let words = [
            "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "JOIN", "ON",
            "AND", "OR", "NOT", "IN", "AS", "INSERT", "UPDATE", "DELETE", "CREATE", "TABLE",
        ];
        let kws: Vec<Keyword> = words
            .iter()
            .enumerate()
            .map(|(i, w)| Keyword::new(w.as_bytes().to_vec().into_boxed_slice(), i as u32))
            .collect();
        let hash = KeywordHash::build(kws);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(hash.lookup(w.as_bytes()), Some(i as u32), "{w}");
            assert_eq!(hash.lookup(w.to_ascii_lowercase().as_bytes()), Some(i as u32));
            let mixed: String = w
                .chars()
                .enumerate()
                .map(|(j, c)| if j % 2 == 0 { c.to_ascii_lowercase() } else { c })
                .collect();
            assert_eq!(hash.lookup(mixed.as_bytes()), Some(i as u32), "{mixed}");
        }
        for miss in ["SELEC", "SELECTS", "XYZZY", "", "FR0M", "wher"] {
            assert_eq!(hash.lookup(miss.as_bytes()), None, "{miss}");
        }
    }

    #[test]
    fn keyword_hash_prefers_perfect_buckets() {
        let kws: Vec<Keyword> = (0..40)
            .map(|i| Keyword::new(format!("KW{i:02}").into_bytes().into_boxed_slice(), i))
            .collect();
        let hash = KeywordHash::build(kws);
        assert_ne!(hash.params[4].mult, 0, "expected a perfect bucket for length 4");
        for i in 0..40u32 {
            assert_eq!(hash.lookup(format!("kw{i:02}").as_bytes()), Some(i));
        }
    }
}

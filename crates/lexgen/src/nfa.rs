//! Thompson construction: [`Regex`] → nondeterministic finite automaton.
//!
//! The NFA is tagged: several patterns can be compiled into one automaton,
//! each with a distinct accepting *tag* (the token rule index). Subset
//! construction later resolves tag conflicts by smallest tag (= highest
//! declaration priority).

use crate::regex::{CharClass, Regex};

/// State index inside an [`Nfa`].
pub type StateId = usize;

/// One NFA state.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// ε-transitions.
    pub eps: Vec<StateId>,
    /// Character-class transitions.
    pub trans: Vec<(CharClass, StateId)>,
    /// Accepting tag, if this is a final state.
    pub accept: Option<usize>,
}

/// A tagged NFA over `char`.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    /// All states; state 0 is the start state once [`Nfa::finish`] ran.
    pub states: Vec<NfaState>,
    start: Option<StateId>,
    fragment_starts: Vec<StateId>,
}

impl Nfa {
    /// Empty automaton; add patterns with [`Nfa::add_pattern`].
    pub fn new() -> Self {
        Nfa::default()
    }

    fn push(&mut self) -> StateId {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    /// Compile `re` into this automaton with accepting tag `tag`.
    pub fn add_pattern(&mut self, re: &Regex, tag: usize) {
        let (start, end) = self.compile(re);
        self.states[end].accept = Some(tag);
        self.fragment_starts.push(start);
    }

    /// Create the shared start state wiring all added patterns together.
    pub fn finish(&mut self) -> StateId {
        let start = self.push();
        let frags = std::mem::take(&mut self.fragment_starts);
        self.states[start].eps.extend(frags);
        self.start = Some(start);
        start
    }

    /// The start state; panics if [`Nfa::finish`] was not called.
    pub fn start(&self) -> StateId {
        self.start.expect("Nfa::finish must be called before use")
    }

    /// Compile a regex fragment, returning `(entry, exit)` states.
    fn compile(&mut self, re: &Regex) -> (StateId, StateId) {
        match re {
            Regex::Empty => {
                let s = self.push();
                let e = self.push();
                self.states[s].eps.push(e);
                (s, e)
            }
            Regex::Class(c) => {
                let s = self.push();
                let e = self.push();
                self.states[s].trans.push((c.clone(), e));
                (s, e)
            }
            Regex::Concat(items) => {
                let mut entry = None;
                let mut prev_exit: Option<StateId> = None;
                for item in items {
                    let (s, e) = self.compile(item);
                    if let Some(pe) = prev_exit {
                        self.states[pe].eps.push(s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                match (entry, prev_exit) {
                    (Some(s), Some(e)) => (s, e),
                    _ => self.compile(&Regex::Empty),
                }
            }
            Regex::Alt(alts) => {
                let s = self.push();
                let e = self.push();
                for alt in alts {
                    let (as_, ae) = self.compile(alt);
                    self.states[s].eps.push(as_);
                    self.states[ae].eps.push(e);
                }
                (s, e)
            }
            Regex::Star(inner) => {
                let s = self.push();
                let e = self.push();
                let (is, ie) = self.compile(inner);
                self.states[s].eps.push(is);
                self.states[s].eps.push(e);
                self.states[ie].eps.push(is);
                self.states[ie].eps.push(e);
                (s, e)
            }
            Regex::Plus(inner) => {
                let (is, ie) = self.compile(inner);
                let e = self.push();
                self.states[ie].eps.push(is);
                self.states[ie].eps.push(e);
                (is, e)
            }
            Regex::Opt(inner) => {
                let s = self.push();
                let e = self.push();
                let (is, ie) = self.compile(inner);
                self.states[s].eps.push(is);
                self.states[s].eps.push(e);
                self.states[ie].eps.push(e);
                (s, e)
            }
        }
    }

    /// ε-closure of a state set (sorted, deduped).
    pub fn eps_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = set.to_vec();
        for &s in set {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].eps {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.states.len()).filter(|&i| seen[i]).collect()
    }

    /// Simulate the NFA on `input` from the start state; returns the
    /// accepting tag of the longest match from position 0 (with ties broken
    /// by smallest tag) and the match length. Reference semantics for
    /// differential tests and the naive-scanner ablation.
    pub fn simulate(&self, input: &str) -> Option<(usize, usize)> {
        let mut current = self.eps_closure(&[self.start()]);
        let mut best: Option<(usize, usize)> = None;
        let mut len = 0usize;
        self.note_accept(&current, len, &mut best);
        for c in input.chars() {
            let mut next: Vec<StateId> = Vec::new();
            for &s in &current {
                for (class, t) in &self.states[s].trans {
                    if class.contains(c) && !next.contains(t) {
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            current = self.eps_closure(&next);
            len += c.len_utf8();
            self.note_accept(&current, len, &mut best);
        }
        best
    }

    fn note_accept(&self, set: &[StateId], len: usize, best: &mut Option<(usize, usize)>) {
        let tag = set.iter().filter_map(|&s| self.states[s].accept).min();
        if let Some(tag) = tag {
            if len > 0 {
                match best {
                    Some((blen, btag)) if *blen > len || (*blen == len && *btag <= tag) => {}
                    _ => *best = Some((len, tag)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn nfa_of(pattern: &str) -> Nfa {
        let re = parse(pattern).unwrap();
        let mut nfa = Nfa::new();
        nfa.add_pattern(&re, 0);
        nfa.finish();
        nfa
    }

    fn matches(pattern: &str, input: &str) -> bool {
        nfa_of(pattern).simulate(input) == Some((input.len(), 0))
    }

    #[test]
    fn literal_match() {
        assert!(matches("abc", "abc"));
        assert!(!matches("abc", "abd"));
    }

    #[test]
    fn star_matches_zero_or_more() {
        assert!(matches("ab*", "a"));
        assert!(matches("ab*", "abbb"));
        assert!(!matches("ab*", "ba"));
    }

    #[test]
    fn plus_requires_one() {
        assert!(!matches("ab+c", "ac"));
        assert!(matches("ab+c", "abc"));
        assert!(matches("ab+c", "abbbc"));
    }

    #[test]
    fn opt_and_alt() {
        assert!(matches("colou?r", "color"));
        assert!(matches("colou?r", "colour"));
        assert!(matches("cat|dog", "dog"));
        assert!(!matches("cat|dog", "cow"));
    }

    #[test]
    fn class_and_dot() {
        assert!(matches("[0-9]+", "12345"));
        assert!(matches("'[^']*'", "'hello world'"));
        assert!(!matches("'[^']*'", "'it's'"));
    }

    #[test]
    fn longest_match_reported() {
        let nfa = nfa_of("a+");
        assert_eq!(nfa.simulate("aaab"), Some((3, 0)));
    }

    #[test]
    fn tag_priority_on_tie() {
        // keyword vs identifier, same length: smaller tag wins.
        let kw = parse("select").unwrap();
        let ident = parse("[a-z]+").unwrap();
        let mut nfa = Nfa::new();
        nfa.add_pattern(&kw, 0);
        nfa.add_pattern(&ident, 1);
        nfa.finish();
        assert_eq!(nfa.simulate("select"), Some((6, 0)));
        // longer identifier beats shorter keyword prefix
        assert_eq!(nfa.simulate("selects"), Some((7, 1)));
        assert_eq!(nfa.simulate("table"), Some((5, 1)));
    }

    #[test]
    fn empty_regex_matches_empty_only() {
        let nfa = nfa_of("");
        // zero-length matches are suppressed (len > 0 requirement)
        assert_eq!(nfa.simulate("x"), None);
    }

    #[test]
    fn no_match_returns_none() {
        assert_eq!(nfa_of("[0-9]+").simulate("abc"), None);
    }
}

//! A regular-expression subset sufficient for SQL token patterns.
//!
//! Supported syntax: literals, `.`, character classes `[a-z0-9_]` /
//! `[^…]` with ranges, escapes (`\d \w \s \n \r \t` and `\<punct>`),
//! grouping `(…)`, alternation `|`, and the quantifiers `* + ? {m} {m,}
//! {m,n}`. No anchors, backreferences, or capture semantics — token
//! patterns are pure regular languages.

use std::fmt;

/// A normalized set of inclusive character ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Sorted, disjoint, non-adjacent inclusive ranges.
    ranges: Vec<(char, char)>,
}

impl CharClass {
    /// Empty class (matches nothing).
    pub fn empty() -> Self {
        CharClass { ranges: Vec::new() }
    }

    /// Class containing a single character.
    pub fn single(c: char) -> Self {
        CharClass { ranges: vec![(c, c)] }
    }

    /// Class from arbitrary ranges (normalized).
    pub fn from_ranges(ranges: impl IntoIterator<Item = (char, char)>) -> Self {
        let mut rs: Vec<(char, char)> = ranges
            .into_iter()
            .filter(|(lo, hi)| lo <= hi)
            .collect();
        rs.sort();
        let mut out: Vec<(char, char)> = Vec::with_capacity(rs.len());
        for (lo, hi) in rs {
            match out.last_mut() {
                Some((_, phi)) if (*phi as u32) + 1 >= lo as u32 => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => out.push((lo, hi)),
            }
        }
        CharClass { ranges: out }
    }

    /// The class matching any character except those in `self`
    /// (over the full Unicode scalar range).
    pub fn negate(&self) -> Self {
        let mut out = Vec::new();
        let mut next = '\u{0}';
        for &(lo, hi) in &self.ranges {
            if next < lo {
                out.push((next, prev_char(lo)));
            }
            next = match succ_char(hi) {
                Some(c) => c,
                None => return CharClass { ranges: out },
            };
        }
        out.push((next, char::MAX));
        CharClass { ranges: out }
    }

    /// Union of two classes.
    pub fn union(&self, other: &CharClass) -> CharClass {
        CharClass::from_ranges(self.ranges.iter().chain(other.ranges.iter()).copied())
    }

    /// `true` if `c` is in the class.
    pub fn contains(&self, c: char) -> bool {
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The normalized ranges.
    pub fn ranges(&self) -> &[(char, char)] {
        &self.ranges
    }

    /// `true` if the class matches nothing.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// An arbitrary member character, if non-empty (used by sentence
    /// generation).
    pub fn sample(&self) -> Option<char> {
        self.ranges.first().map(|&(lo, _)| lo)
    }
}

/// Skip surrogate gap going down.
fn prev_char(c: char) -> char {
    let mut v = c as u32;
    loop {
        v = v.wrapping_sub(1);
        if let Some(c) = char::from_u32(v) {
            return c;
        }
    }
}

/// Skip surrogate gap going up; `None` past `char::MAX`.
fn succ_char(c: char) -> Option<char> {
    let mut v = c as u32;
    loop {
        v = v.checked_add(1)?;
        if v > char::MAX as u32 {
            return None;
        }
        if let Some(c) = char::from_u32(v) {
            return Some(c);
        }
    }
}

/// Regular-expression abstract syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// Matches the empty string.
    Empty,
    /// Matches one character from the class.
    Class(CharClass),
    /// Sequence.
    Concat(Vec<Regex>),
    /// Ordered alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

impl Regex {
    /// Literal string (case-sensitive).
    pub fn literal(s: &str) -> Regex {
        Regex::Concat(s.chars().map(|c| Regex::Class(CharClass::single(c))).collect())
    }

    /// Literal string matching either case of every ASCII letter
    /// (SQL keywords are case-insensitive).
    pub fn literal_ci(s: &str) -> Regex {
        Regex::Concat(
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphabetic() {
                        Regex::Class(CharClass::from_ranges([
                            (c.to_ascii_lowercase(), c.to_ascii_lowercase()),
                            (c.to_ascii_uppercase(), c.to_ascii_uppercase()),
                        ]))
                    } else {
                        Regex::Class(CharClass::single(c))
                    }
                })
                .collect(),
        )
    }
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Parse a pattern string into a [`Regex`].
pub fn parse(pattern: &str) -> Result<Regex, RegexError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
    };
    let re = p.alternation()?;
    if p.pos < p.chars.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(re)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: &str) -> RegexError {
        RegexError {
            at: self.chars.get(self.pos).map_or(self.chars.len(), |&(i, _)| i),
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Regex, RegexError> {
        let mut alts = vec![self.concat()?];
        while self.eat('|') {
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            Regex::Alt(alts)
        })
    }

    fn concat(&mut self) -> Result<Regex, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.quantified()?);
        }
        Ok(match items.len() {
            0 => Regex::Empty,
            1 => items.pop().unwrap(),
            _ => Regex::Concat(items),
        })
    }

    fn quantified(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some('+') => {
                    self.bump();
                    atom = Regex::Plus(Box::new(atom));
                }
                Some('?') => {
                    self.bump();
                    atom = Regex::Opt(Box::new(atom));
                }
                Some('{') => {
                    self.bump();
                    atom = self.counted(atom)?;
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// `{m}`, `{m,}`, `{m,n}` expanded structurally.
    fn counted(&mut self, atom: Regex) -> Result<Regex, RegexError> {
        let min = self.number()?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.error("expected `}` in counted repetition"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.error("repetition max below min"));
            }
            if max > 64 {
                return Err(self.error("counted repetition larger than 64 not supported"));
            }
        }
        // Expand: atom{m,n} = atom^m (atom?)^(n-m); atom{m,} = atom^m atom*
        let mut seq: Vec<Regex> = (0..min).map(|_| atom.clone()).collect();
        match max {
            Some(max) => {
                for _ in min..max {
                    seq.push(Regex::Opt(Box::new(atom.clone())));
                }
            }
            None => seq.push(Regex::Star(Box::new(atom.clone()))),
        }
        Ok(match seq.len() {
            0 => Regex::Empty,
            1 => seq.pop().unwrap(),
            _ => Regex::Concat(seq),
        })
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let mut n: Option<u32> = None;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                n = Some(n.unwrap_or(0).saturating_mul(10).saturating_add(d));
            } else {
                break;
            }
        }
        n.ok_or_else(|| self.error("expected a number"))
    }

    fn atom(&mut self) -> Result<Regex, RegexError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.char_class()
            }
            Some('.') => {
                self.bump();
                // `.` = anything but newline, the conventional meaning.
                Ok(Regex::Class(CharClass::single('\n').negate()))
            }
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                Ok(Regex::Class(escape_class(c)))
            }
            Some(c) if !"*+?{}|)".contains(c) => {
                self.bump();
                Ok(Regex::Class(CharClass::single(c)))
            }
            Some(_) => Err(self.error("unexpected metacharacter")),
            None => Err(self.error("unexpected end of pattern")),
        }
    }

    fn char_class(&mut self) -> Result<Regex, RegexError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                None => return Err(self.error("unclosed character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(c) => c,
            };
            first = false;
            self.bump();
            let lo_class = if c == '\\' {
                let e = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                let cls = escape_class(e);
                // Multi-range escapes (\d, \w, \s) can't form ranges.
                if cls.ranges().len() > 1 || e == 'd' || e == 'w' || e == 's' {
                    ranges.extend(cls.ranges().iter().copied());
                    continue;
                }
                cls
            } else {
                CharClass::single(c)
            };
            let lo = lo_class.ranges()[0].0;
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
            {
                self.bump(); // '-'
                let hi_c = self
                    .bump()
                    .ok_or_else(|| self.error("unterminated range"))?;
                let hi = if hi_c == '\\' {
                    let e = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                    escape_class(e).ranges()[0].0
                } else {
                    hi_c
                };
                if hi < lo {
                    return Err(self.error("inverted character range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.extend(lo_class.ranges().iter().copied());
            }
        }
        let class = CharClass::from_ranges(ranges);
        Ok(Regex::Class(if negated { class.negate() } else { class }))
    }
}

/// The class an escape sequence denotes.
fn escape_class(c: char) -> CharClass {
    match c {
        'd' => CharClass::from_ranges([('0', '9')]),
        'w' => CharClass::from_ranges([('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')]),
        's' => CharClass::from_ranges([
            (' ', ' '),
            ('\t', '\t'),
            ('\n', '\n'),
            ('\r', '\r'),
            ('\u{b}', '\u{c}'),
        ]),
        'n' => CharClass::single('\n'),
        'r' => CharClass::single('\r'),
        't' => CharClass::single('\t'),
        '0' => CharClass::single('\0'),
        other => CharClass::single(other),
    }
}

#[cfg(test)]
impl Regex {
    /// `Regex::literal("a")` builds `Concat([Class(a)])`; single-element
    /// concat compares unequal to the parser's unwrapped form. Normalize for
    /// test assertions.
    fn simplify_for_test(self) -> Regex {
        match self {
            Regex::Concat(mut v) if v.len() == 1 => v.pop().unwrap(),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_normalization_merges_overlaps() {
        let c = CharClass::from_ranges([('a', 'f'), ('d', 'k'), ('m', 'm')]);
        assert_eq!(c.ranges(), &[('a', 'k'), ('m', 'm')]);
    }

    #[test]
    fn class_normalization_merges_adjacent() {
        let c = CharClass::from_ranges([('a', 'c'), ('d', 'f')]);
        assert_eq!(c.ranges(), &[('a', 'f')]);
    }

    #[test]
    fn class_contains() {
        let c = CharClass::from_ranges([('0', '9'), ('a', 'f')]);
        assert!(c.contains('5'));
        assert!(c.contains('a'));
        assert!(!c.contains('g'));
        assert!(!c.contains('/'));
    }

    #[test]
    fn negation_roundtrip() {
        let c = CharClass::from_ranges([('b', 'y')]);
        let n = c.negate();
        assert!(n.contains('a'));
        assert!(n.contains('z'));
        assert!(!n.contains('m'));
        assert_eq!(n.negate().ranges(), c.ranges());
    }

    #[test]
    fn negate_empty_is_everything() {
        let all = CharClass::empty().negate();
        assert!(all.contains('\0'));
        assert!(all.contains(char::MAX));
        assert!(all.contains('x'));
    }

    #[test]
    fn parse_literal() {
        let r = parse("abc").unwrap();
        assert_eq!(r, Regex::literal("abc"));
    }

    #[test]
    fn parse_alternation_and_grouping() {
        let r = parse("a(b|c)d").unwrap();
        match r {
            Regex::Concat(items) => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[1], Regex::Alt(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_quantifiers() {
        assert!(matches!(parse("a*").unwrap(), Regex::Star(_)));
        assert!(matches!(parse("a+").unwrap(), Regex::Plus(_)));
        assert!(matches!(parse("a?").unwrap(), Regex::Opt(_)));
    }

    #[test]
    fn parse_counted_repetition() {
        // a{2,3} == aa(a?)
        let r = parse("a{2,3}").unwrap();
        match r {
            Regex::Concat(items) => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[2], Regex::Opt(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse("a{3}").unwrap(), Regex::Concat(v) if v.len() == 3));
    }

    #[test]
    fn parse_counted_open_ended() {
        // a{2,} == aa a*
        let r = parse("a{2,}").unwrap();
        match r {
            Regex::Concat(items) => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[2], Regex::Star(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_char_class_with_ranges() {
        let r = parse("[A-Za-z_][A-Za-z0-9_]*").unwrap();
        match r {
            Regex::Concat(items) => {
                let Regex::Class(c) = &items[0] else { panic!() };
                assert!(c.contains('Q') && c.contains('q') && c.contains('_'));
                assert!(!c.contains('0'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_negated_class() {
        let r = parse("[^'\n]").unwrap();
        let Regex::Class(c) = r else { panic!() };
        assert!(!c.contains('\''));
        assert!(!c.contains('\n'));
        assert!(c.contains('x'));
    }

    #[test]
    fn parse_escapes() {
        let r = parse(r"\d+\.\d+").unwrap();
        let Regex::Concat(items) = r else { panic!() };
        assert_eq!(items.len(), 3); // \d+  \.  \d+
        let Regex::Class(dot) = &items[1] else { panic!() };
        assert!(dot.contains('.') && !dot.contains('5'));
    }

    #[test]
    fn parse_class_with_escape_sets() {
        let r = parse(r"[\d_]").unwrap();
        let Regex::Class(c) = r else { panic!() };
        assert!(c.contains('7') && c.contains('_') && !c.contains('a'));
    }

    #[test]
    fn parse_dash_literal_at_end_of_class() {
        let r = parse("[a-]").unwrap();
        let Regex::Class(c) = r else { panic!() };
        assert!(c.contains('a') && c.contains('-'));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("(a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse(r"\").is_err());
        assert!(parse("[z-a]").is_err());
    }

    #[test]
    fn literal_ci_matches_both_cases() {
        let r = Regex::literal_ci("As");
        let Regex::Concat(items) = r else { panic!() };
        let Regex::Class(a) = &items[0] else { panic!() };
        assert!(a.contains('a') && a.contains('A'));
        let Regex::Class(s) = &items[1] else { panic!() };
        assert!(s.contains('s') && s.contains('S'));
    }

    #[test]
    fn empty_pattern_is_empty_regex() {
        assert_eq!(parse("").unwrap(), Regex::Empty);
        assert_eq!(parse("a|").unwrap(), Regex::Alt(vec![Regex::literal("a").simplify_for_test(), Regex::Empty]));
    }
}

//! Lexer-generator substrate for `sqlweave`.
//!
//! The paper delegates lexing to ANTLR's generated lexers; this crate is the
//! from-scratch replacement. It compiles a set of token rules — keywords,
//! punctuation, and regular-expression patterns — into a single minimized
//! DFA and scans input with longest-match / declaration-priority semantics.
//!
//! Pipeline: [`regex`] (pattern AST + parser) → [`nfa`] (Thompson
//! construction) → [`dfa`] (subset construction over a partitioned
//! alphabet) → [`minimize`] (partition refinement) → [`compiled`] (dense
//! byte-class dispatch tables) → [`vector`] (chunked SWAR/SIMD
//! run-skipping plus the generated keyword hash) → [`scanner`]
//! (maximal-munch scanning over the vectorized tables, with the per-byte
//! compiled walk and the interval walker preserved as differential
//! oracles). [`tokenset`] is the user-facing rule
//! collection, used by the grammar/composition layers for the paper's
//! per-feature *token files*.
//!
//! # Example
//!
//! ```
//! use sqlweave_lexgen::tokenset::TokenSet;
//!
//! let mut ts = TokenSet::new();
//! ts.keyword("SELECT").unwrap();
//! ts.keyword("FROM").unwrap();
//! ts.punct("COMMA", ",").unwrap();
//! ts.pattern("IDENT", r"[A-Za-z_][A-Za-z0-9_]*").unwrap();
//! ts.skip("WS", r"[ \t\r\n]+").unwrap();
//!
//! let scanner = ts.build().unwrap();
//! let toks = scanner.scan("select x, y from t").unwrap();
//! let kinds: Vec<&str> = toks.iter().map(|t| scanner.name(t.kind)).collect();
//! assert_eq!(kinds, ["SELECT", "IDENT", "COMMA", "IDENT", "FROM", "IDENT"]);
//! ```

pub mod analysis;
pub mod compiled;
pub mod dfa;
pub mod incremental;
pub mod line_index;
pub mod minimize;
pub mod nfa;
pub mod regex;
pub mod scanner;
pub mod tokenset;
pub mod vector;

pub use compiled::CompiledDfa;
pub use incremental::{RawStep, Relex, TokenSource};
pub use line_index::LineIndex;
pub use scanner::{LexError, Scanner, Token, TokenKind};
pub use tokenset::{TokenRule, TokenSet};
pub use vector::SimdLevel;

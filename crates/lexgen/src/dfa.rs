//! Subset construction: tagged NFA → DFA over a partitioned alphabet.
//!
//! The automaton's alphabet is not `char` directly but a set of disjoint
//! character intervals computed from every class boundary appearing in the
//! NFA. Within one interval, all characters behave identically, so DFA
//! transitions are per-interval — typically a few dozen intervals for a SQL
//! token set instead of 1.1M code points.

use crate::nfa::Nfa;
use std::collections::HashMap;

/// A deterministic automaton with tagged accepting states.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Sorted, disjoint alphabet intervals (inclusive).
    pub intervals: Vec<(char, char)>,
    /// States; index 0 is the start state.
    pub states: Vec<DfaState>,
}

/// One DFA state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaState {
    /// Per-interval successor (`None` = reject).
    pub trans: Vec<Option<u32>>,
    /// Accepting tag (token rule index), smallest tag wins on conflicts.
    pub accept: Option<usize>,
}

impl Dfa {
    /// Build a DFA from a finished NFA.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let intervals = alphabet_intervals(nfa);
        let mut states: Vec<DfaState> = Vec::new();
        let mut index: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut worklist: Vec<Vec<usize>> = Vec::new();

        let start_set = nfa.eps_closure(&[nfa.start()]);
        index.insert(start_set.clone(), 0);
        states.push(DfaState {
            trans: vec![None; intervals.len()],
            accept: accept_of(nfa, &start_set),
        });
        worklist.push(start_set);

        while let Some(set) = worklist.pop() {
            let id = index[&set];
            for (ii, &(lo, _hi)) in intervals.iter().enumerate() {
                // Any character of the interval is representative.
                let mut moved: Vec<usize> = Vec::new();
                for &s in &set {
                    for (class, t) in &nfa.states[s].trans {
                        if class.contains(lo) && !moved.contains(t) {
                            moved.push(*t);
                        }
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let closed = nfa.eps_closure(&moved);
                let target = match index.get(&closed) {
                    Some(&t) => t,
                    None => {
                        let t = states.len() as u32;
                        index.insert(closed.clone(), t);
                        states.push(DfaState {
                            trans: vec![None; intervals.len()],
                            accept: accept_of(nfa, &closed),
                        });
                        worklist.push(closed);
                        t
                    }
                };
                states[id as usize].trans[ii] = Some(target);
            }
        }
        Dfa { intervals, states }
    }

    /// Map a character to its alphabet interval, if any.
    pub fn classify(&self, c: char) -> Option<usize> {
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
    }

    /// Step from `state` on character `c`.
    #[inline]
    pub fn step(&self, state: u32, c: char) -> Option<u32> {
        let ii = self.classify(c)?;
        self.states[state as usize].trans[ii]
    }

    /// Longest-match simulation from position 0 of `input`; returns
    /// `(match_len_bytes, tag)`.
    pub fn simulate(&self, input: &str) -> Option<(usize, usize)> {
        let mut state = 0u32;
        let mut best: Option<(usize, usize)> = None;
        let mut len = 0usize;
        for c in input.chars() {
            match self.step(state, c) {
                Some(next) => {
                    state = next;
                    len += c.len_utf8();
                    if let Some(tag) = self.states[state as usize].accept {
                        best = Some((len, tag));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Upper bound, in *characters*, on how far a maximal-munch scan can
    /// examine input past the end of the match it finally emits — the
    /// automaton keeps stepping after the last accepting state until it
    /// dies, and every state on that tail is non-accepting (an accept
    /// would have extended the match). The bound is therefore one char
    /// for the killing character plus the longest path through
    /// non-accepting states reachable from any accepting state. `None`
    /// means such a path can cycle (the lookahead is unbounded, e.g. a
    /// token that is a prefix of an arbitrarily long non-accepting
    /// pattern); incremental relexing then restarts from byte 0.
    pub fn probe_overhang(&self) -> Option<usize> {
        let tags = self
            .states
            .iter()
            .filter_map(|s| s.accept)
            .max()
            .map_or(0, |t| t + 1);
        self.probe_overhang_by_tag(tags)
            .into_iter()
            .try_fold(1usize, |acc, oh| oh.map(|oh| acc.max(oh)))
    }

    /// Per-rule refinement of [`Dfa::probe_overhang`]: entry `t` bounds
    /// the lookahead of any munch that *ends in an accepting state of
    /// rule `t`* — the rule that longest-match resolution actually
    /// reports for the match. A single unbounded rule (say, a quoted
    /// string whose body can run on forever unaccepted) then poisons
    /// only its own entry instead of the whole automaton: matches of
    /// every other rule keep a finite bound, and callers fall back to
    /// exact recorded probe frontiers for the unbounded rules alone.
    /// Entries for tags the automaton never accepts stay `Some(1)`.
    pub fn probe_overhang_by_tag(&self, tags: usize) -> Vec<Option<usize>> {
        // Longest non-accepting chain from each non-accepting state,
        // counting the state itself. Recursion depth is bounded by the
        // chain length, which this function proves finite before
        // returning it; `None` propagation marks every state on the DFS
        // stack above a cycle, which is exactly the set of states from
        // which that cycle is reachable.
        let n = self.states.len();
        let mut longest = vec![0usize; n];
        let mut done = vec![false; n];
        fn chain(
            dfa: &Dfa,
            s: usize,
            longest: &mut [usize],
            done: &mut [bool],
            on_stack: &mut [bool],
        ) -> Option<usize> {
            if done[s] {
                return Some(longest[s]);
            }
            if on_stack[s] {
                return None; // cycle through non-accepting states
            }
            on_stack[s] = true;
            let mut best = 1usize;
            for t in dfa.states[s].trans.iter().flatten() {
                let t = *t as usize;
                if dfa.states[t].accept.is_some() {
                    continue; // re-accepting paths extend the match instead
                }
                best = best.max(1 + chain(dfa, t, longest, done, on_stack)?);
            }
            on_stack[s] = false;
            done[s] = true;
            longest[s] = best;
            Some(best)
        }
        let mut on_stack = vec![false; n];
        let mut out = vec![Some(1usize); tags]; // the killing character itself
        for s in 0..n {
            let Some(tag) = self.states[s].accept else {
                continue;
            };
            if tag >= tags {
                continue;
            }
            for t in self.states[s].trans.iter().flatten() {
                let t = *t as usize;
                if self.states[t].accept.is_some() {
                    continue;
                }
                out[tag] = match (
                    out[tag],
                    chain(self, t, &mut longest, &mut done, &mut on_stack),
                ) {
                    (Some(a), Some(c)) => Some(a.max(1 + c)),
                    _ => None,
                };
            }
        }
        out
    }

    /// `true` if the automaton has no states (never after construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Smallest accepting tag of an NFA state set.
fn accept_of(nfa: &Nfa, set: &[usize]) -> Option<usize> {
    set.iter().filter_map(|&s| nfa.states[s].accept).min()
}

/// Compute the disjoint alphabet intervals induced by all class boundaries.
///
/// A single sorted sweep over range-boundary events decides coverage: each
/// class range contributes `+1` at its start and `-1` one past its end, so
/// an interval is kept iff the running depth at its low end is positive.
/// (The earlier implementation re-scanned every NFA transition per
/// candidate interval — quadratic in the number of class boundaries, which
/// the `full` token set has hundreds of.)
pub(crate) fn alphabet_intervals(nfa: &Nfa) -> Vec<(char, char)> {
    // Coverage events in u32 space: range start opens (+1), one past the
    // range end closes (-1). Event positions double as the cut points.
    let mut events: Vec<(u32, i32)> = Vec::new();
    for state in &nfa.states {
        for (class, _) in &state.trans {
            for &(lo, hi) in class.ranges() {
                events.push((lo as u32, 1));
                events.push((hi as u32 + 1, -1));
            }
        }
    }
    let mut cuts: Vec<u32> = events.iter().map(|&(at, _)| at).collect();
    // Always cut at the surrogate gap so no interval straddles it; gap
    // intervals are dropped below because their low end is not a `char`.
    cuts.push(0xD800);
    cuts.push(0xE000);
    cuts.sort_unstable();
    cuts.dedup();
    events.sort_unstable();

    let mut intervals = Vec::new();
    let mut depth = 0i32;
    let mut next_event = 0usize;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1] - 1);
        // Accumulate every event at or before this interval's start; cut
        // points include every class boundary, so an interval is fully
        // inside or fully outside each class and the depth at `lo` is the
        // depth everywhere in the interval.
        while next_event < events.len() && events[next_event].0 <= lo {
            depth += events[next_event].1;
            next_event += 1;
        }
        if depth <= 0 {
            continue;
        }
        // Skip the surrogate gap (its low end is not a `char`).
        let lo_c = match char::from_u32(lo) {
            Some(c) => c,
            None => continue,
        };
        let hi_c = char::from_u32(hi).expect("interval ends never fall inside the surrogate gap");
        intervals.push((lo_c, hi_c));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn dfa_of(patterns: &[&str]) -> Dfa {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_pattern(&parse(p).unwrap(), i);
        }
        nfa.finish();
        Dfa::from_nfa(&nfa)
    }

    #[test]
    fn literal_simulation() {
        let d = dfa_of(&["abc"]);
        assert_eq!(d.simulate("abc"), Some((3, 0)));
        assert_eq!(d.simulate("abx"), None);
        assert_eq!(d.simulate("ab"), None);
    }

    #[test]
    fn longest_match() {
        let d = dfa_of(&["a+"]);
        assert_eq!(d.simulate("aaab"), Some((3, 0)));
    }

    #[test]
    fn priority_resolution() {
        let d = dfa_of(&["select", "[a-z]+"]);
        assert_eq!(d.simulate("select"), Some((6, 0)));
        assert_eq!(d.simulate("selected"), Some((8, 1)));
        assert_eq!(d.simulate("sel"), Some((3, 1)));
    }

    #[test]
    fn intervals_are_disjoint_and_sorted() {
        let d = dfa_of(&["[a-m]+", "[k-z]+", "[0-9]"]);
        for w in d.intervals.windows(2) {
            assert!(w[0].1 < w[1].0, "overlap: {:?}", d.intervals);
        }
        // boundary char 'k' splits [a-m] and [k-z]
        assert!(d.classify('j') != d.classify('k'));
    }

    #[test]
    fn classify_outside_alphabet() {
        let d = dfa_of(&["[a-z]+"]);
        assert_eq!(d.classify('0'), None);
        assert!(d.classify('q').is_some());
    }

    #[test]
    fn agreement_with_nfa_reference() {
        let patterns = ["[0-9]+", "[0-9]+\\.[0-9]+", "[a-zA-Z_][a-zA-Z0-9_]*", "'([^'])*'"];
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_pattern(&parse(p).unwrap(), i);
        }
        nfa.finish();
        let dfa = Dfa::from_nfa(&nfa);
        for input in ["123", "12.5", "hello", "'str'", "12.x", "x12", "''", "9"] {
            assert_eq!(dfa.simulate(input), nfa.simulate(input), "on {input:?}");
        }
    }

    #[test]
    fn probe_overhang_bounds_lookahead() {
        // `12.x`: after accepting `12`, the munch examines `.` (live,
        // hoping for a fraction) and `x` (dead) — overhang 2.
        let d = dfa_of(&["[0-9]+(\\.[0-9]+)?", "[a-z]+"]);
        let oh = d.probe_overhang().unwrap();
        assert!(oh >= 2, "number lookahead needs 2, got {oh}");
        // Exponent forms look one further (`1e+` then the dead byte).
        let d = dfa_of(&["[0-9]+(\\.[0-9]+)?([eE][+\\-]?[0-9]+)?"]);
        assert!(d.probe_overhang().unwrap() >= 3);
        // Pure keyword/ident sets die immediately after their match.
        let d = dfa_of(&["[a-z]+", "[0-9]+"]);
        assert_eq!(d.probe_overhang(), Some(1));
        // A standalone `/` that is also the prefix of a block comment can
        // stay live through an unbounded non-accepting comment body:
        // overhang is unbounded.
        let d = dfa_of(&["/", "/\\*([^*])*\\*/"]);
        assert_eq!(d.probe_overhang(), None);
    }

    #[test]
    fn dot_like_negated_class() {
        let d = dfa_of(&["--[^\n]*"]);
        assert_eq!(d.simulate("-- a comment"), Some((12, 0)));
        assert_eq!(d.simulate("-- a\nrest"), Some((4, 0)));
    }
}

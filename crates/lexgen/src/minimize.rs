//! DFA minimization by partition refinement (Moore's algorithm).
//!
//! Accepting states with different tags are kept distinguishable, so
//! minimization never merges two token kinds. The implicit dead state is
//! modeled as block `usize::MAX` and remains implicit in the result.

use crate::dfa::{Dfa, DfaState};
use std::collections::HashMap;

/// Minimize `dfa`, preserving language and tags. The start state of the
/// result is state 0.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let n = dfa.states.len();
    if n == 0 {
        return dfa.clone();
    }

    // Initial partition: by accept tag.
    let mut block_of: Vec<usize> = Vec::with_capacity(n);
    {
        let mut tag_block: HashMap<Option<usize>, usize> = HashMap::new();
        for s in &dfa.states {
            let next = tag_block.len();
            let b = *tag_block.entry(s.accept).or_insert(next);
            block_of.push(b);
        }
    }

    // Refine until stable: two states stay together iff for every interval
    // their successors are in the same block (dead successor = MAX).
    loop {
        let mut sig_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next_block_of: Vec<usize> = Vec::with_capacity(n);
        for (s, state) in dfa.states.iter().enumerate() {
            let sig: Vec<usize> = state
                .trans
                .iter()
                .map(|t| t.map_or(usize::MAX, |t| block_of[t as usize]))
                .collect();
            let key = (block_of[s], sig);
            let next = sig_block.len();
            let b = *sig_block.entry(key).or_insert(next);
            next_block_of.push(b);
        }
        let stable = next_block_of == block_of;
        block_of = next_block_of;
        if stable {
            break;
        }
    }

    // Renumber blocks so the start state's block is 0, then in discovery
    // order for determinism.
    let block_count = block_of.iter().max().map_or(0, |&b| b + 1);
    let mut renumber: Vec<Option<u32>> = vec![None; block_count];
    let mut order: Vec<usize> = Vec::new(); // representative state per new id
    renumber[block_of[0]] = Some(0);
    order.push(0);
    for (s, &b) in block_of.iter().enumerate() {
        if renumber[b].is_none() {
            renumber[b] = Some(order.len() as u32);
            order.push(s);
        }
    }

    let states: Vec<DfaState> = order
        .iter()
        .map(|&rep| DfaState {
            trans: dfa.states[rep]
                .trans
                .iter()
                .map(|t| t.map(|t| renumber[block_of[t as usize]].unwrap()))
                .collect(),
            accept: dfa.states[rep].accept,
        })
        .collect();

    Dfa {
        intervals: dfa.intervals.clone(),
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::parse;

    fn dfa_of(patterns: &[&str]) -> Dfa {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_pattern(&parse(p).unwrap(), i);
        }
        nfa.finish();
        Dfa::from_nfa(&nfa)
    }

    #[test]
    fn minimization_shrinks_redundant_states() {
        // (a|b)(a|b)* has equivalent states after the first step.
        let d = dfa_of(&["(a|b)(a|b)*"]);
        let m = minimize(&d);
        assert!(m.len() <= d.len());
        assert_eq!(m.simulate("abba"), Some((4, 0)));
        assert_eq!(m.simulate("c"), None);
    }

    #[test]
    fn language_preserved() {
        let patterns = ["select", "from", "[a-z_][a-z0-9_]*", "[0-9]+", "<>|<=|>=|=|<|>"];
        let d = dfa_of(&patterns);
        let m = minimize(&d);
        for input in [
            "select", "from", "fro", "froms", "x1", "42", "<=", "<", "<>", "=", "", "1a",
        ] {
            assert_eq!(m.simulate(input), d.simulate(input), "on {input:?}");
        }
    }

    #[test]
    fn distinct_tags_not_merged() {
        // `a` and `b` accept with different tags; their accepting states
        // must stay distinct.
        let d = dfa_of(&["a", "b"]);
        let m = minimize(&d);
        assert_eq!(m.simulate("a"), Some((1, 0)));
        assert_eq!(m.simulate("b"), Some((1, 1)));
    }

    #[test]
    fn minimization_is_idempotent() {
        let d = dfa_of(&["(ab|ac)*d"]);
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        assert_eq!(m1.len(), m2.len());
    }

    #[test]
    fn start_state_is_zero() {
        let d = dfa_of(&["xy"]);
        let m = minimize(&d);
        assert_eq!(m.simulate("xy"), Some((2, 0)));
    }
}

//! Token-rule collections — the runtime form of the paper's per-feature
//! *token files*.
//!
//! A [`TokenSet`] is an ordered list of rules. Order is priority: when two
//! rules match the same longest lexeme, the earlier rule wins. Keywords are
//! declared before patterns by convention (the composition layer in
//! `sqlweave-core` enforces this ordering when merging token files).

use crate::compiled::{BitSet, CompiledDfa};
use crate::dfa::Dfa;
use crate::minimize::minimize;
use crate::nfa::Nfa;
use crate::regex::{self, Regex, RegexError};
use crate::scanner::Scanner;
use crate::vector::VectorTables;
use std::fmt;

/// The definition of one token rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleKind {
    /// Case-insensitive reserved word; name doubles as the spelling.
    Keyword,
    /// Exact literal operator/punctuation.
    Punct(String),
    /// Regular-expression pattern.
    Pattern(String),
    /// Regular-expression pattern whose matches are dropped.
    Skip(String),
}

/// A named token rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenRule {
    /// Token name as used by grammars (e.g. `SELECT`, `IDENT`).
    pub name: String,
    /// What the rule matches.
    pub kind: RuleKind,
}

impl TokenRule {
    /// `true` if this rule's matches are discarded.
    pub fn is_skip(&self) -> bool {
        matches!(self.kind, RuleKind::Skip(_))
    }

    /// The regex this rule compiles to.
    pub fn to_regex(&self) -> Result<Regex, RegexError> {
        match &self.kind {
            RuleKind::Keyword => Ok(Regex::literal_ci(&self.name)),
            RuleKind::Punct(lit) => Ok(Regex::literal(lit)),
            RuleKind::Pattern(p) | RuleKind::Skip(p) => regex::parse(p),
        }
    }
}

/// Error building a token set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenSetError {
    /// Two rules share a name but differ in definition.
    Conflict { name: String, existing: RuleKind, new: RuleKind },
    /// A pattern failed to parse.
    BadPattern { name: String, error: RegexError },
    /// An empty keyword or punct literal.
    EmptyLiteral { name: String },
}

impl fmt::Display for TokenSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenSetError::Conflict { name, existing, new } => write!(
                f,
                "token `{name}` defined twice with different rules: {existing:?} vs {new:?}"
            ),
            TokenSetError::BadPattern { name, error } => {
                write!(f, "token `{name}` has a bad pattern: {error}")
            }
            TokenSetError::EmptyLiteral { name } => {
                write!(f, "token `{name}` has an empty literal")
            }
        }
    }
}

impl std::error::Error for TokenSetError {}

/// An ordered, deduplicated collection of token rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenSet {
    rules: Vec<TokenRule>,
}

impl TokenSet {
    /// Empty set.
    pub fn new() -> Self {
        TokenSet::default()
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[TokenRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if no rules are defined.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Find a rule by name.
    pub fn get(&self, name: &str) -> Option<&TokenRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Add a rule. Identical redefinitions are idempotent; conflicting ones
    /// error. This is the primitive the composition layer uses to merge
    /// per-feature token files.
    pub fn add(&mut self, rule: TokenRule) -> Result<(), TokenSetError> {
        if rule.name.is_empty() {
            return Err(TokenSetError::EmptyLiteral { name: rule.name });
        }
        match &rule.kind {
            RuleKind::Punct(l) if l.is_empty() => {
                return Err(TokenSetError::EmptyLiteral { name: rule.name })
            }
            RuleKind::Pattern(p) | RuleKind::Skip(p) => {
                if let Err(error) = regex::parse(p) {
                    return Err(TokenSetError::BadPattern { name: rule.name, error });
                }
            }
            _ => {}
        }
        if let Some(existing) = self.get(&rule.name) {
            if existing.kind == rule.kind {
                return Ok(());
            }
            return Err(TokenSetError::Conflict {
                name: rule.name.clone(),
                existing: existing.kind.clone(),
                new: rule.kind,
            });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Declare a case-insensitive keyword; its token name is its spelling.
    pub fn keyword(&mut self, word: &str) -> Result<(), TokenSetError> {
        self.add(TokenRule { name: word.to_ascii_uppercase(), kind: RuleKind::Keyword })
    }

    /// Declare a punctuation/operator literal.
    pub fn punct(&mut self, name: &str, literal: &str) -> Result<(), TokenSetError> {
        self.add(TokenRule {
            name: name.to_string(),
            kind: RuleKind::Punct(literal.to_string()),
        })
    }

    /// Declare a pattern token.
    pub fn pattern(&mut self, name: &str, pattern: &str) -> Result<(), TokenSetError> {
        self.add(TokenRule {
            name: name.to_string(),
            kind: RuleKind::Pattern(pattern.to_string()),
        })
    }

    /// Declare a skipped pattern (whitespace, comments).
    pub fn skip(&mut self, name: &str, pattern: &str) -> Result<(), TokenSetError> {
        self.add(TokenRule {
            name: name.to_string(),
            kind: RuleKind::Skip(pattern.to_string()),
        })
    }

    /// Merge `other` into `self` (rule-by-rule [`TokenSet::add`]).
    pub fn merge(&mut self, other: &TokenSet) -> Result<(), TokenSetError> {
        for rule in &other.rules {
            self.add(rule.clone())?;
        }
        Ok(())
    }

    /// Compile to a scanner. Rules are reordered so that keywords and puncts
    /// precede patterns (declaration order preserved within each class),
    /// matching the intuition that specific literals outrank generic
    /// patterns of the same length; longest-match still lets a longer
    /// pattern win.
    pub fn build(&self) -> Result<Scanner, TokenSetError> {
        let ordered = self.prioritized();
        let mut nfa = Nfa::new();
        for (tag, rule) in ordered.iter().enumerate() {
            let re = rule.to_regex().map_err(|error| TokenSetError::BadPattern {
                name: rule.name.clone(),
                error,
            })?;
            nfa.add_pattern(&re, tag);
        }
        nfa.finish();
        let dfa = minimize(&Dfa::from_nfa(&nfa));
        let skip: BitSet = ordered.iter().map(TokenRule::is_skip).collect();
        let compiled = CompiledDfa::compile(&dfa, &skip);
        let vector = VectorTables::build(&ordered, &dfa, &compiled, &skip);
        let overhang_by_tag = dfa.probe_overhang_by_tag(ordered.len()).into_boxed_slice();
        Ok(Scanner {
            dfa,
            overhang_by_tag,
            compiled,
            vector,
            names: ordered
                .iter()
                .map(|r| r.name.clone().into_boxed_str())
                .collect(),
            skip,
        })
    }

    /// Build per-rule NFAs in the same priority order as [`TokenSet::build`]
    /// (for the naive-scanner ablation).
    pub fn build_rule_nfas(&self) -> Result<Vec<Nfa>, TokenSetError> {
        self.prioritized()
            .iter()
            .map(|rule| {
                let re = rule.to_regex().map_err(|error| TokenSetError::BadPattern {
                    name: rule.name.clone(),
                    error,
                })?;
                let mut nfa = Nfa::new();
                nfa.add_pattern(&re, 0);
                nfa.finish();
                Ok(nfa)
            })
            .collect()
    }

    /// Rules with keywords/puncts hoisted above patterns/skips.
    pub(crate) fn prioritized(&self) -> Vec<TokenRule> {
        let mut ordered: Vec<TokenRule> = self
            .rules
            .iter()
            .filter(|r| matches!(r.kind, RuleKind::Keyword | RuleKind::Punct(_)))
            .cloned()
            .collect();
        ordered.extend(
            self.rules
                .iter()
                .filter(|r| matches!(r.kind, RuleKind::Pattern(_) | RuleKind::Skip(_)))
                .cloned(),
        );
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_add() {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.keyword("SELECT").unwrap(); // same rule, fine
        ts.keyword("select").unwrap(); // names normalize to uppercase
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn conflicting_definition_rejected() {
        let mut ts = TokenSet::new();
        ts.pattern("NUM", "[0-9]+").unwrap();
        let err = ts.pattern("NUM", "[0-9]+(\\.[0-9]+)?").unwrap_err();
        assert!(matches!(err, TokenSetError::Conflict { name, .. } if name == "NUM"));
    }

    #[test]
    fn bad_pattern_rejected_eagerly() {
        let mut ts = TokenSet::new();
        let err = ts.pattern("BROKEN", "[a-").unwrap_err();
        assert!(matches!(err, TokenSetError::BadPattern { .. }));
    }

    #[test]
    fn empty_literal_rejected() {
        let mut ts = TokenSet::new();
        assert!(ts.punct("X", "").is_err());
    }

    #[test]
    fn merge_composes_token_files() {
        // Simulates the paper: each feature contributes a token file.
        let mut base = TokenSet::new();
        base.keyword("SELECT").unwrap();
        base.pattern("IDENT", "[a-z]+").unwrap();

        let mut where_tokens = TokenSet::new();
        where_tokens.keyword("WHERE").unwrap();
        where_tokens.punct("EQ", "=").unwrap();
        where_tokens.pattern("IDENT", "[a-z]+").unwrap(); // shared, identical

        base.merge(&where_tokens).unwrap();
        assert_eq!(base.len(), 4);
    }

    #[test]
    fn merge_conflict_detected() {
        let mut a = TokenSet::new();
        a.pattern("IDENT", "[a-z]+").unwrap();
        let mut b = TokenSet::new();
        b.pattern("IDENT", "[A-Za-z]+").unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn keywords_beat_patterns_regardless_of_declaration_order() {
        let mut ts = TokenSet::new();
        ts.pattern("IDENT", "[a-z]+").unwrap(); // declared FIRST
        ts.keyword("from").unwrap();
        let s = ts.build().unwrap();
        let toks = s.scan("from").unwrap();
        assert_eq!(s.name(toks[0].kind), "FROM");
    }

    #[test]
    fn naive_scanner_agrees_with_dfa() {
        let mut ts = TokenSet::new();
        ts.keyword("SELECT").unwrap();
        ts.punct("LE", "<=").unwrap();
        ts.punct("LT", "<").unwrap();
        ts.pattern("IDENT", "[a-z]+").unwrap();
        ts.pattern("NUM", "[0-9]+").unwrap();
        ts.skip("WS", " +").unwrap();
        let s = ts.build().unwrap();
        let nfas = ts.build_rule_nfas().unwrap();
        for input in ["select x", "a <= 10", "a < b", "x1", "selectx 5"] {
            // "x1" fails both ways? IDENT then NUM: yes lexes as [x][1]? IDENT is [a-z]+ so "x", NUM "1".
            let fast = s.scan(input);
            let naive = s.scan_naive(input, &nfas);
            assert_eq!(fast, naive, "on {input:?}");
        }
    }

    #[test]
    fn punct_longest_match() {
        let mut ts = TokenSet::new();
        ts.punct("LT", "<").unwrap();
        ts.punct("LE", "<=").unwrap();
        ts.punct("NE", "<>").unwrap();
        let s = ts.build().unwrap();
        let toks = s.scan("<=<><").unwrap();
        let names: Vec<_> = toks.iter().map(|t| s.name(t.kind)).collect();
        assert_eq!(names, ["LE", "NE", "LT"]);
    }
}

//! Property-based differential tests over the lexer-generator pipeline:
//! for random patterns and inputs, the Thompson NFA, the subset-construction
//! DFA, and the minimized DFA must agree exactly.

use proptest::prelude::*;
use sqlweave_lexgen::dfa::Dfa;
use sqlweave_lexgen::minimize::minimize;
use sqlweave_lexgen::nfa::Nfa;
use sqlweave_lexgen::regex::{parse, Regex};

/// A strategy for random regexes over a small alphabet, by construction
/// valid (we generate the AST, then render it to pattern syntax).
fn arb_regex() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "[ab]", "[a-c]", "[^a]", "x"])
            .prop_map(str::to_string),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // concatenation
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("")),
            // alternation
            prop::collection::vec(inner.clone(), 2..4).prop_map(|v| format!("({})", v.join("|"))),
            // quantifiers
            inner.clone().prop_map(|r| format!("({r})*")),
            inner.clone().prop_map(|r| format!("({r})+")),
            inner.prop_map(|r| format!("({r})?")),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c', 'x', 'y']), 0..10)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_dfa_minimized_agree(pattern in arb_regex(), input in arb_input()) {
        let re = parse(&pattern).unwrap_or_else(|e| panic!("generated bad pattern {pattern:?}: {e}"));
        let mut nfa = Nfa::new();
        nfa.add_pattern(&re, 0);
        nfa.finish();
        let dfa = Dfa::from_nfa(&nfa);
        let min = minimize(&dfa);
        let n = nfa.simulate(&input);
        let d = dfa.simulate(&input);
        let m = min.simulate(&input);
        prop_assert_eq!(n, d, "NFA vs DFA on {:?} / {:?}", pattern, input);
        prop_assert_eq!(d, m, "DFA vs minimized on {:?} / {:?}", pattern, input);
    }

    #[test]
    fn minimization_never_grows(pattern in arb_regex()) {
        let re = parse(&pattern).unwrap();
        let mut nfa = Nfa::new();
        nfa.add_pattern(&re, 0);
        nfa.finish();
        let dfa = Dfa::from_nfa(&nfa);
        let min = minimize(&dfa);
        prop_assert!(min.len() <= dfa.len());
    }

    #[test]
    fn multi_pattern_priority_is_stable(input in arb_input()) {
        // keyword-style literals + identifier pattern: for any input the
        // winning tag must be the longest match, ties to the smaller tag.
        let patterns = ["ab", "abc", "[a-c]+"];
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_pattern(&parse(p).unwrap(), i);
        }
        nfa.finish();
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(nfa.simulate(&input), dfa.simulate(&input));
        if let Some((len, tag)) = dfa.simulate(&input) {
            // cross-check: no other pattern matches a longer prefix, and no
            // smaller tag matches the same length.
            for (i, p) in patterns.iter().enumerate() {
                let mut single = Nfa::new();
                single.add_pattern(&parse(p).unwrap(), 0);
                single.finish();
                if let Some((l2, _)) = single.simulate(&input) {
                    prop_assert!(l2 <= len, "pattern {i} matched longer");
                    if l2 == len {
                        prop_assert!(tag <= i, "priority violated");
                    }
                }
            }
        }
    }
}

/// Inputs mixing ASCII with multi-byte scalars, so scans cross the
/// byte-class fast path and the UTF-8 interval fallback repeatedly.
fn arb_utf8_input() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec!['a', 'b', 'c', 'x', ' ', 'é', 'λ', '中', '🦀']),
        0..12,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compiled_scanner_agrees_with_oracles(
        patterns in prop::collection::vec(arb_regex(), 1..4),
        input in arb_utf8_input(),
    ) {
        let mut ts = sqlweave_lexgen::TokenSet::new();
        for (i, p) in patterns.iter().enumerate() {
            ts.pattern(&format!("P{i}"), p).unwrap();
        }
        let scanner = ts.build().unwrap();
        let nfas = ts.build_rule_nfas().unwrap();
        let fast = scanner.scan(&input);
        let interval = scanner.scan_reference(&input);
        prop_assert_eq!(&fast, &interval, "compiled vs interval on {:?} / {:?}", patterns, input);
        let naive = scanner.scan_naive(&input, &nfas);
        prop_assert_eq!(&fast, &naive, "compiled vs naive on {:?} / {:?}", patterns, input);
        if let (Err(f), Err(i)) = (&fast, &interval) {
            prop_assert_eq!(f.to_string(), i.to_string());
        }
    }
}

#[test]
fn regex_ast_roundtrip_samples() {
    // literal helpers produce ASTs equal to their parsed spelling
    assert_eq!(parse("abc").unwrap(), Regex::literal("abc"));
}

//! The monolithic baseline SQL parser — the conventional, non-customizable
//! comparator for the `sqlweave` product line.
//!
//! Everything is hand-written and fixed: one lexer with the full reserved
//! word list ([`lexer`]) and one recursive-descent parser over the whole
//! language ([`parser`]), producing the same
//! [`sqlweave_sql_ast`] AST as the composed parsers' lowering.
//! Benchmarks compare tailored composed parsers against this baseline
//! (Experiment B2), and differential tests assert AST equality statement by
//! statement.
//!
//! ```
//! use sqlweave_baseline::parse_statement;
//!
//! let ast = parse_statement("SELECT a, b FROM t WHERE a = 1").unwrap();
//! assert!(matches!(ast, sqlweave_sql_ast::Statement::Query(_)));
//! ```

pub mod lexer;
pub mod parser;

pub use parser::{parse_script, parse_statement, BaselineError};

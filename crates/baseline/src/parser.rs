//! The monolithic recursive-descent SQL parser.
//!
//! This is the *conventional* parser the paper's approach competes with:
//! one fixed grammar, everything hard-coded, no customization. It produces
//! the same [`sqlweave_sql_ast`] AST as the composed parsers' lowering, so
//! differential tests can assert `baseline(stmt) == lower(composed(stmt))`.

use crate::lexer::{lex, Tok, TokKind};
use sqlweave_sql_ast::ast::*;
use std::fmt;

/// Parse error from the baseline parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// Byte offset (end of input if exhausted).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for BaselineError {}

/// Parse a script of `;`-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, BaselineError> {
    let toks = lex(input).map_err(|e| BaselineError { at: e.at, message: e.to_string() })?;
    let mut p = P { toks, pos: 0 };
    let mut out = vec![p.statement()?];
    while p.eat_punct(";") {
        if p.done() {
            break;
        }
        out.push(p.statement()?);
    }
    if !p.done() {
        return Err(p.err("trailing input"));
    }
    Ok(out)
}

/// Parse a single statement.
pub fn parse_statement(input: &str) -> Result<Statement, BaselineError> {
    let stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().unwrap()),
        n => Err(BaselineError { at: 0, message: format!("expected 1 statement, found {n}") }),
    }
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn err(&self, message: impl Into<String>) -> BaselineError {
        BaselineError {
            at: self.toks.get(self.pos).map_or(usize::MAX, |t| t.at),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n)
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokKind::Keyword && t.text == kw)
    }

    fn is_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), Some(t) if t.kind == TokKind::Keyword && t.text == kw)
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokKind::Punct && t.text == p)
    }

    fn is_punct_at(&self, n: usize, p: &str) -> bool {
        matches!(self.peek_at(n), Some(t) if t.kind == TokKind::Punct && t.text == p)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), BaselineError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), BaselineError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    /// Eat any of the keywords, returning the one found.
    fn eat_any_kw(&mut self, kws: &[&str]) -> Option<&'static str> {
        for &kw in kws {
            if self.is_kw(kw) {
                self.pos += 1;
                // SAFETY of lifetime: return from the static list
                return KW_INTERN.iter().copied().find(|&k| k == kw);
            }
        }
        None
    }

    fn ident(&mut self) -> Result<String, BaselineError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let s = t.text.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn number(&mut self) -> Result<String, BaselineError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Number => {
                let s = t.text.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected number")),
        }
    }

    fn string_unquoted(&mut self) -> Result<String, BaselineError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::String => {
                let inner = t.text[1..t.text.len() - 1].replace("''", "'");
                self.pos += 1;
                Ok(inner)
            }
            _ => Err(self.err("expected string literal")),
        }
    }

    fn qualified_name(&mut self) -> Result<QualifiedName, BaselineError> {
        let mut out = vec![self.ident()?];
        while self.is_punct(".") && matches!(self.peek_at(1), Some(t) if t.kind == TokKind::Ident)
        {
            self.pos += 1;
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, BaselineError> {
        let mut out = vec![self.ident()?];
        while self.eat_punct(",") {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self) -> Result<Statement, BaselineError> {
        if self.is_kw("SELECT") || self.is_kw("WITH") || self.is_punct("(") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.is_kw("INSERT") {
            return self.insert();
        }
        if self.is_kw("UPDATE") {
            return self.update();
        }
        if self.is_kw("DELETE") {
            return self.delete();
        }
        if self.is_kw("MERGE") {
            return self.merge();
        }
        if self.is_kw("CREATE") {
            return self.create();
        }
        if self.is_kw("ALTER") {
            return self.alter_table();
        }
        if self.is_kw("DROP") {
            return self.drop();
        }
        if self.is_kw("GRANT") {
            return self.grant();
        }
        if self.is_kw("REVOKE") {
            return self.revoke();
        }
        if self.is_kw("START")
            || self.is_kw("COMMIT")
            || self.is_kw("ROLLBACK")
            || self.is_kw("SAVEPOINT")
            || self.is_kw("RELEASE")
        {
            return self.transaction();
        }
        if self.is_kw("SET") {
            return self.set_statement();
        }
        if self.is_kw("DECLARE")
            || self.is_kw("OPEN")
            || self.is_kw("CLOSE")
            || self.is_kw("FETCH")
        {
            return self.cursor();
        }
        Err(self.err("expected a statement"))
    }

    // ------------------------------------------------------------ queries

    fn query(&mut self) -> Result<Query, BaselineError> {
        let (with, recursive) = if self.eat_kw("WITH") {
            let recursive = self.eat_kw("RECURSIVE");
            let mut ctes = vec![self.cte()?];
            while self.eat_punct(",") {
                ctes.push(self.cte()?);
            }
            (ctes, recursive)
        } else {
            (Vec::new(), false)
        };
        let mut body = self.query_term()?;
        loop {
            let op = if self.eat_kw("UNION") {
                SetOp::Union
            } else if self.eat_kw("EXCEPT") {
                SetOp::Except
            } else if self.eat_kw("INTERSECT") {
                SetOp::Intersect
            } else {
                break;
            };
            let quantifier = if self.eat_kw("ALL") {
                Some(SetQuantifier::All)
            } else if self.eat_kw("DISTINCT") {
                Some(SetQuantifier::Distinct)
            } else {
                None
            };
            let right = self.query_term()?;
            body = QueryBody::SetOp {
                left: Box::new(body),
                op,
                quantifier,
                right: Box::new(right),
            };
        }
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let mut items = vec![self.sort_spec()?];
            while self.eat_punct(",") {
                items.push(self.sort_spec()?);
            }
            items
        } else {
            Vec::new()
        };
        let offset = if self.eat_kw("OFFSET") {
            let n = self.number()?;
            let _ = self.eat_kw("ROW") || self.eat_kw("ROWS");
            Some(n)
        } else {
            None
        };
        let fetch = if self.eat_kw("FETCH") {
            let _ = self.eat_kw("FIRST") || self.eat_kw("NEXT");
            let n = self.number()?;
            let _ = self.eat_kw("ROW") || self.eat_kw("ROWS");
            self.expect_kw("ONLY")?;
            Some(n)
        } else {
            None
        };
        Ok(Query { with, recursive, body, order_by, offset, fetch })
    }

    fn cte(&mut self) -> Result<Cte, BaselineError> {
        let name = self.ident()?;
        let columns = if self.eat_punct("(") {
            let cols = self.ident_list()?;
            self.expect_punct(")")?;
            cols
        } else {
            Vec::new()
        };
        self.expect_kw("AS")?;
        self.expect_punct("(")?;
        let query = self.query()?;
        self.expect_punct(")")?;
        Ok(Cte { name, columns, query: Box::new(query) })
    }

    fn query_term(&mut self) -> Result<QueryBody, BaselineError> {
        if self.eat_punct("(") {
            let q = self.query()?;
            self.expect_punct(")")?;
            return Ok(QueryBody::Nested(Box::new(q)));
        }
        Ok(QueryBody::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select, BaselineError> {
        self.expect_kw("SELECT")?;
        let quantifier = if self.eat_kw("DISTINCT") {
            Some(SetQuantifier::Distinct)
        } else if self.eat_kw("ALL") {
            Some(SetQuantifier::All)
        } else {
            None
        };
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_reference()?];
        while self.eat_punct(",") {
            from.push(self.table_reference()?);
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.search_condition()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut items = vec![self.grouping_element()?];
            while self.eat_punct(",") {
                items.push(self.grouping_element()?);
            }
            items
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.search_condition()?)
        } else {
            None
        };
        let windows = if self.eat_kw("WINDOW") {
            let mut items = vec![self.window_def()?];
            while self.eat_punct(",") {
                items.push(self.window_def()?);
            }
            items
        } else {
            Vec::new()
        };
        let mut sensor = SensorClauses::default();
        if self.eat_kw("EPOCH") {
            self.expect_kw("DURATION")?;
            sensor.epoch_duration = Some(self.number()?);
        }
        if self.eat_kw("SAMPLE") {
            self.expect_kw("PERIOD")?;
            sensor.sample_period = Some(self.number()?);
        }
        if self.eat_kw("LIFETIME") {
            sensor.lifetime = Some(self.number()?);
        }
        Ok(Select {
            quantifier,
            projection,
            from,
            selection,
            group_by,
            having,
            windows,
            sensor,
        })
    }

    fn projection(&mut self) -> Result<Vec<SelectItem>, BaselineError> {
        if self.eat_punct("*") {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.eat_punct(",") {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, BaselineError> {
        // Qualified star: IDENT (. IDENT)* . *
        let save = self.pos;
        if matches!(self.peek(), Some(t) if t.kind == TokKind::Ident) {
            let mut chain = vec![self.ident()?];
            loop {
                if self.is_punct(".") && matches!(self.peek_at(1), Some(t) if t.kind == TokKind::Ident)
                {
                    self.pos += 1;
                    chain.push(self.ident()?);
                } else {
                    break;
                }
            }
            if self.is_punct(".") && self.is_punct_at(1, "*") {
                self.pos += 2;
                return Ok(SelectItem::QualifiedStar(chain));
            }
            self.pos = save;
        }
        let expr = self.value_expression()?;
        // explicit AS or a bare trailing identifier both alias
        let has_alias =
            self.eat_kw("AS") || matches!(self.peek(), Some(t) if t.kind == TokKind::Ident);
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_reference(&mut self) -> Result<TableRef, BaselineError> {
        let mut table = self.table_primary()?;
        loop {
            let (kind, condition_allowed) = if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                (JoinKind::Cross, false)
            } else if self.eat_kw("NATURAL") {
                let _ = self.eat_any_kw(&["INNER", "LEFT", "RIGHT", "FULL"]);
                let _ = self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                (JoinKind::Natural, false)
            } else if self.is_kw("JOIN")
                || self.is_kw("INNER")
                || self.is_kw("LEFT")
                || self.is_kw("RIGHT")
                || self.is_kw("FULL")
            {
                let kind = if self.eat_kw("INNER") {
                    JoinKind::Inner
                } else if self.eat_kw("LEFT") {
                    let _ = self.eat_kw("OUTER");
                    JoinKind::Left
                } else if self.eat_kw("RIGHT") {
                    let _ = self.eat_kw("OUTER");
                    JoinKind::Right
                } else if self.eat_kw("FULL") {
                    let _ = self.eat_kw("OUTER");
                    JoinKind::Full
                } else {
                    JoinKind::Inner
                };
                self.expect_kw("JOIN")?;
                (kind, true)
            } else {
                break;
            };
            let right = self.table_primary()?;
            let condition = if condition_allowed {
                if self.eat_kw("ON") {
                    JoinCondition::On(self.search_condition()?)
                } else if self.eat_kw("USING") {
                    self.expect_punct("(")?;
                    let cols = self.ident_list()?;
                    self.expect_punct(")")?;
                    JoinCondition::Using(cols)
                } else {
                    JoinCondition::None
                }
            } else {
                JoinCondition::None
            };
            table = TableRef::Join {
                left: Box::new(table),
                kind,
                right: Box::new(right),
                condition,
            };
        }
        Ok(table)
    }

    fn table_primary(&mut self) -> Result<TableRef, BaselineError> {
        if self.eat_punct("(") {
            let q = self.query()?;
            self.expect_punct(")")?;
            let alias = Some(self.correlation_required()?);
            return Ok(TableRef::Derived { query: Box::new(q), alias });
        }
        let name = self.qualified_name()?;
        let has_alias =
            self.eat_kw("AS") || matches!(self.peek(), Some(t) if t.kind == TokKind::Ident);
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef::Named { name, alias })
    }

    fn correlation_required(&mut self) -> Result<String, BaselineError> {
        let _ = self.eat_kw("AS");
        self.ident()
    }

    fn grouping_element(&mut self) -> Result<GroupingElement, BaselineError> {
        if self.eat_kw("ROLLUP") {
            self.expect_punct("(")?;
            let mut cols = vec![self.qualified_name()?];
            while self.eat_punct(",") {
                cols.push(self.qualified_name()?);
            }
            self.expect_punct(")")?;
            return Ok(GroupingElement::Rollup(cols));
        }
        if self.eat_kw("CUBE") {
            self.expect_punct("(")?;
            let mut cols = vec![self.qualified_name()?];
            while self.eat_punct(",") {
                cols.push(self.qualified_name()?);
            }
            self.expect_punct(")")?;
            return Ok(GroupingElement::Cube(cols));
        }
        if self.eat_kw("GROUPING") {
            self.expect_kw("SETS")?;
            self.expect_punct("(")?;
            let mut elems = vec![self.grouping_element()?];
            while self.eat_punct(",") {
                elems.push(self.grouping_element()?);
            }
            self.expect_punct(")")?;
            return Ok(GroupingElement::GroupingSets(elems));
        }
        Ok(GroupingElement::Column(self.qualified_name()?))
    }

    fn sort_spec(&mut self) -> Result<SortSpec, BaselineError> {
        let expr = self.value_expression()?;
        let descending = if self.eat_kw("DESC") {
            true
        } else {
            let _ = self.eat_kw("ASC");
            false
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else {
                self.expect_kw("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(SortSpec { expr, descending, nulls_first })
    }

    fn window_def(&mut self) -> Result<WindowDef, BaselineError> {
        let name = self.ident()?;
        self.expect_kw("AS")?;
        self.expect_punct("(")?;
        let (partition_by, order_by, frame) = self.window_spec()?;
        self.expect_punct(")")?;
        Ok(WindowDef { name, partition_by, order_by, frame })
    }

    /// The inside of a window specification: `[PARTITION BY …] [ORDER BY …]
    /// [frame]` (caller handles the surrounding parentheses).
    #[allow(clippy::type_complexity)]
    fn window_spec(
        &mut self,
    ) -> Result<(Vec<QualifiedName>, Vec<SortSpec>, Option<String>), BaselineError> {
        let mut partition_by = Vec::new();
        let mut order_by = Vec::new();
        let mut frame = None;
        if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            partition_by.push(self.qualified_name()?);
            while self.eat_punct(",") {
                partition_by.push(self.qualified_name()?);
            }
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.value_expression()?;
                order_by.push(SortSpec { expr, descending: false, nulls_first: None });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.is_kw("ROWS") || self.is_kw("RANGE") {
            frame = Some(self.frame_clause()?);
        }
        Ok((partition_by, order_by, frame))
    }

    /// Frame clause, reconstructed as space-joined token text (matches the
    /// lowering's `CstNode::text()` form).
    fn frame_clause(&mut self) -> Result<String, BaselineError> {
        let mut words: Vec<String> = Vec::new();
        let unit = self
            .eat_any_kw(&["ROWS", "RANGE"])
            .ok_or_else(|| self.err("expected ROWS or RANGE"))?;
        words.push(unit.to_string());
        let bound = |p: &mut P, words: &mut Vec<String>| -> Result<(), BaselineError> {
            if p.eat_kw("UNBOUNDED") {
                words.push("UNBOUNDED".into());
                let d = p
                    .eat_any_kw(&["PRECEDING", "FOLLOWING"])
                    .ok_or_else(|| p.err("expected PRECEDING/FOLLOWING"))?;
                words.push(d.to_string());
            } else if p.eat_kw("CURRENT") {
                p.expect_kw("ROW")?;
                words.push("CURRENT".into());
                words.push("ROW".into());
            } else {
                words.push(p.number()?);
                let d = p
                    .eat_any_kw(&["PRECEDING", "FOLLOWING"])
                    .ok_or_else(|| p.err("expected PRECEDING/FOLLOWING"))?;
                words.push(d.to_string());
            }
            Ok(())
        };
        if self.eat_kw("BETWEEN") {
            words.push("BETWEEN".into());
            bound(self, &mut words)?;
            self.expect_kw("AND")?;
            words.push("AND".into());
            bound(self, &mut words)?;
        } else {
            bound(self, &mut words)?;
        }
        Ok(words.join(" "))
    }

    // ------------------------------------------------------------ conditions

    fn search_condition(&mut self) -> Result<Expr, BaselineError> {
        let mut left = self.boolean_term()?;
        while self.eat_kw("OR") {
            let right = self.boolean_term()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn boolean_term(&mut self) -> Result<Expr, BaselineError> {
        let mut left = self.boolean_factor()?;
        while self.eat_kw("AND") {
            let right = self.boolean_factor()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn boolean_factor(&mut self) -> Result<Expr, BaselineError> {
        if self.eat_kw("NOT") {
            let inner = self.predicate()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, BaselineError> {
        // Mirror the composed engine's ordered attempts: standard predicate
        // first (with backtracking), then parenthesized condition, EXISTS,
        // and OVERLAPS.
        let save = self.pos;
        match self.standard_predicate() {
            Ok(e) => return Ok(e),
            Err(_) => self.pos = save,
        }
        if self.is_punct("(") {
            self.pos += 1;
            let inner = self.search_condition()?;
            self.expect_punct(")")?;
            return Ok(Expr::Nested(Box::new(inner)));
        }
        if self.eat_kw("EXISTS") {
            self.expect_punct("(")?;
            let q = self.query()?;
            self.expect_punct(")")?;
            return Ok(Expr::Exists(Box::new(q)));
        }
        // overlaps fallback
        let left = self.value_expression()?;
        self.expect_kw("OVERLAPS")?;
        let right = self.value_expression()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op: BinaryOp::Overlaps,
            right: Box::new(right),
        })
    }

    fn standard_predicate(&mut self) -> Result<Expr, BaselineError> {
        let left = self.value_expression()?;
        // comparison / quantified
        if let Some(op) = self.comp_op() {
            if let Some(q) = self.eat_any_kw(&["ALL", "ANY", "SOME"]) {
                self.expect_punct("(")?;
                let query = self.query()?;
                self.expect_punct(")")?;
                return Ok(Expr::Quantified {
                    expr: Box::new(left),
                    op,
                    quantifier: q.to_string(),
                    query: Box::new(query),
                });
            }
            let right = self.value_expression()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let low = self.value_expression()?;
            self.expect_kw("AND")?;
            let high = self.value_expression()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw("IN") {
            self.expect_punct("(")?;
            if self.is_kw("SELECT") || self.is_kw("WITH") {
                let q = self.query()?;
                self.expect_punct(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    query: Box::new(q),
                });
            }
            let mut list = vec![self.value_expression()?];
            while self.eat_punct(",") {
                list.push(self.value_expression()?);
            }
            self.expect_punct(")")?;
            return Ok(Expr::InList { expr: Box::new(left), negated, list });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.value_expression()?;
            let escape = if self.eat_kw("ESCAPE") {
                Some(Box::new(self.value_expression()?))
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
                escape,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN/IN/LIKE after NOT"));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if self.eat_kw("NULL") {
                return Ok(Expr::IsNull { expr: Box::new(left), negated });
            }
            if let Some(value) = self.eat_any_kw(&["TRUE", "FALSE", "UNKNOWN"]) {
                return Ok(Expr::IsTruthValue {
                    expr: Box::new(left),
                    negated,
                    value: value.to_string(),
                });
            }
            self.expect_kw("DISTINCT")?;
            self.expect_kw("FROM")?;
            let other = self.value_expression()?;
            return Ok(Expr::IsDistinctFrom {
                expr: Box::new(left),
                negated,
                other: Box::new(other),
            });
        }
        Err(self.err("expected a predicate tail"))
    }

    fn comp_op(&mut self) -> Option<BinaryOp> {
        let op = match self.peek() {
            Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                "=" => BinaryOp::Eq,
                "<>" => BinaryOp::Neq,
                "<=" => BinaryOp::Le,
                ">=" => BinaryOp::Ge,
                "<" => BinaryOp::Lt,
                ">" => BinaryOp::Gt,
                _ => return None,
            },
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    // ------------------------------------------------------------ expressions

    fn value_expression(&mut self) -> Result<Expr, BaselineError> {
        let mut left = self.term()?;
        loop {
            let op = if self.is_punct("+") {
                BinaryOp::Plus
            } else if self.is_punct("-") {
                BinaryOp::Minus
            } else {
                break;
            };
            self.pos += 1;
            let right = self.term()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, BaselineError> {
        let mut left = self.factor()?;
        loop {
            let op = if self.is_punct("*") {
                BinaryOp::Multiply
            } else if self.is_punct("/") {
                BinaryOp::Divide
            } else {
                break;
            };
            self.pos += 1;
            let right = self.factor()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, BaselineError> {
        let sign = if self.eat_punct("-") {
            Some(UnaryOp::Minus)
        } else if self.eat_punct("+") {
            Some(UnaryOp::Plus)
        } else {
            None
        };
        let mut expr = self.value_primary()?;
        while self.eat_punct("||") {
            let right = self.value_primary()?;
            expr = Expr::Binary {
                left: Box::new(expr),
                op: BinaryOp::Concat,
                right: Box::new(right),
            };
        }
        Ok(match sign {
            Some(op) => Expr::Unary { op, expr: Box::new(expr) },
            None => expr,
        })
    }

    fn value_primary(&mut self) -> Result<Expr, BaselineError> {
        // literals
        if let Some(t) = self.peek() {
            match t.kind {
                TokKind::Number => {
                    let n = self.number()?;
                    return Ok(Expr::Literal(Literal::Number(n)));
                }
                TokKind::String => {
                    let s = self.string_unquoted()?;
                    return Ok(Expr::Literal(Literal::String(s)));
                }
                TokKind::Ident => {
                    return Ok(Expr::Column(self.qualified_name()?));
                }
                _ => {}
            }
        }
        if self.eat_kw("TRUE") {
            return Ok(Expr::Literal(Literal::Boolean(true)));
        }
        if self.eat_kw("FALSE") {
            return Ok(Expr::Literal(Literal::Boolean(false)));
        }
        if self.eat_kw("NULL") {
            return Ok(Expr::Literal(Literal::Null));
        }
        if self.is_kw("DATE") && matches!(self.peek_at(1), Some(t) if t.kind == TokKind::String) {
            self.pos += 1;
            return Ok(Expr::Literal(Literal::Date(self.string_unquoted()?)));
        }
        if self.is_kw("TIME") && matches!(self.peek_at(1), Some(t) if t.kind == TokKind::String) {
            self.pos += 1;
            return Ok(Expr::Literal(Literal::Time(self.string_unquoted()?)));
        }
        if self.is_kw("TIMESTAMP")
            && matches!(self.peek_at(1), Some(t) if t.kind == TokKind::String)
        {
            self.pos += 1;
            return Ok(Expr::Literal(Literal::Timestamp(self.string_unquoted()?)));
        }
        if self.eat_kw("INTERVAL") {
            let negative = if self.eat_punct("-") {
                true
            } else {
                let _ = self.eat_punct("+");
                false
            };
            let value = self.string_unquoted()?;
            let qualifier = self.interval_qualifier()?;
            return Ok(Expr::Literal(Literal::Interval { negative, value, qualifier }));
        }
        if self.is_punct("(") {
            // scalar subquery vs parenthesized expression
            if self.is_kw_at(1, "SELECT") || self.is_kw_at(1, "WITH") {
                self.pos += 1;
                let q = self.query()?;
                self.expect_punct(")")?;
                return Ok(Expr::Subquery(Box::new(q)));
            }
            self.pos += 1;
            let inner = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Nested(Box::new(inner)));
        }
        if self.is_kw("CASE") {
            return self.case();
        }
        if self.eat_kw("CAST") {
            self.expect_punct("(")?;
            let expr = self.value_expression()?;
            self.expect_kw("AS")?;
            let data_type = self.data_type()?;
            self.expect_punct(")")?;
            return Ok(Expr::Cast { expr: Box::new(expr), data_type });
        }
        if self.eat_kw("NULLIF") {
            self.expect_punct("(")?;
            let a = self.value_expression()?;
            self.expect_punct(",")?;
            let b = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Function {
                name: "NULLIF".into(),
                quantifier: None,
                args: vec![a, b],
            });
        }
        if self.eat_kw("COALESCE") {
            self.expect_punct("(")?;
            let mut args = vec![self.value_expression()?];
            while self.eat_punct(",") {
                args.push(self.value_expression()?);
            }
            self.expect_punct(")")?;
            return Ok(Expr::Function { name: "COALESCE".into(), quantifier: None, args });
        }
        if self.eat_kw("SUBSTRING") {
            self.expect_punct("(")?;
            let expr = self.value_expression()?;
            self.expect_kw("FROM")?;
            let from = self.value_expression()?;
            let len = if self.eat_kw("FOR") {
                Some(Box::new(self.value_expression()?))
            } else {
                None
            };
            self.expect_punct(")")?;
            return Ok(Expr::Substring { expr: Box::new(expr), from: Box::new(from), len });
        }
        if self.eat_kw("TRIM") {
            self.expect_punct("(")?;
            let spec = self
                .eat_any_kw(&["LEADING", "TRAILING", "BOTH"])
                .map(str::to_string);
            if spec.is_some() {
                self.expect_kw("FROM")?;
            }
            let expr = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Trim { spec, expr: Box::new(expr) });
        }
        if self.eat_kw("POSITION") {
            self.expect_punct("(")?;
            let needle = self.value_expression()?;
            self.expect_kw("IN")?;
            let haystack = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Position {
                needle: Box::new(needle),
                haystack: Box::new(haystack),
            });
        }
        if self.eat_kw("EXTRACT") {
            self.expect_punct("(")?;
            let field = self
                .eat_any_kw(&["YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND"])
                .ok_or_else(|| self.err("expected datetime field"))?
                .to_string();
            self.expect_kw("FROM")?;
            let expr = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Extract { field, expr: Box::new(expr) });
        }
        if let Some(name) =
            self.eat_any_kw(&["CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"])
        {
            return Ok(Expr::Function {
                name: name.to_string(),
                quantifier: None,
                args: Vec::new(),
            });
        }
        // single-argument functions keyed by keyword
        if let Some(name) = self.eat_any_kw(&[
            "UPPER", "LOWER", "CHAR_LENGTH", "CHARACTER_LENGTH", "ABS", "FLOOR", "CEIL",
            "CEILING", "SQRT", "LN", "EXP",
        ]) {
            self.expect_punct("(")?;
            let arg = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Function {
                name: name.to_string(),
                quantifier: None,
                args: vec![arg],
            });
        }
        if let Some(name) = self.eat_any_kw(&["MOD", "POWER"]) {
            self.expect_punct("(")?;
            let a = self.value_expression()?;
            self.expect_punct(",")?;
            let b = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Function {
                name: name.to_string(),
                quantifier: None,
                args: vec![a, b],
            });
        }
        if self.eat_kw("COUNT") {
            self.expect_punct("(")?;
            if self.eat_punct("*") {
                self.expect_punct(")")?;
                return Ok(Expr::Function {
                    name: "COUNT".into(),
                    quantifier: None,
                    args: vec![Expr::Wildcard],
                });
            }
            let quantifier = self.agg_quantifier();
            let arg = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Function { name: "COUNT".into(), quantifier, args: vec![arg] });
        }
        if let Some(name) = self.eat_any_kw(&[
            "SUM", "AVG", "MIN", "MAX", "STDDEV_POP", "STDDEV_SAMP", "VAR_POP", "VAR_SAMP",
        ]) {
            self.expect_punct("(")?;
            let quantifier = self.agg_quantifier();
            let arg = self.value_expression()?;
            self.expect_punct(")")?;
            return Ok(Expr::Function {
                name: name.to_string(),
                quantifier,
                args: vec![arg],
            });
        }
        if let Some(name) = self.eat_any_kw(&["RANK", "DENSE_RANK", "ROW_NUMBER"]) {
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            self.expect_kw("OVER")?;
            self.expect_punct("(")?;
            let (partition_by, order_by, frame) = self.window_spec()?;
            self.expect_punct(")")?;
            return Ok(Expr::WindowFunction {
                name: name.to_string(),
                partition_by,
                order_by,
                frame,
            });
        }
        Err(self.err("expected a value expression"))
    }

    fn agg_quantifier(&mut self) -> Option<SetQuantifier> {
        if self.eat_kw("DISTINCT") {
            Some(SetQuantifier::Distinct)
        } else if self.eat_kw("ALL") {
            Some(SetQuantifier::All)
        } else {
            None
        }
    }

    fn case(&mut self) -> Result<Expr, BaselineError> {
        self.expect_kw("CASE")?;
        let operand = if self.is_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.value_expression()?))
        };
        let mut when_then = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = if operand.is_some() {
                self.value_expression()?
            } else {
                self.search_condition()?
            };
            self.expect_kw("THEN")?;
            let then = self.value_expression()?;
            when_then.push((cond, then));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.value_expression()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, when_then, else_expr })
    }

    fn interval_qualifier(&mut self) -> Result<String, BaselineError> {
        let first = self
            .eat_any_kw(&["YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND"])
            .ok_or_else(|| self.err("expected interval field"))?;
        let mut out = first.to_string();
        if self.eat_kw("TO") {
            let second = self
                .eat_any_kw(&["YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND"])
                .ok_or_else(|| self.err("expected interval field"))?;
            out.push_str(" TO ");
            out.push_str(second);
        }
        Ok(out)
    }

    // ------------------------------------------------------------ types

    fn data_type(&mut self) -> Result<DataType, BaselineError> {
        let scalar = self.scalar_type()?;
        if self.eat_kw("ARRAY") {
            let bound = if self.eat_punct("[") {
                let n = self.number()?;
                self.expect_punct("]")?;
                Some(n)
            } else {
                None
            };
            return Ok(DataType::Array { element: Box::new(scalar), bound });
        }
        Ok(scalar)
    }

    fn paren_len(&mut self) -> Result<Option<String>, BaselineError> {
        if self.eat_punct("(") {
            let n = self.number()?;
            self.expect_punct(")")?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    }

    fn scalar_type(&mut self) -> Result<DataType, BaselineError> {
        if self.eat_kw("CHARACTER") || self.eat_kw("CHAR") {
            let varying = self.eat_kw("VARYING");
            let length = self.paren_len()?;
            return Ok(DataType::Character { varying, length });
        }
        if self.eat_kw("VARCHAR") {
            return Ok(DataType::Varchar(self.paren_len()?));
        }
        if self.eat_kw("CLOB") {
            return Ok(DataType::Clob);
        }
        if self.eat_kw("NUMERIC") || self.eat_kw("DECIMAL") || self.eat_kw("DEC") {
            let mut precision = None;
            let mut scale = None;
            if self.eat_punct("(") {
                precision = Some(self.number()?);
                if self.eat_punct(",") {
                    scale = Some(self.number()?);
                }
                self.expect_punct(")")?;
            }
            return Ok(DataType::Decimal { precision, scale });
        }
        if self.eat_kw("SMALLINT") {
            return Ok(DataType::SmallInt);
        }
        if self.eat_kw("INTEGER") || self.eat_kw("INT") {
            return Ok(DataType::Integer);
        }
        if self.eat_kw("BIGINT") {
            return Ok(DataType::BigInt);
        }
        if self.eat_kw("FLOAT") {
            return Ok(DataType::Float(self.paren_len()?));
        }
        if self.eat_kw("REAL") {
            return Ok(DataType::Real);
        }
        if self.eat_kw("DOUBLE") {
            self.expect_kw("PRECISION")?;
            return Ok(DataType::Double);
        }
        if self.eat_kw("BOOLEAN") {
            return Ok(DataType::Boolean);
        }
        if self.eat_kw("DATE") {
            return Ok(DataType::Date);
        }
        if self.eat_kw("TIME") || self.is_kw("TIMESTAMP") {
            let is_time = !self.eat_kw("TIMESTAMP");
            let precision = self.paren_len()?;
            let with_time_zone = if self.eat_kw("WITH") {
                self.expect_kw("TIME")?;
                self.expect_kw("ZONE")?;
                Some(true)
            } else if self.eat_kw("WITHOUT") {
                self.expect_kw("TIME")?;
                self.expect_kw("ZONE")?;
                Some(false)
            } else {
                None
            };
            return Ok(if is_time {
                DataType::Time { precision, with_time_zone }
            } else {
                DataType::Timestamp { precision, with_time_zone }
            });
        }
        if self.eat_kw("INTERVAL") {
            return Ok(DataType::Interval(self.interval_qualifier()?));
        }
        if self.eat_kw("BLOB") {
            return Ok(DataType::Blob);
        }
        if self.eat_kw("BINARY") {
            let varying = self.eat_kw("VARYING");
            let length = self.paren_len()?;
            return Ok(DataType::Binary { varying, length });
        }
        Err(self.err("expected a data type"))
    }

    // ------------------------------------------------------------ DML

    fn insert(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.qualified_name()?;
        let columns = if self.is_punct("(") {
            self.pos += 1;
            let cols = self.ident_list()?;
            self.expect_punct(")")?;
            cols
        } else {
            Vec::new()
        };
        let source = if self.is_kw("DEFAULT") && self.is_kw_at(1, "VALUES") {
            self.pos += 2;
            InsertSource::DefaultValues
        } else if self.eat_kw("VALUES") {
            let mut rows = vec![self.row_constructor()?];
            while self.eat_punct(",") {
                rows.push(self.row_constructor()?);
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.query()?))
        };
        Ok(Statement::Insert(Insert { table, columns, source }))
    }

    fn row_constructor(&mut self) -> Result<Vec<Expr>, BaselineError> {
        self.expect_punct("(")?;
        let mut row = vec![self.insert_value()?];
        while self.eat_punct(",") {
            row.push(self.insert_value()?);
        }
        self.expect_punct(")")?;
        Ok(row)
    }

    fn insert_value(&mut self) -> Result<Expr, BaselineError> {
        if self.eat_kw("DEFAULT") {
            Ok(Expr::Default)
        } else {
            self.value_expression()
        }
    }

    fn assignments(&mut self) -> Result<Vec<(String, Expr)>, BaselineError> {
        let mut out = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            let value = if self.eat_kw("DEFAULT") {
                Expr::Default
            } else {
                self.value_expression()?
            };
            out.push((col, value));
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(out)
    }

    fn where_selection(&mut self) -> Result<Option<UpdateSelection>, BaselineError> {
        if !self.eat_kw("WHERE") {
            return Ok(None);
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("OF")?;
            return Ok(Some(UpdateSelection::CurrentOf(self.ident()?)));
        }
        Ok(Some(UpdateSelection::Searched(self.search_condition()?)))
    }

    fn update(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("UPDATE")?;
        let table = self.qualified_name()?;
        self.expect_kw("SET")?;
        let assignments = self.assignments()?;
        let selection = self.where_selection()?;
        Ok(Statement::Update(Update { table, assignments, selection }))
    }

    fn delete(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.qualified_name()?;
        let selection = self.where_selection()?;
        Ok(Statement::Delete(Delete { table, selection }))
    }

    fn merge(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("MERGE")?;
        self.expect_kw("INTO")?;
        let target = self.qualified_name()?;
        self.expect_kw("USING")?;
        let source = self.qualified_name()?;
        self.expect_kw("ON")?;
        let on = self.search_condition()?;
        let mut when = Vec::new();
        while self.eat_kw("WHEN") {
            if self.eat_kw("MATCHED") {
                self.expect_kw("THEN")?;
                self.expect_kw("UPDATE")?;
                self.expect_kw("SET")?;
                when.push(MergeWhen::MatchedUpdate(self.assignments()?));
            } else {
                self.expect_kw("NOT")?;
                self.expect_kw("MATCHED")?;
                self.expect_kw("THEN")?;
                self.expect_kw("INSERT")?;
                let columns = if self.is_punct("(") {
                    self.pos += 1;
                    let cols = self.ident_list()?;
                    self.expect_punct(")")?;
                    cols
                } else {
                    Vec::new()
                };
                self.expect_kw("VALUES")?;
                let values = self.row_constructor()?;
                when.push(MergeWhen::NotMatchedInsert { columns, values });
            }
        }
        Ok(Statement::Merge(Merge { target, source, on, when }))
    }

    // ------------------------------------------------------------ DDL

    fn create(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("CREATE")?;
        let temporary = if self.eat_kw("GLOBAL") {
            self.expect_kw("TEMPORARY")?;
            Some(TableScope::Global)
        } else if self.eat_kw("LOCAL") {
            self.expect_kw("TEMPORARY")?;
            Some(TableScope::Local)
        } else {
            None
        };
        if self.eat_kw("TABLE") {
            return self.create_table(temporary);
        }
        if temporary.is_some() {
            return Err(self.err("expected TABLE after TEMPORARY"));
        }
        let recursive = self.eat_kw("RECURSIVE");
        if self.eat_kw("VIEW") {
            return self.create_view(recursive);
        }
        if recursive {
            return Err(self.err("expected VIEW after RECURSIVE"));
        }
        if self.eat_kw("SCHEMA") {
            let name = self.ident()?;
            let authorization = if self.eat_kw("AUTHORIZATION") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::CreateSchema { name, authorization });
        }
        if self.eat_kw("DOMAIN") {
            let name = self.ident()?;
            let _ = self.eat_kw("AS");
            let data_type = self.data_type()?;
            let default = if self.eat_kw("DEFAULT") {
                Some(self.literal()?)
            } else {
                None
            };
            let check = if self.eat_kw("CHECK") {
                self.expect_punct("(")?;
                let e = self.search_condition()?;
                self.expect_punct(")")?;
                Some(e)
            } else {
                None
            };
            return Ok(Statement::CreateDomain { name, data_type, default, check });
        }
        Err(self.err("expected TABLE/VIEW/SCHEMA/DOMAIN after CREATE"))
    }

    fn literal(&mut self) -> Result<Literal, BaselineError> {
        if let Some(t) = self.peek() {
            match t.kind {
                TokKind::Number => return Ok(Literal::Number(self.number()?)),
                TokKind::String => return Ok(Literal::String(self.string_unquoted()?)),
                _ => {}
            }
        }
        if self.eat_kw("TRUE") {
            return Ok(Literal::Boolean(true));
        }
        if self.eat_kw("FALSE") {
            return Ok(Literal::Boolean(false));
        }
        if self.eat_kw("NULL") {
            return Ok(Literal::Null);
        }
        if self.eat_kw("DATE") {
            return Ok(Literal::Date(self.string_unquoted()?));
        }
        if self.eat_kw("TIME") {
            return Ok(Literal::Time(self.string_unquoted()?));
        }
        if self.eat_kw("TIMESTAMP") {
            return Ok(Literal::Timestamp(self.string_unquoted()?));
        }
        if self.eat_kw("INTERVAL") {
            let negative = if self.eat_punct("-") {
                true
            } else {
                let _ = self.eat_punct("+");
                false
            };
            let value = self.string_unquoted()?;
            let qualifier = self.interval_qualifier()?;
            return Ok(Literal::Interval { negative, value, qualifier });
        }
        Err(self.err("expected a literal"))
    }

    fn create_table(&mut self, temporary: Option<TableScope>) -> Result<Statement, BaselineError> {
        let name = self.qualified_name()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.is_kw("CONSTRAINT")
                || self.is_kw("PRIMARY")
                || self.is_kw("UNIQUE")
                || self.is_kw("FOREIGN")
                || self.is_kw("CHECK")
            {
                constraints.push(self.table_constraint()?);
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(Statement::CreateTable(CreateTable { name, temporary, columns, constraints }))
    }

    fn column_def(&mut self) -> Result<ColumnDef, BaselineError> {
        let name = self.ident()?;
        let data_type = self.data_type()?;
        let default = if self.eat_kw("DEFAULT") {
            Some(self.literal()?)
        } else {
            None
        };
        let identity = if self.eat_kw("GENERATED") {
            self.expect_kw("ALWAYS")?;
            self.expect_kw("AS")?;
            self.expect_kw("IDENTITY")?;
            true
        } else {
            false
        };
        let mut constraints = Vec::new();
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                constraints.push(ColumnConstraint::NotNull);
            } else if self.eat_kw("UNIQUE") {
                constraints.push(ColumnConstraint::Unique);
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                constraints.push(ColumnConstraint::PrimaryKey);
            } else if self.eat_kw("CHECK") {
                self.expect_punct("(")?;
                let e = self.search_condition()?;
                self.expect_punct(")")?;
                constraints.push(ColumnConstraint::Check(e));
            } else if self.eat_kw("REFERENCES") {
                let table = self.qualified_name()?;
                let columns = if self.eat_punct("(") {
                    let cols = self.ident_list()?;
                    self.expect_punct(")")?;
                    cols
                } else {
                    Vec::new()
                };
                constraints.push(ColumnConstraint::References { table, columns });
            } else {
                break;
            }
        }
        Ok(ColumnDef { name, data_type, default, identity, constraints })
    }

    fn table_constraint(&mut self) -> Result<TableConstraint, BaselineError> {
        let name = if self.eat_kw("CONSTRAINT") {
            Some(self.ident()?)
        } else {
            None
        };
        let body = if self.eat_kw("PRIMARY") {
            self.expect_kw("KEY")?;
            self.expect_punct("(")?;
            let cols = self.ident_list()?;
            self.expect_punct(")")?;
            TableConstraintBody::PrimaryKey(cols)
        } else if self.eat_kw("UNIQUE") {
            self.expect_punct("(")?;
            let cols = self.ident_list()?;
            self.expect_punct(")")?;
            TableConstraintBody::Unique(cols)
        } else if self.eat_kw("FOREIGN") {
            self.expect_kw("KEY")?;
            self.expect_punct("(")?;
            let columns = self.ident_list()?;
            self.expect_punct(")")?;
            self.expect_kw("REFERENCES")?;
            let table = self.qualified_name()?;
            let ref_columns = if self.eat_punct("(") {
                let cols = self.ident_list()?;
                self.expect_punct(")")?;
                cols
            } else {
                Vec::new()
            };
            let mut on_delete = None;
            let mut on_update = None;
            while self.eat_kw("ON") {
                let is_delete = self.eat_kw("DELETE");
                if !is_delete {
                    self.expect_kw("UPDATE")?;
                }
                let action = self.referential_action()?;
                if is_delete {
                    on_delete = Some(action);
                } else {
                    on_update = Some(action);
                }
            }
            TableConstraintBody::ForeignKey { columns, table, ref_columns, on_delete, on_update }
        } else {
            self.expect_kw("CHECK")?;
            self.expect_punct("(")?;
            let e = self.search_condition()?;
            self.expect_punct(")")?;
            TableConstraintBody::Check(e)
        };
        Ok(TableConstraint { name, body })
    }

    fn referential_action(&mut self) -> Result<String, BaselineError> {
        if self.eat_kw("CASCADE") {
            return Ok("CASCADE".into());
        }
        if self.eat_kw("RESTRICT") {
            return Ok("RESTRICT".into());
        }
        if self.eat_kw("SET") {
            if self.eat_kw("NULL") {
                return Ok("SET NULL".into());
            }
            self.expect_kw("DEFAULT")?;
            return Ok("SET DEFAULT".into());
        }
        self.expect_kw("NO")?;
        self.expect_kw("ACTION")?;
        Ok("NO ACTION".into())
    }

    fn create_view(&mut self, recursive: bool) -> Result<Statement, BaselineError> {
        let name = self.qualified_name()?;
        let columns = if self.eat_punct("(") {
            let cols = self.ident_list()?;
            self.expect_punct(")")?;
            cols
        } else {
            Vec::new()
        };
        self.expect_kw("AS")?;
        let query = self.query()?;
        let with_check_option = if self.eat_kw("WITH") {
            self.expect_kw("CHECK")?;
            self.expect_kw("OPTION")?;
            true
        } else {
            false
        };
        Ok(Statement::CreateView(CreateView {
            name,
            recursive,
            columns,
            query: Box::new(query),
            with_check_option,
        }))
    }

    fn alter_table(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("ALTER")?;
        self.expect_kw("TABLE")?;
        let name = self.qualified_name()?;
        let action = if self.eat_kw("ADD") {
            if self.is_kw("CONSTRAINT")
                || self.is_kw("PRIMARY")
                || self.is_kw("UNIQUE")
                || self.is_kw("FOREIGN")
                || self.is_kw("CHECK")
            {
                AlterAction::AddConstraint(self.table_constraint()?)
            } else {
                let _ = self.eat_kw("COLUMN");
                AlterAction::AddColumn(self.column_def()?)
            }
        } else if self.eat_kw("DROP") {
            if self.eat_kw("CONSTRAINT") {
                let cname = self.ident()?;
                AlterAction::DropConstraint { name: cname, behavior: self.drop_behavior() }
            } else {
                let _ = self.eat_kw("COLUMN");
                let cname = self.ident()?;
                AlterAction::DropColumn { name: cname, behavior: self.drop_behavior() }
            }
        } else {
            self.expect_kw("ALTER")?;
            let _ = self.eat_kw("COLUMN");
            let cname = self.ident()?;
            if self.eat_kw("SET") {
                self.expect_kw("DEFAULT")?;
                AlterAction::SetDefault { name: cname, default: self.literal()? }
            } else {
                self.expect_kw("DROP")?;
                self.expect_kw("DEFAULT")?;
                AlterAction::DropDefault { name: cname }
            }
        };
        Ok(Statement::AlterTable { name, action })
    }

    fn drop_behavior(&mut self) -> Option<DropBehavior> {
        if self.eat_kw("CASCADE") {
            Some(DropBehavior::Cascade)
        } else if self.eat_kw("RESTRICT") {
            Some(DropBehavior::Restrict)
        } else {
            None
        }
    }

    fn drop(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("DROP")?;
        let kind = if self.eat_kw("TABLE") {
            ObjectKind::Table
        } else if self.eat_kw("VIEW") {
            ObjectKind::View
        } else if self.eat_kw("SCHEMA") {
            ObjectKind::Schema
        } else {
            self.expect_kw("DOMAIN")?;
            ObjectKind::Domain
        };
        let name = self.qualified_name()?;
        Ok(Statement::Drop { kind, name, behavior: self.drop_behavior() })
    }

    // ------------------------------------------------------------ DCL / TCL

    fn privileges(&mut self) -> Result<Privileges, BaselineError> {
        if self.eat_kw("ALL") {
            self.expect_kw("PRIVILEGES")?;
            return Ok(Privileges::All);
        }
        let mut actions = Vec::new();
        loop {
            let a = self
                .eat_any_kw(&[
                    "SELECT", "INSERT", "UPDATE", "DELETE", "REFERENCES", "USAGE", "TRIGGER",
                ])
                .ok_or_else(|| self.err("expected a privilege"))?;
            actions.push(a.to_string());
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Privileges::Actions(actions))
    }

    fn object_name(&mut self) -> Result<QualifiedName, BaselineError> {
        let _ = self.eat_kw("TABLE");
        self.qualified_name()
    }

    fn grantees(&mut self) -> Result<Vec<String>, BaselineError> {
        let mut out = Vec::new();
        loop {
            if self.eat_kw("PUBLIC") {
                out.push("PUBLIC".to_string());
            } else {
                out.push(self.ident()?);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(out)
    }

    fn grant(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("GRANT")?;
        let privileges = self.privileges()?;
        self.expect_kw("ON")?;
        let object = self.object_name()?;
        self.expect_kw("TO")?;
        let grantees = self.grantees()?;
        let grant_option = if self.eat_kw("WITH") {
            self.expect_kw("GRANT")?;
            self.expect_kw("OPTION")?;
            true
        } else {
            false
        };
        Ok(Statement::Grant(Grant {
            privileges,
            object,
            grantees,
            grant_option,
            behavior: None,
        }))
    }

    fn revoke(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("REVOKE")?;
        let grant_option = if self.eat_kw("GRANT") {
            self.expect_kw("OPTION")?;
            self.expect_kw("FOR")?;
            true
        } else {
            false
        };
        let privileges = self.privileges()?;
        self.expect_kw("ON")?;
        let object = self.object_name()?;
        self.expect_kw("FROM")?;
        let grantees = self.grantees()?;
        let behavior = self.drop_behavior();
        Ok(Statement::Revoke(Grant {
            privileges,
            object,
            grantees,
            grant_option,
            behavior,
        }))
    }

    fn transaction_mode(&mut self) -> Result<String, BaselineError> {
        if self.eat_kw("READ") {
            if self.eat_kw("ONLY") {
                return Ok("READ ONLY".into());
            }
            self.expect_kw("WRITE")?;
            return Ok("READ WRITE".into());
        }
        self.expect_kw("ISOLATION")?;
        self.expect_kw("LEVEL")?;
        if self.eat_kw("READ") {
            if self.eat_kw("UNCOMMITTED") {
                return Ok("ISOLATION LEVEL READ UNCOMMITTED".into());
            }
            self.expect_kw("COMMITTED")?;
            return Ok("ISOLATION LEVEL READ COMMITTED".into());
        }
        if self.eat_kw("REPEATABLE") {
            self.expect_kw("READ")?;
            return Ok("ISOLATION LEVEL REPEATABLE READ".into());
        }
        self.expect_kw("SERIALIZABLE")?;
        Ok("ISOLATION LEVEL SERIALIZABLE".into())
    }

    fn transaction_modes(&mut self) -> Result<Vec<String>, BaselineError> {
        let mut out = vec![self.transaction_mode()?];
        while self.eat_punct(",") {
            out.push(self.transaction_mode()?);
        }
        Ok(out)
    }

    fn transaction(&mut self) -> Result<Statement, BaselineError> {
        if self.eat_kw("START") {
            self.expect_kw("TRANSACTION")?;
            let modes = if self.is_kw("READ") || self.is_kw("ISOLATION") {
                self.transaction_modes()?
            } else {
                Vec::new()
            };
            return Ok(Statement::Transaction(TransactionStatement::Start(modes)));
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("WORK");
            return Ok(Statement::Transaction(TransactionStatement::Commit));
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("WORK");
            if self.eat_kw("TO") {
                let _ = self.eat_kw("SAVEPOINT");
                let name = self.ident()?;
                return Ok(Statement::Transaction(TransactionStatement::RollbackTo(name)));
            }
            return Ok(Statement::Transaction(TransactionStatement::Rollback));
        }
        if self.eat_kw("SAVEPOINT") {
            let name = self.ident()?;
            return Ok(Statement::Transaction(TransactionStatement::Savepoint(name)));
        }
        self.expect_kw("RELEASE")?;
        self.expect_kw("SAVEPOINT")?;
        let name = self.ident()?;
        Ok(Statement::Transaction(TransactionStatement::Release(name)))
    }

    fn set_statement(&mut self) -> Result<Statement, BaselineError> {
        self.expect_kw("SET")?;
        if self.eat_kw("SCHEMA") {
            let v = self.ident_or_string()?;
            return Ok(Statement::Session(SessionStatement::SetSchema(v)));
        }
        if self.eat_kw("ROLE") {
            let v = if self.eat_kw("NONE") {
                "NONE".to_string()
            } else {
                self.ident_or_string()?
            };
            return Ok(Statement::Session(SessionStatement::SetRole(v)));
        }
        if self.eat_kw("SESSION") {
            self.expect_kw("AUTHORIZATION")?;
            let v = self.ident_or_string()?;
            return Ok(Statement::Session(SessionStatement::SetSessionAuthorization(v)));
        }
        if self.eat_kw("TIME") {
            self.expect_kw("ZONE")?;
            let v = if self.eat_kw("LOCAL") {
                "LOCAL".to_string()
            } else {
                format!("'{}'", self.string_unquoted()?.replace('\'', "''"))
            };
            return Ok(Statement::Session(SessionStatement::SetTimeZone(v)));
        }
        let local = self.eat_kw("LOCAL");
        self.expect_kw("TRANSACTION")?;
        let modes = self.transaction_modes()?;
        Ok(Statement::Transaction(TransactionStatement::SetTransaction { local, modes }))
    }

    fn ident_or_string(&mut self) -> Result<String, BaselineError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::String => {
                let raw = t.text.clone();
                self.pos += 1;
                Ok(raw)
            }
            _ => self.ident(),
        }
    }

    // ------------------------------------------------------------ cursors

    fn cursor(&mut self) -> Result<Statement, BaselineError> {
        if self.eat_kw("DECLARE") {
            let name = self.ident()?;
            let sensitivity = self
                .eat_any_kw(&["SENSITIVE", "INSENSITIVE", "ASENSITIVE"])
                .map(str::to_string);
            let scroll = if self.eat_kw("NO") {
                self.expect_kw("SCROLL")?;
                Some(false)
            } else if self.eat_kw("SCROLL") {
                Some(true)
            } else {
                None
            };
            self.expect_kw("CURSOR")?;
            let hold = if self.eat_kw("WITH") {
                self.expect_kw("HOLD")?;
                Some(true)
            } else if self.eat_kw("WITHOUT") {
                self.expect_kw("HOLD")?;
                Some(false)
            } else {
                None
            };
            self.expect_kw("FOR")?;
            let query = self.query()?;
            return Ok(Statement::Cursor(CursorStatement::Declare {
                name,
                sensitivity,
                scroll,
                hold,
                query: Box::new(query),
            }));
        }
        if self.eat_kw("OPEN") {
            return Ok(Statement::Cursor(CursorStatement::Open(self.ident()?)));
        }
        if self.eat_kw("CLOSE") {
            return Ok(Statement::Cursor(CursorStatement::Close(self.ident()?)));
        }
        self.expect_kw("FETCH")?;
        let orientation = if let Some(o) = self.eat_any_kw(&["NEXT", "PRIOR", "FIRST", "LAST"]) {
            Some(o.to_string())
        } else if let Some(o) = self.eat_any_kw(&["ABSOLUTE", "RELATIVE"]) {
            Some(format!("{o} {}", self.number()?))
        } else {
            None
        };
        let _ = self.eat_kw("FROM");
        let name = self.ident()?;
        Ok(Statement::Cursor(CursorStatement::Fetch { orientation, name }))
    }
}

/// Interned keyword strings returned by `eat_any_kw`.
const KW_INTERN: &[&str] = &[
    "RANK", "DENSE_RANK", "ROW_NUMBER", "TRUE", "FALSE", "UNKNOWN", "LN", "EXP",
    "STDDEV_POP", "STDDEV_SAMP", "VAR_POP", "VAR_SAMP",
    "ROWS", "RANGE", "PRECEDING", "FOLLOWING", "ALL", "ANY", "SOME", "LEADING", "TRAILING",
    "BOTH", "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND", "CURRENT_DATE", "CURRENT_TIME",
    "CURRENT_TIMESTAMP", "UPPER", "LOWER", "CHAR_LENGTH", "CHARACTER_LENGTH", "ABS", "FLOOR",
    "CEIL", "CEILING", "SQRT", "MOD", "POWER", "SUM", "AVG", "MIN", "MAX", "SELECT", "INSERT",
    "UPDATE", "DELETE", "REFERENCES", "USAGE", "TRIGGER", "SENSITIVE", "INSENSITIVE",
    "ASENSITIVE", "NEXT", "PRIOR", "FIRST", "LAST", "ABSOLUTE", "RELATIVE", "INNER", "LEFT",
    "RIGHT", "FULL",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_statements() {
        for sql in [
            "SELECT a FROM t",
            "SELECT DISTINCT a, b AS x FROM t, u WHERE a = b AND b > 2",
            "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
            "INSERT INTO t (a) VALUES (1), (2)",
            "UPDATE t SET a = 1 WHERE b = 2",
            "DELETE FROM t",
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10) NOT NULL)",
            "DROP VIEW v CASCADE",
            "GRANT ALL PRIVILEGES ON t TO PUBLIC",
            "START TRANSACTION READ ONLY",
            "SET TIME ZONE LOCAL",
            "DECLARE c SCROLL CURSOR FOR SELECT a FROM t",
        ] {
            parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM t trailing garbage ,").is_err());
        assert!(parse_statement("FOO BAR").is_err());
    }

    #[test]
    fn script_parses_multiple() {
        let stmts = parse_script("SELECT a FROM t; COMMIT;").unwrap();
        assert_eq!(stmts.len(), 2);
    }
}

//! Hand-written SQL lexer for the monolithic baseline parser.

use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// Token kinds of the baseline lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// A reserved word (text is uppercased).
    Keyword,
    /// A regular identifier.
    Ident,
    /// Numeric literal.
    Number,
    /// Character string literal (quotes included, as written).
    String,
    /// Operator or punctuation.
    Punct,
}

/// One token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Kind.
    pub kind: TokKind,
    /// Normalized text: keywords uppercased, puncts as written.
    pub text: String,
    /// Byte offset of the token start.
    pub at: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineLexError {
    /// Byte offset.
    pub at: usize,
    /// Offending character.
    pub found: char,
}

impl fmt::Display for BaselineLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline lexer: unexpected {:?} at byte {}", self.found, self.at)
    }
}

impl std::error::Error for BaselineLexError {}

/// Every reserved word of the full product-line grammar. An identifier that
/// matches (case-insensitively) lexes as [`TokKind::Keyword`], mirroring the
/// composed full parser's keyword set.
pub fn keywords() -> &'static HashSet<&'static str> {
    static KEYWORDS: OnceLock<HashSet<&'static str>> = OnceLock::new();
    KEYWORDS.get_or_init(|| {
        [
            "ABS", "ABSOLUTE", "ACTION", "ADD", "ALL", "ALTER", "ALWAYS", "AND", "ANY", "ARRAY", "AS",
            "ASC", "ASENSITIVE", "AUTHORIZATION", "AVG", "BETWEEN", "BIGINT", "BINARY", "BLOB",
            "BOOLEAN", "BOTH", "BY", "CASCADE", "CASE", "CAST", "CEIL", "CEILING", "CHAR",
            "CHARACTER", "CHARACTER_LENGTH", "CHAR_LENGTH", "CHECK", "CLOB", "CLOSE", "COALESCE",
            "COLUMN", "COMMIT", "COMMITTED", "CONSTRAINT", "COUNT", "CREATE", "CROSS", "CUBE",
            "CURRENT", "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP", "CURSOR", "DATE",
            "DAY", "DEC", "DECIMAL", "DECLARE", "DEFAULT", "DELETE", "DESC", "DISTINCT",
            "DENSE_RANK", "DOMAIN", "DOUBLE", "DROP", "DURATION", "ELSE", "END", "EPOCH", "ESCAPE", "EXCEPT",
            "EXISTS", "EXP", "EXTRACT", "FALSE", "FETCH", "FIRST", "FLOAT", "FLOOR", "FOLLOWING",
            "FOR", "FOREIGN", "FROM", "FULL", "GENERATED", "GLOBAL", "GRANT", "GROUP", "GROUPING", "HAVING",
            "HOLD", "HOUR", "IN", "INNER", "INSENSITIVE", "INSERT", "INT", "INTEGER",
            "INTERSECT", "INTERVAL", "INTO", "IS", "ISOLATION", "JOIN", "KEY", "LAST",
            "LEADING", "LN", "LEFT", "LEVEL", "LIFETIME", "LIKE", "LOCAL", "LOWER", "MATCHED", "MAX",
            "MERGE", "MIN", "MINUTE", "MOD", "MONTH", "NATURAL", "NEXT", "NO", "NONE", "NOT",
            "NULL", "NULLIF", "NULLS", "NUMERIC", "OF", "OFFSET", "ON", "ONLY", "OPEN",
            "IDENTITY", "OPTION", "OR", "ORDER", "OUTER", "OVER", "OVERLAPS", "PARTITION", "PERIOD", "POSITION",
            "POWER", "PRECEDING", "PRECISION", "PRIMARY", "PRIOR", "PRIVILEGES", "PUBLIC",
            "RANGE", "RANK", "READ", "REAL", "RECURSIVE", "REFERENCES", "RELATIVE", "RELEASE",
            "REPEATABLE", "RESTRICT", "REVOKE", "RIGHT", "ROLE", "ROLLBACK", "ROLLUP", "ROW",
            "ROWS", "ROW_NUMBER", "SAMPLE", "SAVEPOINT", "SCHEMA", "SCROLL", "SECOND", "SELECT", "SENSITIVE",
            "SERIALIZABLE", "SESSION", "SET", "SETS", "SMALLINT", "SOME", "SQRT", "START", "STDDEV_POP", "STDDEV_SAMP",
            "SUBSTRING", "SUM", "TABLE", "TEMPORARY", "THEN", "TIME", "TIMESTAMP", "TO",
            "TRAILING", "TRANSACTION", "TRIGGER", "TRIM", "TRUE", "UNBOUNDED", "UNCOMMITTED",
            "UNION", "UNIQUE", "UNKNOWN", "UPDATE", "UPPER", "VAR_POP", "VAR_SAMP", "USAGE", "USING", "VALUES", "VARCHAR",
            "VARYING", "VIEW", "WHEN", "WHERE", "WINDOW", "WITH", "WITHOUT", "WORK", "WRITE",
            "YEAR", "ZONE",
        ]
        .into_iter()
        .collect()
    })
}

/// Scan the input.
pub fn lex(input: &str) -> Result<Vec<Tok>, BaselineLexError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &input[start..i];
            let upper = word.to_ascii_uppercase();
            if keywords().contains(upper.as_str()) {
                toks.push(Tok { kind: TokKind::Keyword, text: upper, at: start });
            } else {
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: word.to_string(),
                    at: start,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i + 1 < bytes.len()
                && bytes[i] == b'.'
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: input[start..i].to_string(),
                at: start,
            });
            continue;
        }
        if c == '\'' {
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(BaselineLexError { at: start, found: '\'' });
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::String,
                text: input[start..i].to_string(),
                at: start,
            });
            continue;
        }
        // multi-char operators first
        for op in ["<>", "<=", ">=", "||"] {
            if input[i..].starts_with(op) {
                toks.push(Tok { kind: TokKind::Punct, text: op.to_string(), at: start });
                i += 2;
                break;
            }
        }
        if i != start {
            continue;
        }
        if "+-*/=<>(),.;[]".contains(c) {
            toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), at: start });
            i += 1;
            continue;
        }
        return Err(BaselineLexError { at: start, found: c });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        lex(input).unwrap().into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn keywords_uppercase_identifiers_preserved() {
        assert_eq!(texts("select Name from T"), ["SELECT", "Name", "FROM", "T"]);
    }

    #[test]
    fn numbers() {
        assert_eq!(texts("1 2.5 3e10 4.5E-2"), ["1", "2.5", "3e10", "4.5E-2"]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(texts("'a' 'it''s'"), ["'a'", "'it''s'"]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(texts("<=<>=||"), ["<=", "<>", "=", "||"]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            texts("a -- comment\nb /* block */ c"),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("a # b").is_err());
    }
}

//! Four-substrate lexing differential suite.
//!
//! The scanner carries four implementations of the same tokenization
//! contract, from hottest to slowest:
//!
//! 1. `scan` — the vectorized run-skipping path (chunked classification +
//!    keyword perfect-hash, [`sqlweave_lexgen::vector`]),
//! 2. `scan_compiled` — the per-byte compiled byte-class tables,
//! 3. `scan_reference` — the per-character interval-DFA walker,
//! 4. `scan_naive` — per-rule NFA simulation.
//!
//! Every test here asserts they produce **identical** output — the same
//! token stream (kinds and byte spans) on success and the same `LexError`
//! (offset, line, column, offending char) on failure — across all six
//! dialects. The vectorized path additionally must agree with itself when
//! the chunked classifier is pinned to the portable SWAR level, so the
//! SIMD and portable classifiers cannot drift apart.

use proptest::prelude::*;
use sqlweave_bench::{composed, corpus, generated, parser};
use sqlweave_dialects::Dialect;
use sqlweave_lexgen::{Scanner, SimdLevel};
use sqlweave_parser_rt::engine::EngineMode;

fn scanner(d: Dialect) -> &'static Scanner {
    parser(d, EngineMode::Backtracking).scanner()
}

/// Assert the three automaton substrates and the forced-SWAR vector path
/// agree exactly on `input` (tokens and errors alike).
fn assert_fast_substrates_agree(d: Dialect, input: &str) {
    let s = scanner(d);
    let vector = s.scan(input);
    let compiled = s.scan_compiled(input);
    let reference = s.scan_reference(input);
    assert_eq!(vector, compiled, "{}: vector vs compiled on {input:?}", d.name());
    assert_eq!(vector, reference, "{}: vector vs reference on {input:?}", d.name());
    let swar = s
        .scan_with_simd(SimdLevel::Swar, input)
        .expect("SWAR is always available");
    assert_eq!(vector, swar, "{}: detected-level vs SWAR on {input:?}", d.name());
}

/// [`assert_fast_substrates_agree`] plus the NFA-simulation oracle (much
/// slower — callers keep these inputs small).
fn assert_all_substrates_agree(d: Dialect, input: &str) {
    assert_fast_substrates_agree(d, input);
    let s = scanner(d);
    let nfas = composed(d)
        .tokens
        .build_rule_nfas()
        .unwrap_or_else(|e| panic!("rule NFAs {}: {e}", d.name()));
    assert_eq!(
        s.scan(input),
        s.scan_naive(input, &nfas),
        "{}: vector vs naive on {input:?}",
        d.name()
    );
}

#[test]
fn substrates_agree_on_curated_corpus() {
    for d in Dialect::ALL {
        for stmt in corpus(d) {
            assert_all_substrates_agree(d, stmt);
        }
    }
}

#[test]
fn substrates_agree_on_generated_corpus() {
    for d in Dialect::ALL {
        // The big-corpus factory itself (wrapped multi-line statements,
        // comment lines, long identifiers) on the three fast substrates…
        let script = sqlweave_bench::corpus::generate_script(d, 0xD1FF, 64 * 1024);
        assert_fast_substrates_agree(d, &script);
        // …and grammar-sampled single statements on all four.
        for stmt in generated(d, 42, 24, 8) {
            assert_all_substrates_agree(d, &stmt);
        }
    }
}

#[test]
fn substrates_agree_on_chunk_boundary_straddles() {
    // Tokens sized to straddle the 8-byte SWAR and 16-byte SIMD chunk
    // boundaries in every alignment: identifiers and string literals of
    // lengths around 8, 16, and 64, preceded by 0–3 pad bytes.
    for d in Dialect::ALL {
        for pad in 0..4usize {
            for n in [1, 6, 7, 8, 9, 14, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127] {
                let ident = format!("{}x{} y", " ".repeat(pad), "a".repeat(n));
                assert_fast_substrates_agree(d, &ident);
                let string = format!("{}'{}' z", " ".repeat(pad), "s".repeat(n));
                assert_fast_substrates_agree(d, &string);
                let number = format!("{}{} w", " ".repeat(pad), "7".repeat(n));
                assert_fast_substrates_agree(d, &number);
            }
        }
    }
}

#[test]
fn substrates_agree_on_utf8_inputs() {
    // Multi-byte scalars at token starts, inside string interiors, and
    // adjacent to run boundaries — the cases that force the vectorized
    // path through its interval-DFA fallback.
    let inputs = [
        "select 'héllo wörld' from t",
        "'日本語のテキスト'",
        "a 'é' b 'ab\u{0301}cd' c",
        "x'café'",
        "-- commentaire: déjà vu\nselect 1",
        "id\u{00e9}",       // non-ASCII directly after an identifier run
        "   \u{3000}   ",   // ideographic space is NOT whitespace in any dialect
        "'unterminated \u{4e2d}",
        "\u{feff}select 1", // BOM at start
    ];
    for d in Dialect::ALL {
        for input in inputs {
            assert_all_substrates_agree(d, input);
        }
    }
}

#[test]
fn substrates_agree_on_error_inputs() {
    // All substrates must report byte-identical LexErrors: same offset,
    // same line/column, same offending character.
    let inputs = [
        "\u{1}",
        "select \u{1} from t",
        "a b c \u{7f}",
        "ident\u{1}tail",
        "'ok' \u{2}",
        "   \u{1}",
        "select 1;\nselect \u{3};",
    ];
    for d in Dialect::ALL {
        for input in inputs {
            assert_all_substrates_agree(d, input);
        }
    }
}

/// Random fragment soup: concatenations of identifiers, keywords in mixed
/// case, numbers, punctuation, whitespace runs, string literals (ASCII and
/// non-ASCII interiors), comments, and occasional stray control bytes.
/// Run lengths are drawn to straddle the 8/16-byte chunk boundaries.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        // identifiers whose tails cross chunk boundaries at every length
        (1usize..80).prop_map(|n| format!("x{}", "a".repeat(n))),
        prop::sample::select(vec![
            "select", "SELECT", "SeLeCt", "from", "FROM", "where", "join", "ON", "not", "NULL",
        ])
        .prop_map(str::to_string),
        (0u64..1_000_000).prop_map(|n| n.to_string()),
        prop::sample::select(vec!["(", ")", ",", ".", ";", "*", "=", "<", ">", "+", "-"])
            .prop_map(str::to_string),
        (1usize..40).prop_map(|n| " ".repeat(n)),
        prop::sample::select(vec!["\n", "\t", "\n    "]).prop_map(str::to_string),
        (0usize..30).prop_map(|n| format!("'{}'", "s".repeat(n))),
        prop::sample::select(vec!["'héllo'", "'日本'", "-- note\n"]).prop_map(str::to_string),
        // stray control byte: a guaranteed LexError in every dialect
        Just("\u{1}".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn substrates_agree_on_fragment_soup(fragments in prop::collection::vec(arb_fragment(), 0..24)) {
        let input = fragments.concat();
        for d in Dialect::ALL {
            let s = scanner(d);
            let vector = s.scan(&input);
            let reference = s.scan_reference(&input);
            prop_assert_eq!(&vector, &reference, "{}: vector vs reference on {:?}", d.name(), input);
            let compiled = s.scan_compiled(&input);
            prop_assert_eq!(&vector, &compiled, "{}: vector vs compiled on {:?}", d.name(), input);
            let swar = s.scan_with_simd(SimdLevel::Swar, &input).expect("SWAR always available");
            prop_assert_eq!(&vector, &swar, "{}: detected vs SWAR on {:?}", d.name(), input);
        }
    }

    #[test]
    fn straddling_tokens_match_reference(pad in 0usize..16, len in 1usize..96) {
        // One token positioned to straddle chunk boundaries at every
        // (alignment, length) combination, on the widest dialect.
        let d = Dialect::Full;
        let s = scanner(d);
        for body in [format!("k{}", "w".repeat(len)), format!("'{}'", "q".repeat(len))] {
            let input = format!("{}{body};", " ".repeat(pad));
            prop_assert_eq!(s.scan(&input), s.scan_reference(&input), "{:?}", input);
        }
    }
}

//! Experiment B1 — composition and parser-construction cost as the number
//! of selected features grows.
//!
//! The paper's pipeline is meant to run at configuration time ("when a
//! user selects different features, the required parser is created by
//! composing these features"); this bench shows the cost is interactive
//! even for the full catalog: microseconds-to-milliseconds, growing
//! roughly linearly in selected features.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlweave_dialects::Dialect;
use sqlweave_sql_features::catalog;
use std::hint::black_box;
use std::time::Duration;

fn bench_composition(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("B1_compose");
    group.sample_size(20);
    for d in Dialect::ALL {
        let config = d.configuration();
        let features = config.len();
        group.bench_with_input(
            BenchmarkId::new("compose", format!("{}_{}f", d.name(), features)),
            &config,
            |b, config| {
                b.iter(|| {
                    let composed = cat.pipeline().compose(black_box(config)).unwrap();
                    black_box(composed.grammar.productions().len())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("B1_compose_and_build_parser");
    group.sample_size(10);
    for d in Dialect::ALL {
        let config = d.configuration();
        group.bench_with_input(
            BenchmarkId::new("build", d.name()),
            &config,
            |b, config| {
                b.iter(|| {
                    let parser = cat
                        .pipeline()
                        .parser_for(black_box(config))
                        .unwrap();
                    black_box(parser.stats().productions)
                })
            },
        );
    }
    group.finish();

    // validation + completion alone (the interactive UI path)
    let mut group = c.benchmark_group("B1_validate_and_complete");
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let config = d.configuration();
        group.bench_with_input(
            BenchmarkId::new("validate", d.name()),
            &config,
            |b, config| b.iter(|| cat.model().validate(black_box(config)).is_ok()),
        );
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_composition
}
criterion_main!(benches);

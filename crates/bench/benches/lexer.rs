//! Experiment B5 — lexer-substrate ablation: the compiled minimized-DFA
//! scanner vs the naive per-rule NFA scanner, plus scaling of scanner
//! construction with token-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqlweave_bench::{composed, corpus};
use sqlweave_dialects::Dialect;
use std::hint::black_box;
use std::time::Duration;

fn bench_lexer(c: &mut Criterion) {
    // A realistic chunk of SQL text: the full corpus joined.
    let text: String = corpus(Dialect::Full).join(" ;\n");

    let mut group = c.benchmark_group("B5_scan_throughput");
    group.throughput(Throughput::Bytes(text.len() as u64));
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let tokens = &composed(d).tokens;
        let scanner = tokens.build().unwrap();
        // Pico's scanner rejects full-SQL text (unknown characters are only
        // `||` etc.) — scan the dialect's own corpus instead.
        let own: String = corpus(d).join(" \n");
        group.throughput(Throughput::Bytes(own.len() as u64));
        group.bench_with_input(BenchmarkId::new("dfa", d.name()), &own, |b, own| {
            b.iter(|| black_box(scanner.scan(black_box(own)).unwrap().len()))
        });
        let nfas = tokens.build_rule_nfas().unwrap();
        group.bench_with_input(BenchmarkId::new("naive_nfa", d.name()), &own, |b, own| {
            b.iter(|| black_box(scanner.scan_naive(black_box(own), &nfas).unwrap().len()))
        });
    }
    group.finish();

    // Scanner construction cost per dialect (token files -> minimized DFA).
    let mut group = c.benchmark_group("B5_scanner_construction");
    group.sample_size(20);
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let tokens = &composed(d).tokens;
        group.bench_with_input(BenchmarkId::new("build", d.name()), tokens, |b, tokens| {
            b.iter(|| black_box(tokens.build().unwrap().dfa_states()))
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_lexer
}
criterion_main!(benches);

//! Experiment B6 — scanner compilation ablation: the compiled byte-class
//! dispatch scanner (`scan_into`, the production path) vs the preserved
//! per-character interval walker (`scan_reference_into`) vs naive per-rule
//! NFA simulation (`scan_naive`), over each dialect's own corpus.
//!
//! This is the criterion twin of the lex-stage section in
//! `sqlweave bench --json` (schema v3): same three substrates, same
//! corpora, but with criterion's warmup/sampling instead of the runner's
//! single timed loop. A fourth group measures table compilation cost so
//! the one-time price of the dense tables is visible next to the win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqlweave_bench::{composed, corpus};
use sqlweave_dialects::Dialect;
use sqlweave_lexgen::Token;
use std::hint::black_box;
use std::time::Duration;

fn bench_lex_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_scanner_substrates");
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let tokens = &composed(d).tokens;
        let scanner = tokens.build().unwrap();
        let own: String = corpus(d).join(" \n");
        group.throughput(Throughput::Bytes(own.len() as u64));
        // Recycled output buffer: both table-driven paths are measured in
        // the allocation profile of the session/batch APIs.
        let mut buf: Vec<Token> = Vec::new();
        group.bench_with_input(BenchmarkId::new("compiled", d.name()), &own, |b, own| {
            b.iter(|| {
                buf.clear();
                scanner.scan_into(black_box(own), &mut buf).unwrap();
                black_box(buf.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("interval", d.name()), &own, |b, own| {
            b.iter(|| {
                buf.clear();
                scanner.scan_reference_into(black_box(own), &mut buf).unwrap();
                black_box(buf.len())
            })
        });
        let nfas = tokens.build_rule_nfas().unwrap();
        group.bench_with_input(BenchmarkId::new("naive_nfa", d.name()), &own, |b, own| {
            b.iter(|| black_box(scanner.scan_naive(black_box(own), &nfas).unwrap().len()))
        });
    }
    group.finish();

    // UTF-8-heavy workload: string literals full of multi-byte scalars
    // force the compiled scanner through its interval fallback, bounding
    // how much of the headline win survives the worst case.
    let mut group = c.benchmark_group("B6_utf8_fallback");
    let scanner = composed(Dialect::Full).tokens.build().unwrap();
    let utf8: String = corpus(Dialect::Full)
        .iter()
        .map(|s| format!("{s} \n SELECT 'héllo wörld — 中文文本 🦀🦀' FROM t \n"))
        .collect();
    group.throughput(Throughput::Bytes(utf8.len() as u64));
    let mut buf: Vec<Token> = Vec::new();
    group.bench_with_input(BenchmarkId::new("compiled", "full"), &utf8, |b, utf8| {
        b.iter(|| {
            buf.clear();
            scanner.scan_into(black_box(utf8), &mut buf).unwrap();
            black_box(buf.len())
        })
    });
    group.bench_with_input(BenchmarkId::new("interval", "full"), &utf8, |b, utf8| {
        b.iter(|| {
            buf.clear();
            scanner.scan_reference_into(black_box(utf8), &mut buf).unwrap();
            black_box(buf.len())
        })
    });
    group.finish();

    // One-time cost of lowering the minimized DFA into dense tables,
    // isolated from the rest of `TokenSet::build`.
    let mut group = c.benchmark_group("B6_table_compilation");
    group.sample_size(20);
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let scanner = composed(d).tokens.build().unwrap();
        group.bench_function(BenchmarkId::new("compile", d.name()), |b| {
            b.iter(|| {
                let skip: sqlweave_lexgen::compiled::BitSet =
                    (0..scanner.rule_count()).map(|i| scanner.is_skip(sqlweave_lexgen::TokenKind(i as u32))).collect();
                black_box(
                    sqlweave_lexgen::CompiledDfa::compile(scanner.dfa(), &skip).byte_classes(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_lex_ablation
}
criterion_main!(benches);

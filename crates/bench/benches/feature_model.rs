//! Experiment B6 — feature-model operation costs: validation, completion,
//! composition-sequence derivation and configuration counting on the real
//! SQL:2003 catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlweave_dialects::Dialect;
use sqlweave_feature_model::count::try_count_configurations;
use sqlweave_feature_model::Configuration;
use sqlweave_sql_features::catalog;
use std::hint::black_box;
use std::time::Duration;

fn bench_model_ops(c: &mut Criterion) {
    let cat = catalog();
    let model = cat.model();

    let mut group = c.benchmark_group("B6_validate");
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let config = d.configuration();
        group.bench_with_input(BenchmarkId::new("validate", d.name()), &config, |b, config| {
            b.iter(|| black_box(model.validate(black_box(config)).is_ok()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("B6_complete");
    let seeds: [(&str, Vec<&str>); 3] = [
        ("one_leaf", vec!["where"]),
        ("query_core", vec!["query_statement", "select_sublist", "where", "group_by"]),
        (
            "broad",
            vec![
                "query_statement",
                "select_sublist",
                "joined_table",
                "insert_statement",
                "table_definition",
                "grant_revoke",
            ],
        ),
    ];
    for (name, seed) in &seeds {
        group.bench_with_input(BenchmarkId::new("complete", name), seed, |b, seed| {
            b.iter(|| {
                let partial = Configuration::of(seed.iter().copied());
                black_box(model.complete(&partial).unwrap().len())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("B6_count_configurations");
    for diagram in ["table_expression", "query_specification", "predicates", "data_type"] {
        let sub = cat.diagram(diagram).unwrap();
        group.bench_with_input(BenchmarkId::new("count", diagram), &sub, |b, sub| {
            b.iter(|| black_box(try_count_configurations(black_box(sub), 20)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("B6_diagram_extraction");
    group.bench_function("extract_all_45", |b| {
        b.iter(|| black_box(cat.diagrams().len()))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_model_ops
}
criterion_main!(benches);

//! Experiment B4 (allocation ablation) — seed per-node CST construction vs
//! the event-driven green core, isolating what tree materialization costs:
//!
//! * `seed_cst` — the preserved pre-event engines (`parse_reference`),
//!   which allocate a `CstNode` (plus name/lexeme strings) per symbol and
//!   throw away whole subtrees on backtracking.
//! * `event_cst` — events → arena tree → owned CST, the drop-in path.
//! * `event_tree` — a recycled `ParseSession` yielding the borrowed arena
//!   tree; steady-state allocation-free.
//! * `batch` — `parse_many` over the whole corpus in one call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqlweave_bench::{corpus, parser};
use sqlweave_dialects::Dialect;
use sqlweave_parser_rt::engine::EngineMode;
use std::hint::black_box;
use std::time::Duration;

fn bench_alloc(c: &mut Criterion) {
    for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
        let mode_name = sqlweave_bench::runner::engine_name(mode);
        let mut group = c.benchmark_group(format!("B4_alloc_ablation_{mode_name}"));
        for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
            let p = parser(d, mode);
            let stmts: Vec<&str> = corpus(d)
                .into_iter()
                .filter(|s| p.parse_reference(s).is_ok())
                .collect();
            assert!(!stmts.is_empty());
            let bytes: usize = stmts.iter().map(|s| s.len()).sum();
            group.throughput(Throughput::Bytes(bytes as u64));
            group.bench_with_input(BenchmarkId::new("seed_cst", d.name()), &stmts, |b, stmts| {
                b.iter(|| {
                    for s in stmts {
                        black_box(p.parse_reference(black_box(s)).unwrap());
                    }
                })
            });
            group.bench_with_input(BenchmarkId::new("event_cst", d.name()), &stmts, |b, stmts| {
                b.iter(|| {
                    for s in stmts {
                        black_box(p.parse(black_box(s)).unwrap());
                    }
                })
            });
            group.bench_with_input(BenchmarkId::new("event_tree", d.name()), &stmts, |b, stmts| {
                let mut session = p.session();
                b.iter(|| {
                    for s in stmts {
                        let tree = session.parse_tree(black_box(s)).unwrap();
                        black_box(tree.node_count());
                    }
                })
            });
            group.bench_with_input(BenchmarkId::new("batch", d.name()), &stmts, |b, stmts| {
                b.iter(|| black_box(p.parse_many(black_box(stmts))))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_alloc
}
criterion_main!(benches);

//! Experiment B4 — parse-engine ablation: FIRST-pruned backtracking
//! interpreter vs table-driven LL(1), answering the paper's closing
//! question about "what kind of parsing mechanism is most suitable".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqlweave_bench::{corpus, parser};
use sqlweave_dialects::Dialect;
use sqlweave_parser_rt::engine::EngineMode;
use std::hint::black_box;
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_engine_ablation");
    for d in [Dialect::Pico, Dialect::Tiny, Dialect::Core] {
        // Restrict to statements both engines accept, so the comparison is
        // apples-to-apples.
        let ll = parser(d, EngineMode::Ll1Table);
        let bt = parser(d, EngineMode::Backtracking);
        let stmts: Vec<&str> = corpus(d)
            .into_iter()
            .filter(|s| ll.parse(s).is_ok())
            .collect();
        assert!(!stmts.is_empty());
        let bytes: usize = stmts.iter().map(|s| s.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("backtracking", d.name()),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    for s in stmts {
                        black_box(bt.parse(black_box(s)).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ll1_table", d.name()),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    for s in stmts {
                        black_box(ll.parse(black_box(s)).unwrap());
                    }
                })
            },
        );
    }
    group.finish();

    // Rejection cost: how quickly does each engine fail on out-of-dialect
    // statements? (Error-path latency matters for interactive use.)
    let mut group = c.benchmark_group("B4_rejection_cost");
    let bad = [
        "SELECT a FROM t ORDER BY a",
        "INSERT INTO t VALUES (1)",
        "SELECT a FROM t UNION SELECT b FROM u",
    ];
    for mode in ["backtracking", "ll1_table"] {
        let engine = if mode == "backtracking" {
            EngineMode::Backtracking
        } else {
            EngineMode::Ll1Table
        };
        let p = parser(Dialect::Pico, engine);
        group.bench_function(BenchmarkId::new(mode, "pico_rejects"), |b| {
            b.iter(|| {
                for s in &bad {
                    black_box(p.parse(black_box(s)).is_err());
                }
            })
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_engines
}
criterion_main!(benches);

//! Experiment B2 — parse throughput across the dialect ladder, against the
//! monolithic baseline.
//!
//! The headline shape the paper's motivation implies: a tailored parser is
//! *at least* as fast as the full composed parser on the statements it
//! supports (smaller FIRST sets, fewer alternatives to try, smaller DFA),
//! and the hand-written baseline bounds what a conventional monolithic
//! parser achieves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqlweave_baseline::parse_script;
use sqlweave_bench::{corpus, generated, parser};
use sqlweave_dialects::Dialect;
use sqlweave_parser_rt::engine::EngineMode;
use std::hint::black_box;
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    // --- own-corpus throughput per dialect parser ---
    let mut group = c.benchmark_group("B2_corpus_throughput");
    for d in Dialect::ALL {
        let stmts = corpus(d);
        let bytes: usize = stmts.iter().map(|s| s.len()).sum();
        let p = parser(d, EngineMode::Backtracking);
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::new("composed", d.name()), &stmts, |b, stmts| {
            b.iter(|| {
                for s in stmts {
                    black_box(p.parse(black_box(s)).unwrap());
                }
            })
        });
        // the baseline parses every dialect's corpus (it is the full language)
        group.bench_with_input(BenchmarkId::new("baseline", d.name()), &stmts, |b, stmts| {
            b.iter(|| {
                for s in stmts {
                    black_box(parse_script(black_box(s)).unwrap());
                }
            })
        });
    }
    group.finish();

    // --- shared subset: who parses simple SELECTs fastest? ---
    // The crossover claim: on pico statements, the pico parser beats the
    // full composed parser (fewer alternatives/tokens), with the baseline
    // as the conventional reference.
    let mut group = c.benchmark_group("B2_shared_subset");
    let stmts = corpus(Dialect::Pico);
    let bytes: usize = stmts.iter().map(|s| s.len()).sum();
    group.throughput(Throughput::Bytes(bytes as u64));
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let p = parser(d, EngineMode::Backtracking);
        group.bench_with_input(
            BenchmarkId::new("composed", d.name()),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    for s in stmts {
                        black_box(p.parse(black_box(s)).unwrap());
                    }
                })
            },
        );
    }
    group.bench_function("baseline/monolithic", |b| {
        b.iter(|| {
            for s in &stmts {
                black_box(parse_script(black_box(s)).unwrap());
            }
        })
    });
    group.finish();

    // --- generated stress workload ---
    let mut group = c.benchmark_group("B2_generated_workload");
    group.sample_size(20);
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let workload = generated(d, 0xbeef, 200, 9);
        let bytes: usize = workload.iter().map(|s| s.len()).sum();
        let p = parser(d, EngineMode::Backtracking);
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("composed", d.name()),
            &workload,
            |b, workload| {
                b.iter(|| {
                    for s in workload {
                        black_box(p.parse(black_box(s)).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_throughput
}
criterion_main!(benches);

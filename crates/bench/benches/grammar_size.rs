//! Experiment B3 — the static size table (printed once at bench start) and
//! the cost of the grammar analyses (FIRST/FOLLOW/LL(1) table) that scale
//! with grammar size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlweave_bench::{composed, parser};
use sqlweave_dialects::Dialect;
use sqlweave_grammar::analysis::analyze;
use sqlweave_parser_rt::engine::EngineMode;
use std::hint::black_box;
use std::time::Duration;

fn print_size_table() {
    println!(
        "\nB3 static size table\n{:<10} {:>9} {:>12} {:>10} {:>11} {:>8} {:>11}",
        "dialect", "features", "productions", "alts", "table cells", "tokens", "DFA states"
    );
    for d in Dialect::ALL {
        let s = parser(d, EngineMode::Backtracking).stats();
        println!(
            "{:<10} {:>9} {:>12} {:>10} {:>11} {:>8} {:>11}",
            d.name(),
            d.configuration().len(),
            s.productions,
            s.alternatives,
            s.table_cells,
            s.token_rules,
            s.dfa_states
        );
    }
    println!();
}

fn bench_grammar_size(c: &mut Criterion) {
    print_size_table();

    let mut group = c.benchmark_group("B3_grammar_analysis");
    group.sample_size(20);
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let grammar = &composed(d).grammar;
        group.bench_with_input(BenchmarkId::new("analyze", d.name()), grammar, |b, g| {
            b.iter(|| black_box(analyze(black_box(g)).unwrap().table_cells()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("B3_flatten");
    for d in [Dialect::Pico, Dialect::Full] {
        let grammar = &composed(d).grammar;
        group.bench_with_input(BenchmarkId::new("flatten", d.name()), grammar, |b, g| {
            b.iter(|| black_box(sqlweave_grammar::lower::flatten(black_box(g)).productions().len()))
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_grammar_size
}
criterion_main!(benches);

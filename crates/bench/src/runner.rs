//! JSON benchmark runner behind `sqlweave bench`.
//!
//! Measures corpus throughput (statements/sec and tokens/sec) for every
//! requested dialect × engine mode across the four parse APIs, so the
//! allocation ablation of Experiment B4 is reproducible from one command:
//!
//! * `seed_cst` — [`Parser::parse_reference`], the pre-event engines that
//!   build a [`sqlweave_parser_rt::CstNode`] per grammar symbol (baseline,
//!   `speedup_vs_seed` = 1.0 by construction).
//! * `event_cst` — [`Parser::parse`]: event stream → arena tree → owned
//!   CST conversion. What drop-in callers of the seed API get today.
//! * `event_tree` — a recycled [`sqlweave_parser_rt::ParseSession`]
//!   borrowing the arena-backed tree; the intended hot-path API.
//! * `batch` — [`Parser::parse_many`] over the whole corpus per iteration.
//!
//! Each pair additionally reports the backtracking engine's dynamic
//! counters from one instrumented session pass — LL(k) decision-table
//! hits, speculative-probe truncations, failure-memo hits — and the
//! derived backtrack rate (truncations per alternative attempt), which is
//! the headline number of the lookahead ablation (Experiment B5).
//!
//! The backtracking row of each dialect also carries a **lex-stage
//! section** (Experiments B6/B9): tokens/sec and MB/sec of the four
//! scanner substrates — `vector` (chunked run-skipping classification +
//! keyword perfect-hash, the production path), `compiled` (per-byte
//! byte-class dispatch tables), `interval` (the preserved per-character
//! interval walker), and `naive` (per-rule NFA simulation) — plus the
//! dialect's byte-class count. The scanner is engine-independent, so the
//! LL(1) row leaves the section empty rather than duplicating it.
//!
//! The curated corpus is a *coverage* workload (a few hundred bytes per
//! dialect), so the document can additionally carry a top-level
//! **`corpus_lex` section**: the same scanner ablation over a
//! multi-mebibyte script manufactured by [`crate::corpus::generate_script_mb`]
//! from the dialect's own grammar weights. This is the steady-state
//! throughput number (`sqlweave bench --corpus-mb N`); the array is empty
//! when the knob is not given.
//!
//! Each pair also carries a **recovery section** (Experiment B7): the
//! resilient parser ([`sqlweave_parser_rt::ParseSession::parse_resilient`])
//! over the error-density corpus ([`crate::faulty_corpus`]) — scripts/sec,
//! total diagnostics reported — plus `clean_overhead`, the resilient/strict
//! time ratio on the *clean* accepted corpus (what recovery bookkeeping
//! costs when nothing goes wrong).
//!
//! Each pair finally carries a **sema section** (Experiment B8): the
//! statements/sec of the full parse → CST → name-resolution pipeline
//! ([`sqlweave_sema::analyze_script`] with the dialect's
//! [`sqlweave_sema::ResolverCaps`]) over the same accepted corpus, plus
//! `overhead_vs_parse` — the sema-path/`event_tree` time ratio, i.e. what
//! semantic analysis (including the owned-CST conversion it needs) costs
//! on top of parsing alone — and the deterministic count of column-lineage
//! edges the corpus produces.
//!
//! Finally, the document can carry a top-level **`incremental` section**
//! (Experiment B11, `sqlweave bench --edits N`): keystroke latency of
//! [`sqlweave_parser_rt::ParseSession::apply_edit`] — single-token edits
//! at random positions of a multi-mebibyte generated script through one
//! incremental session — reporting p50/p99 apply latency (the lazy
//! keystroke path), the median cost of materializing the tree afterwards
//! (`materialize_us_p50`), the median from-scratch reparse time of the
//! same document, their ratio (the headline incremental speedup), and
//! relex-resync / reparse-window size statistics.
//!
//! Output is a JSON document (schema `sqlweave-bench-parser/v8`; v7
//! lacked the incremental section's `materialize_us_p50` split, v6
//! the `incremental` section and the sema row's token-interning
//! columns, v5 the `vector` scanner row and the `corpus_lex` section, v4
//! the sema section, v3 the recovery section, v2 the lex stage,
//! v1 the dynamic counters), built with the same hand-rolled emitter
//! conventions as
//! `sqlweave-lint` and round-tripped through
//! [`sqlweave_lint::json::parse`] before being returned, so a malformed
//! report fails loudly instead of landing in CI artifacts.

use crate::{composed, corpus, faulty_corpus, parser};
use sqlweave_dialects::Dialect;
use sqlweave_lexgen::Token;
use sqlweave_lint::json::{self, Value};
use sqlweave_parser_rt::engine::{EngineMode, Parser};
use std::time::Instant;

/// Stable name for an engine mode in reports.
pub fn engine_name(mode: EngineMode) -> &'static str {
    match mode {
        EngineMode::Backtracking => "backtracking",
        EngineMode::Ll1Table => "ll1_table",
    }
}

/// Throughput of one parse API on one dialect × engine corpus.
#[derive(Debug, Clone)]
pub struct ApiMeasurement {
    /// API identifier: `seed_cst`, `event_cst`, `event_tree`, or `batch`.
    pub api: &'static str,
    /// Whole parsed statements per second.
    pub statements_per_sec: f64,
    /// Tokens per second (same runs, token-weighted).
    pub tokens_per_sec: f64,
    /// Ratio of this API's statements/sec to `seed_cst`'s.
    pub speedup_vs_seed: f64,
}

/// Throughput of one scanner substrate on one dialect's corpus.
#[derive(Debug, Clone)]
pub struct LexMeasurement {
    /// Scanner identifier: `vector`, `compiled`, `interval`, or `naive`.
    pub scanner: &'static str,
    /// Emitted + skipped lexing throughput in tokens per second
    /// (token-weighted over the whole corpus).
    pub tokens_per_sec: f64,
    /// Input bytes consumed per second, in MB (1e6 bytes).
    pub mbytes_per_sec: f64,
    /// Ratio of this scanner's tokens/sec to `interval`'s (the
    /// pre-compilation hot path; 1.0 for `interval` by construction).
    pub speedup_vs_interval: f64,
}

/// Error-recovery measurements for one dialect × engine pair (B7).
#[derive(Debug, Clone)]
pub struct RecoveryMeasurement {
    /// Scripts in the error-density corpus ([`crate::faulty_corpus`]).
    pub scripts: usize,
    /// Total diagnostics reported across those scripts. Deterministic for
    /// a given dialect × engine (the corpus and the recovery algorithm
    /// are both deterministic).
    pub errors: usize,
    /// Faulty scripts resiliently parsed per second.
    pub scripts_per_sec: f64,
    /// Resilient/strict time ratio on the clean accepted corpus — what
    /// the recovery bookkeeping costs when the input has no errors
    /// (1.0 = free; measured against the `event_tree` API).
    pub clean_overhead: f64,
}

/// Semantic-analysis measurements for one dialect × engine pair (B8).
#[derive(Debug, Clone)]
pub struct SemaMeasurement {
    /// Corpus statements per second through the full parse + resolve
    /// pipeline (session parse → owned CST → name resolution + lineage).
    pub statements_per_sec: f64,
    /// Sema-path/`event_tree` time ratio on identical successful work —
    /// what resolution (and the CST conversion it requires) costs on top
    /// of parsing alone (1.0 = free).
    pub overhead_vs_parse: f64,
    /// Column-lineage edges the corpus produces. Deterministic for a
    /// given dialect (the corpus and the resolver are both deterministic).
    pub column_edges: usize,
    /// Total bytes of token text across the corpus trees (what an owning
    /// per-token representation would copy).
    pub lexeme_bytes: usize,
    /// Bytes after interning through one shared
    /// [`sqlweave_parser_rt::TokenInterner`] — distinct lexemes only.
    pub interned_bytes: usize,
    /// `lexeme_bytes / interned_bytes`: the dedupe factor token-text
    /// interning buys on this corpus (≥ 1.0).
    pub intern_ratio: f64,
}

/// All measurements for one dialect × engine pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Dialect name (e.g. `core`).
    pub dialect: &'static str,
    /// Engine name (e.g. `backtracking`).
    pub engine: &'static str,
    /// Corpus statements measured (those this engine accepts).
    pub statements: usize,
    /// Total tokens across those statements.
    pub tokens: usize,
    /// Total bytes across the dialect's *whole* corpus (the lex-stage
    /// workload; lexing is engine-independent so it is not filtered by
    /// engine acceptance).
    pub bytes: usize,
    /// Byte equivalence classes in the compiled scanner tables.
    pub byte_classes: usize,
    /// LL(k) dispatch-table hits over one session pass of the corpus
    /// (backtracking engine only; 0 for the LL(1) table engine).
    pub decision_table_hits: u64,
    /// Speculative probes undone (event-buffer truncations) in that pass.
    pub backtracks: u64,
    /// Failure-memo hits in that pass.
    pub failure_memo_hits: u64,
    /// `backtracks / alternative attempts` — the fraction of speculative
    /// probes that were undone. 0.0 when the engine never speculates.
    pub backtrack_rate: f64,
    /// Per-API throughput, `seed_cst` first.
    pub apis: Vec<ApiMeasurement>,
    /// Lex-stage scanner ablation (`interval` first). Populated on each
    /// dialect's backtracking row only — the scanner does not vary by
    /// engine — and empty everywhere else.
    pub lex: Vec<LexMeasurement>,
    /// Error-recovery measurements over the faulty corpus (B7).
    pub recovery: RecoveryMeasurement,
    /// Semantic-analysis throughput over the accepted corpus (B8).
    pub sema: SemaMeasurement,
}

/// Benchmark the lex stage of one dialect: scan the whole corpus with each
/// scanner substrate. Returns `(corpus_bytes, measurements)` with
/// `interval` first so its rate anchors the speedup column.
///
/// The vector, compiled, and interval scanners lex into one recycled
/// buffer (the allocation profile of the session/batch paths); the naive
/// scanner has no buffered entry point and allocates per scan, which is
/// part of what makes it the naive baseline. Naive NFA simulation is
/// orders of magnitude slower, so it runs `iters / 8` passes (at least
/// one) — rates are normalized per pass, so the column stays comparable.
pub fn bench_lex_stage(dialect: Dialect, iters: usize) -> (usize, Vec<LexMeasurement>) {
    let p = parser(dialect, EngineMode::Backtracking);
    let stmts = corpus(dialect);
    let bytes: usize = stmts.iter().map(|s| s.len()).sum();
    let mut buf: Vec<Token> = Vec::new();
    let tokens: usize = stmts
        .iter()
        .map(|s| {
            buf.clear();
            p.scanner().scan_into(s, &mut buf).expect("corpus statement lexes");
            buf.len()
        })
        .sum();

    // Lexing is ~10× faster than parsing; scale iterations up so the
    // timed region stays well above timer resolution at small `iters`.
    let lex_iters = iters.saturating_mul(8);
    let naive_iters = (iters / 8).max(1);

    let interval_secs = time(lex_iters, || {
        for s in &stmts {
            buf.clear();
            p.scanner().scan_reference_into(s, &mut buf).expect("corpus statement lexes");
            std::hint::black_box(buf.len());
        }
    });
    let compiled_secs = time(lex_iters, || {
        for s in &stmts {
            buf.clear();
            p.scanner().scan_compiled_into(s, &mut buf).expect("corpus statement lexes");
            std::hint::black_box(buf.len());
        }
    });
    let vector_secs = time(lex_iters, || {
        for s in &stmts {
            buf.clear();
            p.scanner().scan_into(s, &mut buf).expect("corpus statement lexes");
            std::hint::black_box(buf.len());
        }
    });
    let nfas = composed(dialect)
        .tokens
        .build_rule_nfas()
        .unwrap_or_else(|e| panic!("rule NFAs {}: {e}", dialect.name()));
    let naive_secs = time(naive_iters, || {
        for s in &stmts {
            let toks = p.scanner().scan_naive(s, &nfas).expect("corpus statement lexes");
            std::hint::black_box(toks.len());
        }
    });

    let rate = |scanner: &'static str, its: usize, secs: f64, base_tps: Option<f64>| {
        let secs = secs.max(1e-9);
        let tps = (its * tokens) as f64 / secs;
        LexMeasurement {
            scanner,
            tokens_per_sec: tps,
            mbytes_per_sec: (its * bytes) as f64 / secs / 1e6,
            speedup_vs_interval: base_tps.map_or(1.0, |b| tps / b.max(1e-9)),
        }
    };
    let interval = rate("interval", lex_iters, interval_secs, None);
    let base = interval.tokens_per_sec;
    let measurements = vec![
        interval,
        rate("compiled", lex_iters, compiled_secs, Some(base)),
        rate("vector", lex_iters, vector_secs, Some(base)),
        rate("naive", naive_iters, naive_secs, Some(base)),
    ];
    (bytes, measurements)
}

/// Lex-stage ablation of one dialect over a generated multi-mebibyte
/// corpus — schema v6's top-level `corpus_lex` section.
#[derive(Debug, Clone)]
pub struct CorpusLexReport {
    /// Dialect name (e.g. `full`).
    pub dialect: &'static str,
    /// Requested corpus size in MiB (`--corpus-mb`).
    pub mebibytes: usize,
    /// Actual generated script size in bytes (≥ `mebibytes * 2^20`).
    pub bytes: usize,
    /// Tokens the scanner emits over the script.
    pub tokens: usize,
    /// SIMD classification level the vector scanner selected at runtime
    /// (`swar`, `ssse3`, or `neon`).
    pub simd_level: &'static str,
    /// Per-substrate throughput, `interval` first (the speedup anchor),
    /// then `compiled` and `vector`. The naive NFA scanner is omitted: at
    /// ~1/500 of interval speed it would turn a one-second sweep into a
    /// ten-minute one without adding information B6 doesn't already carry.
    pub scanners: Vec<LexMeasurement>,
}

/// Scan a [`crate::corpus::generate_script_mb`] script of `mebibytes` MiB
/// with the vector, compiled, and interval substrates, best-of-`reps`
/// passes each (best-of suppresses scheduler noise, which dominates
/// multi-megabyte single-pass timings far more than warmup does).
pub fn bench_lex_corpus(dialect: Dialect, mebibytes: usize, reps: usize) -> CorpusLexReport {
    let p = parser(dialect, EngineMode::Backtracking);
    let script = crate::corpus::generate_script_mb(dialect, mebibytes);
    let bytes = script.len();
    let mut buf: Vec<Token> = Vec::new();
    p.scanner().scan_into(&script, &mut buf).expect("generated corpus lexes");
    let tokens = buf.len();

    let mut best = |f: &dyn Fn(&mut Vec<Token>)| {
        let mut secs = f64::INFINITY;
        for _ in 0..reps.max(1) {
            buf.clear();
            let start = Instant::now();
            f(&mut buf);
            secs = secs.min(start.elapsed().as_secs_f64());
            std::hint::black_box(buf.len());
        }
        secs
    };
    let interval_secs = best(&|out| {
        p.scanner().scan_reference_into(&script, out).expect("generated corpus lexes")
    });
    let compiled_secs = best(&|out| {
        p.scanner().scan_compiled_into(&script, out).expect("generated corpus lexes")
    });
    let vector_secs = best(&|out| {
        p.scanner().scan_into(&script, out).expect("generated corpus lexes")
    });

    let rate = |scanner: &'static str, secs: f64, base_tps: Option<f64>| {
        let secs = secs.max(1e-9);
        let tps = tokens as f64 / secs;
        LexMeasurement {
            scanner,
            tokens_per_sec: tps,
            mbytes_per_sec: bytes as f64 / secs / 1e6,
            speedup_vs_interval: base_tps.map_or(1.0, |b| tps / b.max(1e-9)),
        }
    };
    let interval = rate("interval", interval_secs, None);
    let base = interval.tokens_per_sec;
    CorpusLexReport {
        dialect: dialect.name(),
        mebibytes,
        bytes,
        tokens,
        simd_level: p.scanner().simd_level().name(),
        scanners: vec![
            interval,
            rate("compiled", compiled_secs, Some(base)),
            rate("vector", vector_secs, Some(base)),
        ],
    }
}

/// Keystroke-latency measurements of one dialect's incremental session —
/// schema v8's top-level `incremental` section (Experiment B11), with the
/// lazy keystroke path and the deferred tree materialization timed
/// separately.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Dialect name (e.g. `full`).
    pub dialect: &'static str,
    /// Engine the incremental session drives (`backtracking` or
    /// `ll1_table`) — the keystroke target holds per dialect × engine
    /// pair, so v8 reports both.
    pub engine: &'static str,
    /// Generated script size in bytes.
    pub bytes: usize,
    /// Tokens in the opened document.
    pub tokens: usize,
    /// Single-token edits applied.
    pub edits: usize,
    /// Median `apply_edit` latency in microseconds (the lazy keystroke
    /// path: relex + windowed reparse + diagnostics, no tree build).
    pub apply_edit_us_p50: f64,
    /// 99th-percentile `apply_edit` latency in microseconds.
    pub apply_edit_us_p99: f64,
    /// Median latency of materializing the tree after an edit
    /// (`LazyTree::get`), in microseconds — the cost deferred off the
    /// keystroke path.
    pub materialize_us_p50: f64,
    /// Median from-scratch `parse_resilient` latency on the same document,
    /// in microseconds.
    pub full_reparse_us_p50: f64,
    /// `full_reparse_us_p50 / apply_edit_us_p50` — the headline incremental
    /// speedup.
    pub speedup_p50: f64,
    /// Median relex resynchronization distance in bytes (how far past the
    /// edit the scanner had to look before the old token stream resumed).
    pub resync_bytes_p50: usize,
    /// Largest resynchronization distance observed.
    pub resync_bytes_max: usize,
    /// Median tokens re-driven through the parser per edit (the reparse
    /// window, vs `tokens` for a full reparse).
    pub reparsed_tokens_p50: usize,
    /// Edits that fell back to a whole-document reparse.
    pub full_reparse_fallbacks: usize,
}

/// Deterministic xorshift64* for reproducible edit positions.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Nearest-rank index for percentile `p` over `n` sorted samples:
/// `⌈p·n⌉ − 1`, clamped to the valid range. For n=1 every percentile is
/// the single sample; for n=2 the median is the lower sample and p99 the
/// upper; p=1.0 is always the maximum.
fn percentile_index(n: usize, p: f64) -> usize {
    ((p * n as f64).ceil() as usize).clamp(1, n) - 1
}

fn percentile_f64(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[percentile_index(sorted.len(), p)]
}

fn percentile_usize(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    sorted[percentile_index(sorted.len(), p)]
}

/// Measure keystroke latency: open a `mebibytes`-MiB generated script as
/// an incremental document under `mode`'s engine and apply `edits`
/// single-character identifier edits at deterministic random positions,
/// timing each [`sqlweave_parser_rt::ParseSession::apply_edit`] against
/// the median from-scratch `parse_resilient` of the same document.
pub fn bench_incremental(
    dialect: Dialect,
    mode: EngineMode,
    mebibytes: usize,
    edits: usize,
) -> IncrementalReport {
    bench_incremental_bytes(dialect, mode, mebibytes * 1024 * 1024, edits)
}

/// [`bench_incremental`] with a byte-precise corpus size (used by the unit
/// tests, which cannot afford a multi-MiB debug-mode parse).
///
/// Runs on a dedicated 256 MiB-stack thread: the engines parse a clean
/// multi-MiB script as one recursive descent over the whole statement
/// list, and the predictive engine's frames overflow a default 8 MiB
/// stack around ~25k statements. Only the two whole-document parses
/// (opening the session, the from-scratch baseline) need the headroom —
/// the keystroke path under measurement re-drives windows of a few dozen
/// tokens.
pub fn bench_incremental_bytes(
    dialect: Dialect,
    mode: EngineMode,
    target_bytes: usize,
    edits: usize,
) -> IncrementalReport {
    std::thread::Builder::new()
        .name(format!("bench-incremental-{}", dialect.name()))
        .stack_size(256 << 20)
        .spawn(move || bench_incremental_on_thread(dialect, mode, target_bytes, edits))
        .expect("spawn incremental bench thread")
        .join()
        .expect("incremental bench thread panicked")
}

fn bench_incremental_on_thread(
    dialect: Dialect,
    mode: EngineMode,
    target_bytes: usize,
    edits: usize,
) -> IncrementalReport {
    let p = parser(dialect, mode);
    let script = crate::corpus::generate_script(dialect, 0xED17, target_bytes);
    let mut session = p.session();
    session.open_document(&script);
    let tokens = session.edit_stats().total_tokens;

    // Full-reparse baseline: best 2-of-3 median on a separate session so
    // the incremental document is untouched.
    let mut full = p.session();
    let mut full_us: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            let outcome = full.parse_resilient(&script);
            std::hint::black_box(outcome.errors.len());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    full_us.sort_by(f64::total_cmp);
    let full_reparse_us_p50 = percentile_f64(&full_us, 0.5);

    // Single-token edits: replace one lowercase identifier character with
    // another, keeping the document clean and its length stable.
    let mut rng = XorShift(0x1c00_0000_0000_0001_u64 ^ script.len() as u64);
    let mut apply_us: Vec<f64> = Vec::with_capacity(edits);
    let mut mat_us: Vec<f64> = Vec::with_capacity(edits);
    let mut resyncs: Vec<usize> = Vec::with_capacity(edits);
    let mut windows: Vec<usize> = Vec::with_capacity(edits);
    let mut full_reparse_fallbacks = 0usize;
    for _ in 0..edits {
        let text = session.document();
        let bytes = text.as_bytes();
        let pos = (0..10_000)
            .map(|_| rng.below(bytes.len()))
            .find(|&q| bytes[q].is_ascii_lowercase())
            .expect("generated script contains identifier characters");
        let rep = if bytes[pos] == b'x' { "y" } else { "x" };
        // The keystroke path: relex + windowed reparse + diagnostics.
        let start = Instant::now();
        let mut outcome = session.apply_edit(pos..pos + 1, rep);
        std::hint::black_box(outcome.errors.len());
        apply_us.push(start.elapsed().as_secs_f64() * 1e6);
        // The deferred half: materialize the tree through the lazy handle.
        let start = Instant::now();
        std::hint::black_box(outcome.tree.get().node_count());
        mat_us.push(start.elapsed().as_secs_f64() * 1e6);
        let st = outcome.stats;
        resyncs.push(st.resync_bytes);
        windows.push(st.reparsed_tokens);
        full_reparse_fallbacks += st.full_reparse as usize;
    }
    apply_us.sort_by(f64::total_cmp);
    mat_us.sort_by(f64::total_cmp);
    resyncs.sort_unstable();
    windows.sort_unstable();

    let apply_edit_us_p50 = percentile_f64(&apply_us, 0.5);
    IncrementalReport {
        dialect: dialect.name(),
        engine: engine_name(mode),
        bytes: script.len(),
        tokens,
        edits,
        apply_edit_us_p50,
        apply_edit_us_p99: percentile_f64(&apply_us, 0.99),
        materialize_us_p50: percentile_f64(&mat_us, 0.5),
        full_reparse_us_p50,
        speedup_p50: full_reparse_us_p50 / apply_edit_us_p50.max(1e-9),
        resync_bytes_p50: percentile_usize(&resyncs, 0.5),
        resync_bytes_max: resyncs.last().copied().unwrap_or(0),
        reparsed_tokens_p50: percentile_usize(&windows, 0.5),
        full_reparse_fallbacks,
    }
}

fn time<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // One untimed warmup pass populates lazily initialized state (parser
    // caches, allocator arenas) so the first timed iteration is not an
    // outlier at small `iters`.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64()
}

fn measure(
    api: &'static str,
    iters: usize,
    statements: usize,
    tokens: usize,
    secs: f64,
    seed_sps: Option<f64>,
) -> ApiMeasurement {
    let secs = secs.max(1e-9);
    let sps = (iters * statements) as f64 / secs;
    ApiMeasurement {
        api,
        statements_per_sec: sps,
        tokens_per_sec: (iters * tokens) as f64 / secs,
        speedup_vs_seed: seed_sps.map_or(1.0, |s| sps / s.max(1e-9)),
    }
}

/// Benchmark one dialect × engine pair over its accepted corpus.
///
/// Statements the engine rejects (the LL(1) engine cannot parse every
/// corpus entry of the larger dialects) are excluded up front so every API
/// measures identical successful work.
pub fn bench_pair(dialect: Dialect, mode: EngineMode, iters: usize) -> PairReport {
    bench_parser(parser(dialect, mode), dialect, mode, iters)
}

/// [`bench_pair`] with an explicit runtime lookahead limit (Experiment
/// B5's k-ablation knob). Builds an unshared parser so the cached one
/// keeps its default configuration; `k < 2` disables dispatch tables
/// entirely, reproducing the seed backtracking behavior.
pub fn bench_pair_with_lookahead(
    dialect: Dialect,
    mode: EngineMode,
    iters: usize,
    lookahead: usize,
) -> PairReport {
    let p = dialect
        .parser_with_mode(mode)
        .unwrap_or_else(|e| panic!("parser {}: {e}", dialect.name()))
        .with_lookahead_k(lookahead);
    bench_parser(&p, dialect, mode, iters)
}

fn bench_parser(p: &Parser, dialect: Dialect, mode: EngineMode, iters: usize) -> PairReport {
    let stmts: Vec<&'static str> = corpus(dialect)
        .into_iter()
        .filter(|s| p.parse_reference(s).is_ok())
        .collect();
    let tokens: usize = stmts
        .iter()
        .map(|s| {
            let mut v: Vec<Token> = Vec::new();
            p.scanner().scan_into(s, &mut v).expect("accepted statement lexes");
            v.len()
        })
        .sum();

    let seed_secs = time(iters, || {
        for s in &stmts {
            let _ = std::hint::black_box(p.parse_reference(s));
        }
    });
    let event_cst_secs = time(iters, || {
        for s in &stmts {
            let _ = std::hint::black_box(p.parse(s));
        }
    });
    let mut session = p.session();
    let event_tree_secs = time(iters, || {
        for s in &stmts {
            let tree = session.parse_tree(s).expect("accepted statement parses");
            std::hint::black_box(tree.node_count());
        }
    });
    let batch_secs = time(iters, || {
        let _ = std::hint::black_box(p.parse_many(&stmts));
    });

    // Recovery (B7): resilient parsing over the clean corpus (overhead
    // baseline against `event_tree` above, which did identical successful
    // work strictly) and over the error-density corpus.
    let faulty = faulty_corpus(dialect);
    let mut rsession = p.session();
    let resilient_clean_secs = time(iters, || {
        for s in &stmts {
            let outcome = rsession.parse_resilient(s);
            std::hint::black_box(outcome.errors.len());
        }
    });
    let faulty_secs = time(iters, || {
        for s in &faulty {
            let outcome = rsession.parse_resilient(s);
            std::hint::black_box(outcome.errors.len());
        }
    });
    let recovery_errors: usize = faulty.iter().map(|s| rsession.parse_resilient(s).errors.len()).sum();
    let recovery = RecoveryMeasurement {
        scripts: faulty.len(),
        errors: recovery_errors,
        scripts_per_sec: (iters * faulty.len()) as f64 / faulty_secs.max(1e-9),
        clean_overhead: resilient_clean_secs.max(1e-9) / event_tree_secs.max(1e-9),
    };

    // Sema (B8): the full parse → CST → resolve pipeline over the same
    // accepted statements, so `overhead_vs_parse` against `event_tree`
    // compares identical successful parses.
    let caps = sqlweave_sema::ResolverCaps::for_dialect(dialect);
    let mut sema_session = p.session();
    let sema_secs = time(iters, || {
        for s in &stmts {
            let tree = sema_session.parse_tree(s).expect("accepted statement parses");
            let a = sqlweave_sema::analyze_script(s, &tree.to_cst(), &caps, None);
            std::hint::black_box(a.statements.len());
        }
    });
    let column_edges: usize = stmts
        .iter()
        .map(|s| {
            let tree = sema_session.parse_tree(s).expect("accepted statement parses");
            let a = sqlweave_sema::analyze_script(s, &tree.to_cst(), &caps, None);
            a.statements.iter().map(|st| st.columns.len()).sum::<usize>()
        })
        .sum();
    // Token-text interning over the same trees: how much lexeme storage a
    // shared per-corpus interner deduplicates away.
    let mut interner = sqlweave_parser_rt::TokenInterner::new();
    let mut lexeme_bytes = 0usize;
    for s in &stmts {
        let tree = sema_session.parse_tree(s).expect("accepted statement parses");
        let syms = tree.intern_tokens(&mut interner);
        lexeme_bytes += syms.iter().map(|&y| interner.resolve(y).len()).sum::<usize>();
    }
    let sema = SemaMeasurement {
        statements_per_sec: (iters * stmts.len()) as f64 / sema_secs.max(1e-9),
        overhead_vs_parse: sema_secs.max(1e-9) / event_tree_secs.max(1e-9),
        column_edges,
        lexeme_bytes,
        interned_bytes: interner.bytes(),
        intern_ratio: lexeme_bytes as f64 / interner.bytes().max(1) as f64,
    };

    // One untimed instrumented pass for the dynamic engine counters; the
    // rate is a ratio, so it does not depend on `iters`.
    let mut counted = p.session();
    for s in &stmts {
        counted.parse_tree(s).expect("accepted statement parses");
    }
    let cstats = counted.stats();
    let backtrack_rate = if cstats.alt_attempts > 0 {
        cstats.backtracks as f64 / cstats.alt_attempts as f64
    } else {
        0.0
    };

    let seed = measure("seed_cst", iters, stmts.len(), tokens, seed_secs, None);
    let seed_sps = seed.statements_per_sec;
    let apis = vec![
        seed,
        measure("event_cst", iters, stmts.len(), tokens, event_cst_secs, Some(seed_sps)),
        measure("event_tree", iters, stmts.len(), tokens, event_tree_secs, Some(seed_sps)),
        measure("batch", iters, stmts.len(), tokens, batch_secs, Some(seed_sps)),
    ];
    // Lex-stage ablation on the backtracking row only (the scanner does
    // not vary by engine, so duplicating it would double bench time for
    // identical numbers).
    let (bytes, lex) = if mode == EngineMode::Backtracking {
        bench_lex_stage(dialect, iters)
    } else {
        (corpus(dialect).iter().map(|s| s.len()).sum(), Vec::new())
    };
    PairReport {
        dialect: dialect.name(),
        engine: engine_name(mode),
        statements: stmts.len(),
        tokens,
        bytes,
        byte_classes: p.scanner().byte_classes(),
        decision_table_hits: cstats.decision_table_hits,
        backtracks: cstats.backtracks,
        failure_memo_hits: cstats.failure_memo_hits,
        backtrack_rate,
        apis,
        lex,
        recovery,
        sema,
    }
}

fn fmt_f64(x: f64) -> String {
    // Two decimals is plenty for throughput ratios; full float printing
    // would make the checked-in report churn on every rerun.
    format!("{x:.2}")
}

/// Serialize reports as the `sqlweave-bench-parser/v8` JSON document with
/// empty `corpus_lex` and `incremental` sections.
pub fn to_json(iters: usize, reports: &[PairReport]) -> String {
    to_json_full(iters, reports, &[], &[])
}

/// Serialize lexer measurements shared by the per-pair `lex` arrays and
/// the top-level `corpus_lex` section.
fn lex_json(l: &LexMeasurement) -> String {
    // Four decimals on the ratio: the naive scanner runs at ~1/500 of
    // the interval walker, which two decimals would round to a
    // meaningless 0.00.
    format!(
        "{{\"scanner\":\"{}\",\"tokens_per_sec\":{},\"mbytes_per_sec\":{},\"speedup_vs_interval\":{:.4}}}",
        json::escape(l.scanner),
        fmt_f64(l.tokens_per_sec),
        fmt_f64(l.mbytes_per_sec),
        l.speedup_vs_interval
    )
}

/// [`to_json`] with the generated-corpus lex sweep and the incremental
/// keystroke-latency sweep (both sections are emitted as empty arrays when
/// their knobs were not given — the shape is stable either way).
pub fn to_json_full(
    iters: usize,
    reports: &[PairReport],
    corpus: &[CorpusLexReport],
    incremental: &[IncrementalReport],
) -> String {
    let results: Vec<String> = reports
        .iter()
        .map(|r| {
            let apis: Vec<String> = r
                .apis
                .iter()
                .map(|a| {
                    format!(
                        "{{\"api\":\"{}\",\"statements_per_sec\":{},\"tokens_per_sec\":{},\"speedup_vs_seed\":{}}}",
                        json::escape(a.api),
                        fmt_f64(a.statements_per_sec),
                        fmt_f64(a.tokens_per_sec),
                        fmt_f64(a.speedup_vs_seed)
                    )
                })
                .collect();
            let lex: Vec<String> = r.lex.iter().map(lex_json).collect();
            let recovery = format!(
                "{{\"scripts\":{},\"errors\":{},\"scripts_per_sec\":{},\"clean_overhead\":{:.4}}}",
                r.recovery.scripts,
                r.recovery.errors,
                fmt_f64(r.recovery.scripts_per_sec),
                r.recovery.clean_overhead
            );
            let sema = format!(
                "{{\"statements_per_sec\":{},\"overhead_vs_parse\":{:.4},\"column_edges\":{},\
                 \"lexeme_bytes\":{},\"interned_bytes\":{},\"intern_ratio\":{:.4}}}",
                fmt_f64(r.sema.statements_per_sec),
                r.sema.overhead_vs_parse,
                r.sema.column_edges,
                r.sema.lexeme_bytes,
                r.sema.interned_bytes,
                r.sema.intern_ratio
            );
            format!(
                "{{\"dialect\":\"{}\",\"engine\":\"{}\",\"statements\":{},\"tokens\":{},\
                 \"bytes\":{},\"byte_classes\":{},\
                 \"decision_table_hits\":{},\"backtracks\":{},\"failure_memo_hits\":{},\
                 \"backtrack_rate\":{:.4},\"apis\":[{}],\"lex\":[{}],\"recovery\":{},\"sema\":{}}}",
                json::escape(r.dialect),
                json::escape(r.engine),
                r.statements,
                r.tokens,
                r.bytes,
                r.byte_classes,
                r.decision_table_hits,
                r.backtracks,
                r.failure_memo_hits,
                r.backtrack_rate,
                apis.join(","),
                lex.join(","),
                recovery,
                sema
            )
        })
        .collect();
    let corpus_lex: Vec<String> = corpus
        .iter()
        .map(|c| {
            let scanners: Vec<String> = c.scanners.iter().map(lex_json).collect();
            format!(
                "{{\"dialect\":\"{}\",\"mebibytes\":{},\"bytes\":{},\"tokens\":{},\
                 \"simd_level\":\"{}\",\"scanners\":[{}]}}",
                json::escape(c.dialect),
                c.mebibytes,
                c.bytes,
                c.tokens,
                json::escape(c.simd_level),
                scanners.join(",")
            )
        })
        .collect();
    let incremental: Vec<String> = incremental
        .iter()
        .map(|i| {
            format!(
                "{{\"dialect\":\"{}\",\"engine\":\"{}\",\"bytes\":{},\"tokens\":{},\"edits\":{},\
                 \"apply_edit_us_p50\":{},\"apply_edit_us_p99\":{},\"materialize_us_p50\":{},\
                 \"full_reparse_us_p50\":{},\
                 \"speedup_p50\":{},\"resync_bytes_p50\":{},\"resync_bytes_max\":{},\
                 \"reparsed_tokens_p50\":{},\"full_reparse_fallbacks\":{}}}",
                json::escape(i.dialect),
                json::escape(i.engine),
                i.bytes,
                i.tokens,
                i.edits,
                fmt_f64(i.apply_edit_us_p50),
                fmt_f64(i.apply_edit_us_p99),
                fmt_f64(i.materialize_us_p50),
                fmt_f64(i.full_reparse_us_p50),
                fmt_f64(i.speedup_p50),
                i.resync_bytes_p50,
                i.resync_bytes_max,
                i.reparsed_tokens_p50,
                i.full_reparse_fallbacks
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":{},\"results\":[{}],\"corpus_lex\":[{}],\"incremental\":[{}]}}",
        iters,
        results.join(","),
        corpus_lex.join(","),
        incremental.join(",")
    )
}

/// Run the full sweep and return validated JSON.
///
/// Panics if the emitted document fails to round-trip through the JSON
/// parser or violates the schema — a bench artifact that cannot be read
/// back is worse than no artifact.
pub fn run(dialects: &[Dialect], iters: usize) -> String {
    run_with_lookahead(dialects, iters, None)
}

/// [`run`] with an optional runtime lookahead cap applied to every pair
/// (the LL(1) table engine ignores it; see [`bench_pair_with_lookahead`]).
pub fn run_with_lookahead(
    dialects: &[Dialect],
    iters: usize,
    lookahead: Option<usize>,
) -> String {
    run_full(dialects, iters, lookahead, 0, 0)
}

/// Best-of passes per substrate in the generated-corpus sweep.
const CORPUS_REPS: usize = 5;

/// Corpus size of the incremental keystroke sweep when `--corpus-mb` was
/// not given: the acceptance workload is the 4 MiB generated script.
const INCREMENTAL_DEFAULT_MB: usize = 4;

/// [`run_with_lookahead`] plus the generated-corpus lex sweep and the
/// incremental keystroke sweep: when `corpus_mb > 0`, every requested
/// dialect is additionally scanned over a `corpus_mb`-MiB generated script
/// (`corpus_lex` section, best of [`CORPUS_REPS`] passes per substrate);
/// when `edits > 0`, every requested dialect gets `edits` single-token
/// edits applied through a recycled incremental session over the same-size
/// script ([`INCREMENTAL_DEFAULT_MB`] MiB when `corpus_mb` is 0).
pub fn run_full(
    dialects: &[Dialect],
    iters: usize,
    lookahead: Option<usize>,
    corpus_mb: usize,
    edits: usize,
) -> String {
    let mut reports = Vec::new();
    for &d in dialects {
        for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
            reports.push(match lookahead {
                Some(k) => bench_pair_with_lookahead(d, mode, iters, k),
                None => bench_pair(d, mode, iters),
            });
        }
    }
    let corpus: Vec<CorpusLexReport> = if corpus_mb > 0 {
        dialects.iter().map(|&d| bench_lex_corpus(d, corpus_mb, CORPUS_REPS)).collect()
    } else {
        Vec::new()
    };
    let incremental: Vec<IncrementalReport> = if edits > 0 {
        let mb = if corpus_mb > 0 { corpus_mb } else { INCREMENTAL_DEFAULT_MB };
        dialects
            .iter()
            .flat_map(|&d| {
                [EngineMode::Backtracking, EngineMode::Ll1Table]
                    .map(|mode| bench_incremental(d, mode, mb, edits))
            })
            .collect()
    } else {
        Vec::new()
    };
    let doc = to_json_full(iters, &reports, &corpus, &incremental);
    validate(&doc).unwrap_or_else(|e| panic!("bench runner emitted invalid JSON: {e}"));
    doc
}

/// Check a bench document against schema `sqlweave-bench-parser/v8`.
///
/// Used both by [`run`] before returning and by the CI smoke step to gate
/// on the artifact it just produced.
pub fn validate(doc: &str) -> Result<(), String> {
    let v: Value = json::parse(doc).map_err(|e| e.to_string())?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != "sqlweave-bench-parser/v8" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    v.get("iters").and_then(Value::as_num).ok_or("missing \"iters\"")?;
    let results = v
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing \"results\"")?;
    if results.is_empty() {
        return Err("empty \"results\"".to_string());
    }
    for r in results {
        for key in ["dialect", "engine"] {
            r.get(key).and_then(Value::as_str).ok_or(format!("result missing {key:?}"))?;
        }
        for key in [
            "statements",
            "tokens",
            "bytes",
            "byte_classes",
            "decision_table_hits",
            "backtracks",
            "failure_memo_hits",
        ] {
            r.get(key).and_then(Value::as_num).ok_or(format!("result missing {key:?}"))?;
        }
        let rate = r
            .get("backtrack_rate")
            .and_then(Value::as_num)
            .ok_or("result missing \"backtrack_rate\"")?;
        if !rate.is_finite() || rate < 0.0 {
            return Err("result has non-finite \"backtrack_rate\"".to_string());
        }
        let apis = r
            .get("apis")
            .and_then(Value::as_arr)
            .ok_or("result missing \"apis\"")?;
        if apis.iter().all(|a| a.get("api").and_then(Value::as_str) != Some("seed_cst")) {
            return Err("result lacks the seed_cst baseline".to_string());
        }
        for a in apis {
            a.get("api").and_then(Value::as_str).ok_or("api entry missing \"api\"")?;
            for key in ["statements_per_sec", "tokens_per_sec", "speedup_vs_seed"] {
                let n = a
                    .get(key)
                    .and_then(Value::as_num)
                    .ok_or(format!("api entry missing {key:?}"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!("api entry has non-finite {key:?}"));
                }
            }
        }
        // The lex section is empty on engine rows that don't carry it,
        // but when present it must include the production scanner and its
        // speedup anchor.
        let lex = r
            .get("lex")
            .and_then(Value::as_arr)
            .ok_or("result missing \"lex\"")?;
        if !lex.is_empty() {
            // v6: the production `vector` scanner must be present
            // alongside its compiled fallback and the interval anchor.
            for name in ["vector", "compiled", "interval"] {
                if lex.iter().all(|l| l.get("scanner").and_then(Value::as_str) != Some(name)) {
                    return Err(format!("lex section lacks the {name:?} scanner"));
                }
            }
        }
        for l in lex {
            l.get("scanner").and_then(Value::as_str).ok_or("lex entry missing \"scanner\"")?;
            for key in ["tokens_per_sec", "mbytes_per_sec", "speedup_vs_interval"] {
                let n = l
                    .get(key)
                    .and_then(Value::as_num)
                    .ok_or(format!("lex entry missing {key:?}"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!("lex entry has non-finite {key:?}"));
                }
            }
        }
        // v4: every row carries the recovery section.
        let recovery = r.get("recovery").ok_or("result missing \"recovery\"")?;
        for key in ["scripts", "errors", "scripts_per_sec", "clean_overhead"] {
            let n = recovery
                .get(key)
                .and_then(Value::as_num)
                .ok_or(format!("recovery section missing {key:?}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("recovery section has non-finite {key:?}"));
            }
        }
        // v5: every row carries the sema section (v7 adds the token-text
        // interning columns).
        let sema = r.get("sema").ok_or("result missing \"sema\"")?;
        for key in [
            "statements_per_sec",
            "overhead_vs_parse",
            "column_edges",
            "lexeme_bytes",
            "interned_bytes",
            "intern_ratio",
        ] {
            let n = sema
                .get(key)
                .and_then(Value::as_num)
                .ok_or(format!("sema section missing {key:?}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("sema section has non-finite {key:?}"));
            }
        }
    }
    // v6: the top-level corpus_lex section is always present (empty when
    // `--corpus-mb` was not given); non-empty entries carry the full
    // vector/compiled/interval ablation.
    let corpus_lex = v
        .get("corpus_lex")
        .and_then(Value::as_arr)
        .ok_or("missing \"corpus_lex\"")?;
    for c in corpus_lex {
        c.get("dialect").and_then(Value::as_str).ok_or("corpus_lex entry missing \"dialect\"")?;
        c.get("simd_level").and_then(Value::as_str).ok_or("corpus_lex entry missing \"simd_level\"")?;
        for key in ["mebibytes", "bytes", "tokens"] {
            c.get(key).and_then(Value::as_num).ok_or(format!("corpus_lex entry missing {key:?}"))?;
        }
        let scanners = c
            .get("scanners")
            .and_then(Value::as_arr)
            .ok_or("corpus_lex entry missing \"scanners\"")?;
        for name in ["vector", "compiled", "interval"] {
            if scanners.iter().all(|l| l.get("scanner").and_then(Value::as_str) != Some(name)) {
                return Err(format!("corpus_lex entry lacks the {name:?} scanner"));
            }
        }
        for l in scanners {
            for key in ["tokens_per_sec", "mbytes_per_sec", "speedup_vs_interval"] {
                let n = l
                    .get(key)
                    .and_then(Value::as_num)
                    .ok_or(format!("corpus_lex scanner missing {key:?}"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!("corpus_lex scanner has non-finite {key:?}"));
                }
            }
        }
    }
    // v7: the top-level incremental section is always present (empty when
    // `--edits` was not given); entries carry the keystroke-latency rows.
    // v8 splits the deferred tree build out as `materialize_us_p50` and
    // reports one row per dialect × engine pair (tagged `engine`).
    let incremental = v
        .get("incremental")
        .and_then(Value::as_arr)
        .ok_or("missing \"incremental\"")?;
    for i in incremental {
        i.get("dialect").and_then(Value::as_str).ok_or("incremental entry missing \"dialect\"")?;
        i.get("engine").and_then(Value::as_str).ok_or("incremental entry missing \"engine\"")?;
        for key in [
            "bytes",
            "tokens",
            "edits",
            "apply_edit_us_p50",
            "apply_edit_us_p99",
            "materialize_us_p50",
            "full_reparse_us_p50",
            "speedup_p50",
            "resync_bytes_p50",
            "resync_bytes_max",
            "reparsed_tokens_p50",
            "full_reparse_fallbacks",
        ] {
            let n = i
                .get(key)
                .and_then(Value::as_num)
                .ok_or(format!("incremental entry missing {key:?}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("incremental entry has non-finite {key:?}"));
            }
        }
    }
    Ok(())
}

/// Gate a fresh bench document against a checked-in baseline: the CI
/// regression tripwire behind `sqlweave bench --baseline FILE`.
///
/// For every dialect that appears in the `corpus_lex` section of **both**
/// documents, the `compiled` and `vector` scanners' `mbytes_per_sec` must
/// be at least `(1 - tolerance_pct/100)` of the baseline's, and the
/// vector-over-compiled speedup ratio must hold to the same tolerance.
/// The ratio check is the machine-portable signal (a vector path that
/// silently falls back to the table walk flattens it to ~1× on any
/// hardware); the absolute checks catch whole-scanner regressions when
/// baseline and CI hardware are comparable — the generous default
/// tolerance (25 %) exists to absorb runner-generation variance, not
/// run-to-run noise (use best-of reps for that).
///
/// When both documents carry a non-empty `incremental` section, the
/// incremental `speedup_p50` of every overlapping dialect is gated the
/// same way — it is a ratio of two times on the same machine, so it is
/// the portable signal that localized reparse silently degraded into
/// full-document work.
///
/// Returns the list of human-readable regressions (empty = pass), or an
/// `Err` when either document is malformed or there is no overlapping
/// dialect to compare — a gate that silently compares nothing is worse
/// than no gate.
pub fn compare_with_baseline(
    current: &str,
    baseline: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    fn corpus_rates(doc: &str, label: &str) -> Result<Vec<(String, f64, f64)>, String> {
        let v: Value = json::parse(doc).map_err(|e| format!("{label}: {e}"))?;
        let entries = v
            .get("corpus_lex")
            .and_then(Value::as_arr)
            .ok_or(format!("{label}: missing \"corpus_lex\""))?;
        let mut out = Vec::new();
        for c in entries {
            let dialect = c
                .get("dialect")
                .and_then(Value::as_str)
                .ok_or(format!("{label}: corpus_lex entry missing \"dialect\""))?;
            let rate = |name: &str| -> Result<f64, String> {
                c.get("scanners")
                    .and_then(Value::as_arr)
                    .into_iter()
                    .flatten()
                    .find(|s| s.get("scanner").and_then(Value::as_str) == Some(name))
                    .and_then(|s| s.get("mbytes_per_sec"))
                    .and_then(Value::as_num)
                    .filter(|n| n.is_finite() && *n > 0.0)
                    .ok_or(format!("{label}: {dialect} lacks a positive {name:?} rate"))
            };
            out.push((dialect.to_string(), rate("compiled")?, rate("vector")?));
        }
        Ok(out)
    }

    /// Per-pair incremental gate inputs: the headline `speedup_p50` plus
    /// two lower-is-better latency ratios normalized by the same
    /// document's from-scratch reparse (so machine speed cancels out):
    /// tail keystroke cost `apply_edit_us_p99 / full_reparse_us_p50` and
    /// deferred tree build `materialize_us_p50 / full_reparse_us_p50`.
    /// The ratios are `None` when the document predates the column
    /// (pre-v8 baselines lack the materialize split) — absent data
    /// compares nothing, it does not fail the gate. `pair` is
    /// `dialect/engine`; rows without an `engine` tag (pre-v8 baselines
    /// measured the backtracking session only) key as
    /// `dialect/backtracking` so they stay comparable.
    struct IncRow {
        pair: String,
        speedup: f64,
        p99_ratio: Option<f64>,
        mat_ratio: Option<f64>,
    }

    fn incremental_speedups(doc: &str, label: &str) -> Result<Vec<IncRow>, String> {
        let v: Value = json::parse(doc).map_err(|e| format!("{label}: {e}"))?;
        // Absent section (pre-v7 baselines) compares nothing, not an error.
        let Some(entries) = v.get("incremental").and_then(Value::as_arr) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for i in entries {
            let dialect = i
                .get("dialect")
                .and_then(Value::as_str)
                .ok_or(format!("{label}: incremental entry missing \"dialect\""))?;
            let engine =
                i.get("engine").and_then(Value::as_str).unwrap_or("backtracking");
            let pair = format!("{dialect}/{engine}");
            let speedup = i
                .get("speedup_p50")
                .and_then(Value::as_num)
                .filter(|n| n.is_finite() && *n > 0.0)
                .ok_or(format!("{label}: {pair} lacks a positive \"speedup_p50\""))?;
            let num = |key: &str| {
                i.get(key)
                    .and_then(Value::as_num)
                    .filter(|n| n.is_finite() && *n > 0.0)
            };
            let full = num("full_reparse_us_p50");
            let ratio = |key: &str| Some(num(key)? / full?);
            out.push(IncRow { pair, speedup, p99_ratio: ratio("apply_edit_us_p99"), mat_ratio: ratio("materialize_us_p50") });
        }
        Ok(out)
    }

    let floor = 1.0 - tolerance_pct / 100.0;
    let base = corpus_rates(baseline, "baseline")?;
    let cur = corpus_rates(current, "current")?;
    let base_inc = incremental_speedups(baseline, "baseline")?;
    let cur_inc = incremental_speedups(current, "current")?;
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (dialect, base_compiled, base_vector) in &base {
        let Some((_, cur_compiled, cur_vector)) = cur.iter().find(|(d, _, _)| d == dialect)
        else {
            continue;
        };
        compared += 1;
        let mut check = |what: &str, current: f64, baseline: f64| {
            if current < baseline * floor {
                regressions.push(format!(
                    "{dialect}: {what} regressed {:.1}% (baseline {baseline:.1}, current {current:.1}, tolerance {tolerance_pct:.0}%)",
                    (1.0 - current / baseline) * 100.0,
                ));
            }
        };
        check("compiled scanner MiB/s", *cur_compiled, *base_compiled);
        check("vector scanner MiB/s", *cur_vector, *base_vector);
        check(
            "vector/compiled speedup",
            cur_vector / cur_compiled,
            base_vector / base_compiled,
        );
    }
    for base_row in &base_inc {
        let pair = &base_row.pair;
        let Some(cur_row) = cur_inc.iter().find(|r| &r.pair == pair) else {
            continue;
        };
        compared += 1;
        if cur_row.speedup < base_row.speedup * floor {
            regressions.push(format!(
                "{pair}: incremental speedup_p50 regressed {:.1}% (baseline {:.1}, current {:.1}, tolerance {tolerance_pct:.0}%)",
                (1.0 - cur_row.speedup / base_row.speedup) * 100.0,
                base_row.speedup,
                cur_row.speedup,
            ));
        }
        // Lower-is-better latency-ratio gates: a regression is the current
        // ratio exceeding the baseline even after the tolerance discount.
        // Skipped (not failed) when either side lacks the column.
        let mut check_ratio = |what: &str, cur: Option<f64>, base: Option<f64>| {
            let (Some(cur), Some(base)) = (cur, base) else { return };
            if cur * floor > base {
                regressions.push(format!(
                    "{pair}: {what} regressed {:.1}% (baseline {base:.4}, current {cur:.4}, tolerance {tolerance_pct:.0}%)",
                    (cur / base - 1.0) * 100.0,
                ));
            }
        };
        check_ratio(
            "incremental apply_edit_us_p99 / full_reparse_us_p50",
            cur_row.p99_ratio,
            base_row.p99_ratio,
        );
        check_ratio(
            "incremental materialize_us_p50 / full_reparse_us_p50",
            cur_row.mat_ratio,
            base_row.mat_ratio,
        );
    }
    if compared == 0 {
        return Err(
            "no overlapping corpus_lex or incremental dialect between current and baseline"
                .to_string(),
        );
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pico_sweep_emits_valid_schema() {
        let doc = run(&[Dialect::Pico], 2);
        assert!(validate(&doc).is_ok());
        let v = json::parse(&doc).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2, "both engines reported");
        for r in results {
            assert_eq!(r.get("dialect").unwrap().as_str(), Some("pico"));
            assert!(r.get("statements").unwrap().as_num().unwrap() > 0.0);
            assert!(r.get("bytes").unwrap().as_num().unwrap() > 0.0);
            assert!(r.get("byte_classes").unwrap().as_num().unwrap() > 1.0);
            assert_eq!(r.get("apis").unwrap().as_arr().unwrap().len(), 4);
            let lex = r.get("lex").unwrap().as_arr().unwrap();
            match r.get("engine").unwrap().as_str() {
                Some("backtracking") => {
                    assert_eq!(lex.len(), 4, "interval/compiled/vector/naive")
                }
                _ => assert!(lex.is_empty(), "lex section only on backtracking rows"),
            }
            let recovery = r.get("recovery").unwrap();
            assert!(recovery.get("scripts").unwrap().as_num().unwrap() > 0.0);
            assert!(recovery.get("errors").unwrap().as_num().unwrap() > 0.0);
            assert!(recovery.get("clean_overhead").unwrap().as_num().unwrap() > 0.0);
            let sema = r.get("sema").unwrap();
            assert!(sema.get("statements_per_sec").unwrap().as_num().unwrap() > 0.0);
            assert!(sema.get("overhead_vs_parse").unwrap().as_num().unwrap() > 0.0);
            // v7: token-text interning columns — interning can only shrink.
            let lexeme = sema.get("lexeme_bytes").unwrap().as_num().unwrap();
            let interned = sema.get("interned_bytes").unwrap().as_num().unwrap();
            assert!(lexeme > 0.0 && interned > 0.0 && interned <= lexeme);
            assert!(sema.get("intern_ratio").unwrap().as_num().unwrap() >= 1.0);
        }
        // No --edits requested: the v7 section is present but empty.
        assert!(v.get("incremental").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{").is_err());
        assert!(validate("{\"schema\":\"other/v9\"}").is_err());
        // v1..v7 documents (no dynamic counters / no lex stage / no
        // recovery section / no sema section / no vector row + corpus_lex
        // section / no incremental section + interning columns / no
        // materialize_us_p50 split) are rejected by name.
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v1\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v2\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v3\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v4\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v5\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v6\",\"iters\":1,\"results\":[]}").is_err());
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v7\",\"iters\":1,\"results\":[]}").is_err());
        // A v8 header with empty results is still rejected.
        assert!(validate("{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[]}").is_err());
        // Schema-valid wrapper but an api entry missing its baseline.
        assert!(validate(
            "{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"backtrack_rate\":0.0,\"apis\":[{\"api\":\"batch\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[],\"recovery\":{\"scripts\":1,\"errors\":1,\"scripts_per_sec\":1,\"clean_overhead\":1.0}}],\"corpus_lex\":[]}"
        )
        .is_err());
        // Counters present but the rate missing.
        assert!(validate(
            "{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"apis\":[{\"api\":\"seed_cst\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[],\"recovery\":{\"scripts\":1,\"errors\":1,\"scripts_per_sec\":1,\"clean_overhead\":1.0}}],\"corpus_lex\":[]}"
        )
        .is_err());
        // A non-empty lex section must anchor on the interval walker.
        assert!(validate(
            "{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"backtrack_rate\":0.0,\"apis\":[{\"api\":\"seed_cst\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[{\"scanner\":\"compiled\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":2}],\"recovery\":{\"scripts\":1,\"errors\":1,\"scripts_per_sec\":1,\"clean_overhead\":1.0}}],\"corpus_lex\":[]}"
        )
        .is_err());
        // v3 rows (no recovery section) fail even under a v4 header.
        assert!(validate(
            "{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"backtrack_rate\":0.0,\"apis\":[{\"api\":\"seed_cst\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[]}],\"corpus_lex\":[]}"
        )
        .is_err());
        // A recovery section with a missing field fails too.
        assert!(validate(
            "{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"backtrack_rate\":0.0,\"apis\":[{\"api\":\"seed_cst\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[],\"recovery\":{\"scripts\":1,\"errors\":1}}],\"corpus_lex\":[]}"
        )
        .is_err());
    }

    /// One shape-valid v8 engine row, shared by the section-shape tests.
    const VALID_RESULTS: &str = "{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"statements\":1,\"tokens\":2,\"bytes\":3,\"byte_classes\":4,\"decision_table_hits\":0,\"backtracks\":0,\"failure_memo_hits\":0,\"backtrack_rate\":0.0,\"apis\":[{\"api\":\"seed_cst\",\"statements_per_sec\":1,\"tokens_per_sec\":1,\"speedup_vs_seed\":1}],\"lex\":[],\"recovery\":{\"scripts\":1,\"errors\":1,\"scripts_per_sec\":1,\"clean_overhead\":1.0},\"sema\":{\"statements_per_sec\":1,\"overhead_vs_parse\":1.0,\"column_edges\":0,\"lexeme_bytes\":10,\"interned_bytes\":5,\"intern_ratio\":2.0}}";

    #[test]
    fn validate_checks_corpus_lex_shape() {
        // A shape-valid v8 document minus corpus_lex entirely is rejected…
        let wrap = |corpus: &str| {
            format!(
                "{{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{VALID_RESULTS}]{corpus},\"incremental\":[]}}"
            )
        };
        assert!(validate(&wrap("")).is_err(), "corpus_lex key is mandatory");
        assert!(validate(&wrap(",\"corpus_lex\":[]")).is_ok(), "empty section is fine");
        // …and a non-empty entry must carry the vector scanner.
        let no_vector = ",\"corpus_lex\":[{\"dialect\":\"pico\",\"mebibytes\":1,\"bytes\":1048576,\"tokens\":9,\"simd_level\":\"swar\",\"scanners\":[{\"scanner\":\"interval\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":1.0},{\"scanner\":\"compiled\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":1.0}]}]";
        assert!(validate(&wrap(no_vector)).is_err());
        let full = ",\"corpus_lex\":[{\"dialect\":\"pico\",\"mebibytes\":1,\"bytes\":1048576,\"tokens\":9,\"simd_level\":\"swar\",\"scanners\":[{\"scanner\":\"interval\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":1.0},{\"scanner\":\"compiled\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":1.0},{\"scanner\":\"vector\",\"tokens_per_sec\":1,\"mbytes_per_sec\":1,\"speedup_vs_interval\":1.0}]}]";
        assert!(validate(&wrap(full)).is_ok());
    }

    #[test]
    fn validate_checks_incremental_shape() {
        let wrap = |incremental: &str| {
            format!(
                "{{\"schema\":\"sqlweave-bench-parser/v8\",\"iters\":1,\"results\":[{VALID_RESULTS}],\"corpus_lex\":[]{incremental}}}"
            )
        };
        assert!(validate(&wrap("")).is_err(), "incremental key is mandatory");
        assert!(validate(&wrap(",\"incremental\":[]")).is_ok(), "empty section is fine");
        let full = ",\"incremental\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10.0,\"apply_edit_us_p99\":50.0,\"materialize_us_p50\":200.0,\"full_reparse_us_p50\":9000.0,\"speedup_p50\":900.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]";
        assert!(validate(&wrap(full)).is_ok());
        // An entry missing its headline ratio is rejected…
        let no_speedup = ",\"incremental\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10.0,\"apply_edit_us_p99\":50.0,\"materialize_us_p50\":200.0,\"full_reparse_us_p50\":9000.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]";
        assert!(validate(&wrap(no_speedup)).is_err());
        // …as is a v7-shaped row lacking the materialize split…
        let no_materialize = ",\"incremental\":[{\"dialect\":\"pico\",\"engine\":\"backtracking\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10.0,\"apply_edit_us_p99\":50.0,\"full_reparse_us_p50\":9000.0,\"speedup_p50\":900.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]";
        assert!(validate(&wrap(no_materialize)).is_err());
        // …as is one missing the dialect name…
        let no_dialect = ",\"incremental\":[{\"engine\":\"backtracking\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10.0,\"apply_edit_us_p99\":50.0,\"materialize_us_p50\":200.0,\"full_reparse_us_p50\":9000.0,\"speedup_p50\":900.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]";
        assert!(validate(&wrap(no_dialect)).is_err());
        // …as is a v8 row without its engine tag.
        let no_engine = ",\"incremental\":[{\"dialect\":\"pico\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10.0,\"apply_edit_us_p99\":50.0,\"materialize_us_p50\":200.0,\"full_reparse_us_p50\":9000.0,\"speedup_p50\":900.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]";
        assert!(validate(&wrap(no_engine)).is_err());
    }

    #[test]
    fn corpus_lex_sweep_reports_three_scanners() {
        let c = bench_lex_corpus(Dialect::Pico, 1, 1);
        assert_eq!(c.dialect, "pico");
        assert!(c.bytes >= 1024 * 1024, "{c:?}");
        assert!(c.tokens > 0);
        let names: Vec<&str> = c.scanners.iter().map(|l| l.scanner).collect();
        assert_eq!(names, ["interval", "compiled", "vector"]);
        assert!((c.scanners[0].speedup_vs_interval - 1.0).abs() < 1e-9);
        for l in &c.scanners {
            assert!(l.mbytes_per_sec.is_finite() && l.mbytes_per_sec > 0.0, "{l:?}");
        }
    }

    #[test]
    fn lex_stage_reports_all_four_scanners() {
        let (bytes, lex) = bench_lex_stage(Dialect::Pico, 1);
        assert!(bytes > 0);
        let names: Vec<&str> = lex.iter().map(|l| l.scanner).collect();
        assert_eq!(names, ["interval", "compiled", "vector", "naive"]);
        assert!((lex[0].speedup_vs_interval - 1.0).abs() < 1e-9);
        for l in &lex {
            assert!(l.tokens_per_sec.is_finite() && l.tokens_per_sec > 0.0, "{l:?}");
            assert!(l.mbytes_per_sec.is_finite() && l.mbytes_per_sec > 0.0, "{l:?}");
            assert!(l.speedup_vs_interval.is_finite() && l.speedup_vs_interval > 0.0, "{l:?}");
        }
    }

    /// Minimal document for [`compare_with_baseline`] — it only reads the
    /// `corpus_lex` section, so the rest of the schema can be absent.
    fn corpus_doc(entries: &[(&str, f64, f64, f64)]) -> String {
        let entries: Vec<String> = entries
            .iter()
            .map(|(d, interval, compiled, vector)| {
                format!(
                    "{{\"dialect\":\"{d}\",\"mebibytes\":4,\"bytes\":4194304,\"tokens\":9,\"simd_level\":\"swar\",\"scanners\":[{{\"scanner\":\"interval\",\"tokens_per_sec\":1,\"mbytes_per_sec\":{interval},\"speedup_vs_interval\":1.0}},{{\"scanner\":\"compiled\",\"tokens_per_sec\":1,\"mbytes_per_sec\":{compiled},\"speedup_vs_interval\":1.0}},{{\"scanner\":\"vector\",\"tokens_per_sec\":1,\"mbytes_per_sec\":{vector},\"speedup_vs_interval\":1.0}}]}}"
                )
            })
            .collect();
        format!("{{\"corpus_lex\":[{}]}}", entries.join(","))
    }

    #[test]
    fn baseline_compare_passes_within_tolerance() {
        let base = corpus_doc(&[("full", 70.0, 150.0, 340.0)]);
        // 20% slower across the board with a flat ratio: within 25%.
        let cur = corpus_doc(&[("full", 56.0, 120.0, 272.0)]);
        assert_eq!(compare_with_baseline(&cur, &base, 25.0).unwrap(), Vec::<String>::new());
        // Identical documents trivially pass.
        assert_eq!(compare_with_baseline(&base, &base, 25.0).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn baseline_compare_flags_compiled_regression() {
        let base = corpus_doc(&[("full", 70.0, 150.0, 340.0)]);
        let cur = corpus_doc(&[("full", 70.0, 100.0, 340.0)]); // compiled -33%
        let regressions = compare_with_baseline(&cur, &base, 25.0).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("compiled scanner")),
            "{regressions:?}"
        );
    }

    #[test]
    fn baseline_compare_flags_flattened_speedup() {
        // Vector path silently degraded to compiled speed: both absolute
        // vector MiB/s and the machine-portable ratio check fire.
        let base = corpus_doc(&[("full", 70.0, 150.0, 340.0)]);
        let cur = corpus_doc(&[("full", 70.0, 150.0, 155.0)]);
        let regressions = compare_with_baseline(&cur, &base, 25.0).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("vector/compiled speedup")),
            "{regressions:?}"
        );
        assert!(regressions.iter().any(|r| r.contains("vector scanner")), "{regressions:?}");
    }

    #[test]
    fn baseline_compare_requires_overlap_and_section() {
        let base = corpus_doc(&[("full", 70.0, 150.0, 340.0)]);
        let cur = corpus_doc(&[("pico", 85.0, 178.0, 590.0)]);
        assert!(compare_with_baseline(&cur, &base, 25.0).is_err(), "no shared dialect");
        assert!(compare_with_baseline("{}", &base, 25.0).is_err(), "missing corpus_lex");
        assert!(compare_with_baseline("nonsense", &base, 25.0).is_err(), "malformed JSON");
        // Extra baseline dialects are fine as long as one overlaps.
        let multi =
            corpus_doc(&[("pico", 85.0, 178.0, 590.0), ("full", 70.0, 150.0, 340.0)]);
        assert!(compare_with_baseline(&base, &multi, 25.0).unwrap().is_empty());
    }

    /// Minimal document carrying only the incremental section (plus the
    /// empty corpus_lex the comparator requires). Entries are
    /// `(dialect, speedup_p50, apply_edit_us_p99, materialize_us_p50)`
    /// for the backtracking engine against a fixed 9000 µs full reparse.
    fn incremental_doc(entries: &[(&str, f64, f64, f64)]) -> String {
        let entries: Vec<String> = entries
            .iter()
            .map(|(d, speedup, p99, mat)| {
                format!(
                    "{{\"dialect\":\"{d}\",\"engine\":\"backtracking\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10,\"apply_edit_us_p99\":{p99},\"materialize_us_p50\":{mat},\"full_reparse_us_p50\":9000,\"speedup_p50\":{speedup},\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}}"
                )
            })
            .collect();
        format!("{{\"corpus_lex\":[],\"incremental\":[{}]}}", entries.join(","))
    }

    #[test]
    fn baseline_compare_gates_incremental_speedup() {
        let base = incremental_doc(&[("core", 400.0, 50.0, 200.0)]);
        // Within tolerance: 20% below a 25% floor passes.
        let ok = incremental_doc(&[("core", 320.0, 50.0, 200.0)]);
        assert!(compare_with_baseline(&ok, &base, 25.0).unwrap().is_empty());
        // Localized reparse silently degraded toward full-document work.
        let bad = incremental_doc(&[("core", 120.0, 50.0, 200.0)]);
        let regressions = compare_with_baseline(&bad, &base, 25.0).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("incremental speedup_p50")),
            "{regressions:?}"
        );
        // Non-overlapping incremental dialects with no corpus rows either:
        // the gate refuses to compare nothing.
        let other = incremental_doc(&[("pico", 500.0, 50.0, 200.0)]);
        assert!(compare_with_baseline(&other, &base, 25.0).is_err());
        // A pre-v7 baseline without the section skips the incremental gate
        // but still needs a corpus overlap to compare at all.
        let pre_v7 = corpus_doc(&[("full", 70.0, 150.0, 340.0)]);
        assert!(compare_with_baseline(&base, &pre_v7, 25.0).is_err());
    }

    #[test]
    fn baseline_compare_gates_incremental_latency_ratios() {
        let base = incremental_doc(&[("core", 400.0, 50.0, 200.0)]);
        // Mild drift inside the 25% tolerance on both ratios passes.
        let ok = incremental_doc(&[("core", 400.0, 60.0, 240.0)]);
        assert!(compare_with_baseline(&ok, &base, 25.0).unwrap().is_empty());
        // Tail keystroke latency blowing up fires the p99 ratio gate even
        // though the median speedup looks unchanged.
        let slow_tail = incremental_doc(&[("core", 400.0, 500.0, 200.0)]);
        let regressions = compare_with_baseline(&slow_tail, &base, 25.0).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("apply_edit_us_p99")),
            "{regressions:?}"
        );
        // Materialization degrading toward full-reparse cost fires its gate.
        let slow_mat = incremental_doc(&[("core", 400.0, 50.0, 8000.0)]);
        let regressions = compare_with_baseline(&slow_mat, &base, 25.0).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("materialize_us_p50")),
            "{regressions:?}"
        );
        // A v7 baseline row without the materialize column skips that gate
        // (the p99 gate still runs off the shared columns).
        let v7_row = "{\"corpus_lex\":[],\"incremental\":[{\"dialect\":\"core\",\"bytes\":4194304,\"tokens\":9,\"edits\":64,\"apply_edit_us_p50\":10,\"apply_edit_us_p99\":50,\"full_reparse_us_p50\":9000,\"speedup_p50\":400.0,\"resync_bytes_p50\":30,\"resync_bytes_max\":90,\"reparsed_tokens_p50\":12,\"full_reparse_fallbacks\":0}]}";
        assert!(compare_with_baseline(&slow_mat, v7_row, 25.0).unwrap().is_empty());
        assert!(compare_with_baseline(&slow_tail, v7_row, 25.0)
            .unwrap()
            .iter()
            .any(|r| r.contains("apply_edit_us_p99")));
    }

    #[test]
    fn percentiles_use_nearest_rank_semantics() {
        // n=1: every percentile is the single sample.
        assert_eq!(percentile_f64(&[7.0], 0.5), 7.0);
        assert_eq!(percentile_f64(&[7.0], 0.99), 7.0);
        // n=2: ⌈0.5·2⌉−1 = 0 → the median is the LOWER sample (the old
        // `(p·n) as usize` truncation wrongly picked index 1), while p99
        // and p=1.0 take the upper.
        assert_eq!(percentile_f64(&[1.0, 9.0], 0.5), 1.0);
        assert_eq!(percentile_f64(&[1.0, 9.0], 0.99), 9.0);
        assert_eq!(percentile_f64(&[1.0, 9.0], 1.0), 9.0);
        // Odd length: the median is the exact middle element.
        assert_eq!(percentile_f64(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5), 3.0);
        // n=64 (the default --edits count): p99 is ⌈63.36⌉−1 = 63, the
        // maximum — not index 63.36 truncated to 63 by luck but the
        // nearest rank above 99% of the mass.
        let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
        assert_eq!(percentile_f64(&v, 0.99), 63.0);
        assert_eq!(percentile_f64(&v, 0.5), 31.0);
        // Mirrors for the usize flavour, plus the empty-slice guards.
        assert_eq!(percentile_usize(&[4, 8], 0.5), 4);
        assert_eq!(percentile_usize(&[], 0.5), 0);
        assert_eq!(percentile_f64(&[], 0.99), 0.0);
        // p=0 clamps to the minimum rather than underflowing.
        assert_eq!(percentile_f64(&[1.0, 9.0], 0.0), 1.0);
        assert_eq!(percentile_index(5, 0.0), 0);
    }

    #[test]
    fn incremental_bench_reports_positive_speedup() {
        // Tiny corpus (64 KiB, 8 edits) so the unit test stays fast; the
        // real ablation runs 4 MiB via `sqlweave bench --edits`.
        let r = bench_incremental_bytes(Dialect::Core, EngineMode::Backtracking, 64 * 1024, 8);
        assert_eq!(r.dialect, "core");
        assert_eq!(r.engine, "backtracking");
        assert!(r.bytes >= 64 * 1024, "{r:?}");
        assert!(r.tokens > 0 && r.edits == 8, "{r:?}");
        assert!(r.apply_edit_us_p50.is_finite() && r.apply_edit_us_p50 > 0.0, "{r:?}");
        assert!(r.apply_edit_us_p99 >= r.apply_edit_us_p50, "{r:?}");
        assert!(r.materialize_us_p50.is_finite() && r.materialize_us_p50 > 0.0, "{r:?}");
        assert!(r.full_reparse_us_p50 > 0.0, "{r:?}");
        assert!(r.speedup_p50.is_finite() && r.speedup_p50 > 0.0, "{r:?}");
        assert_eq!(r.full_reparse_fallbacks, 0, "single-token edits stay local: {r:?}");
        assert!(r.resync_bytes_max >= r.resync_bytes_p50, "{r:?}");
    }

    #[test]
    fn incremental_bench_covers_the_predictive_engine() {
        // The keystroke target holds per dialect × engine pair, so the
        // LL(1)-table session gets its own row — same locality guarantees.
        let r = bench_incremental_bytes(Dialect::Core, EngineMode::Ll1Table, 64 * 1024, 4);
        assert_eq!(r.engine, "ll1_table");
        assert!(r.apply_edit_us_p50 > 0.0 && r.speedup_p50 > 0.0, "{r:?}");
        assert_eq!(r.full_reparse_fallbacks, 0, "single-token edits stay local: {r:?}");
    }

    #[test]
    fn checked_in_baseline_is_comparable() {
        // The repo's own artifact must stay a usable baseline: comparing
        // it against itself parses, overlaps, and reports no regression.
        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_parser.json"
        ))
        .expect("checked-in BENCH_parser.json");
        validate(&doc).expect("checked-in artifact validates against v8");
        assert!(compare_with_baseline(&doc, &doc, 25.0).unwrap().is_empty());
    }

    #[test]
    fn seed_baseline_reports_unit_speedup() {
        let r = bench_pair(Dialect::Pico, EngineMode::Backtracking, 1);
        assert_eq!(r.apis[0].api, "seed_cst");
        assert!((r.apis[0].speedup_vs_seed - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backtracking_counters_populated() {
        // Tiny has two conflicted decisions (COUNT / SEMI), both resolved
        // by dispatch tables, so the default configuration hits the
        // tables and the LL(1) engine reports no speculation at all.
        let bt = bench_pair(Dialect::Tiny, EngineMode::Backtracking, 1);
        assert!(bt.decision_table_hits > 0, "{bt:?}");
        assert!(bt.backtrack_rate.is_finite() && bt.backtrack_rate >= 0.0);
        let ll1 = bench_pair(Dialect::Tiny, EngineMode::Ll1Table, 1);
        assert_eq!(ll1.decision_table_hits, 0);
        assert_eq!(ll1.backtracks, 0);
        assert_eq!(ll1.backtrack_rate, 0.0);
    }

    #[test]
    fn lookahead_ablation_changes_backtrack_rate() {
        // k=1 disables dispatch (the seed engine): every conflicted
        // decision speculates — core's corpus exercises the predicate
        // and NOT-tail conflicts on every WHERE clause. The default k=3
        // must hit tables instead and backtrack strictly less.
        let k1 = bench_pair_with_lookahead(Dialect::Core, EngineMode::Backtracking, 1, 1);
        assert_eq!(k1.decision_table_hits, 0);
        assert!(k1.backtracks > 0, "{k1:?}");
        let k3 = bench_pair_with_lookahead(Dialect::Core, EngineMode::Backtracking, 1, 3);
        assert!(k3.decision_table_hits > 0, "{k3:?}");
        assert!(k3.backtracks < k1.backtracks, "{k3:?} vs {k1:?}");
        assert!(k3.backtrack_rate < k1.backtrack_rate);
    }
}

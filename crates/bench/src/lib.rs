//! Workload generation and shared fixtures for the benchmark harness and
//! the experiment integration tests.
//!
//! Two workload sources:
//!
//! * [`corpus`] — curated statements per dialect, exercising each statement
//!   class the dialect supports (the "realistic usage" workload).
//! * [`generated`] — grammar-driven random sentences sampled from the
//!   dialect's *own composed grammar* (seeded, reproducible), the
//!   stress/sweep workload.
//!
//! Parsers are cached per `(dialect, engine)` in [`parser`] because full
//! composition takes tens of milliseconds and benches/tests request them
//! repeatedly.

pub mod corpus;
pub mod runner;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlweave_core::pipeline::Composed;
use sqlweave_dialects::Dialect;
use sqlweave_grammar::sentence::SentenceGenerator;
use sqlweave_parser_rt::engine::{EngineMode, Parser};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Cached composed artifacts per dialect.
pub fn composed(dialect: Dialect) -> &'static Composed {
    static CACHE: OnceLock<Mutex<HashMap<&'static str, &'static Composed>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    map.entry(dialect.name()).or_insert_with(|| {
        Box::leak(Box::new(
            dialect
                .composed()
                .unwrap_or_else(|e| panic!("compose {}: {e}", dialect.name())),
        ))
    })
}

/// Cached parser per dialect and engine mode.
pub fn parser(dialect: Dialect, mode: EngineMode) -> &'static Parser {
    // Keyed on `EngineMode` itself (it derives `Hash`): a projection like
    // `matches!(mode, EngineMode::Ll1Table)` would silently collide two
    // modes into one cache slot the day a third engine is added.
    static CACHE: OnceLock<Mutex<HashMap<(&'static str, EngineMode), &'static Parser>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    let key = (dialect.name(), mode);
    map.entry(key).or_insert_with(|| {
        Box::leak(Box::new(
            dialect
                .parser_with_mode(mode)
                .unwrap_or_else(|e| panic!("parser {}: {e}", dialect.name())),
        ))
    })
}

/// Curated statements every parser of the given dialect must accept.
pub fn corpus(dialect: Dialect) -> Vec<&'static str> {
    let pico = vec![
        "SELECT a FROM t",
        "SELECT a, b, c FROM t",
        "SELECT * FROM t WHERE a = 1",
        "SELECT a FROM t WHERE a < 10 AND b = 2 AND c > 3",
        "SELECT balance FROM accounts WHERE owner = 4711",
    ];
    let tiny = vec![
        "SELECT nodeid, light FROM sensors",
        "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid",
        "SELECT COUNT(*) FROM sensors WHERE temp > 30 EPOCH DURATION 1024",
        "SELECT nodeid FROM sensors SAMPLE PERIOD 2048",
        "SELECT MAX(light) FROM sensors WHERE deck = 6 LIFETIME 30",
    ];
    let scql = vec![
        "CREATE TABLE purse (id INT NOT NULL, balance DECIMAL(8, 2))",
        "INSERT INTO purse VALUES (1, 100)",
        "UPDATE purse SET balance = 50 WHERE id = 1",
        "DELETE FROM purse WHERE id = 1",
        "SELECT balance FROM purse WHERE id = 1",
        "GRANT SELECT ON purse TO PUBLIC",
        "REVOKE UPDATE ON purse FROM clerk",
    ];
    let core = vec![
        "SELECT DISTINCT a, b AS bee FROM t1, t2 WHERE a = b",
        "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y WHERE u.z IS NOT NULL",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
        "SELECT a FROM (SELECT b FROM u) AS v WHERE a IN (1, 2, 3)",
        "SELECT x FROM t WHERE x BETWEEN 1 AND 10 OR y LIKE 'abc%'",
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
        "UPDATE t SET a = a + 1, b = DEFAULT WHERE c NOT IN (4, 5)",
        "DELETE FROM t WHERE a BETWEEN 1 AND 10",
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) DEFAULT 'x' NOT NULL, CONSTRAINT fk FOREIGN KEY (id) REFERENCES u (uid) ON DELETE CASCADE)",
        "DROP TABLE t CASCADE",
        "START TRANSACTION ISOLATION LEVEL SERIALIZABLE, READ WRITE",
        "SAVEPOINT sp1",
        "ROLLBACK TO SAVEPOINT sp1",
        "COMMIT WORK",
    ];
    let warehouse = vec![
        "SELECT region, SUM(sales) FROM facts GROUP BY ROLLUP (region, yr)",
        "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 OFFSET 100 ROWS FETCH FIRST 10 ROWS ONLY",
        "WITH RECURSIVE r AS (SELECT a FROM t) SELECT * FROM r",
        "SELECT CASE WHEN margin > 0 THEN 'profit' ELSE 'loss' END FROM facts",
        "SELECT CAST(total AS DECIMAL(12, 2)) FROM facts",
        "SELECT t.* FROM t WHERE EXISTS (SELECT u.x FROM u WHERE u.x = t.x)",
        "SELECT a FROM f GROUP BY GROUPING SETS (a, ROLLUP (b, c))",
        "SELECT a FROM t WHERE a = ANY (SELECT b FROM u)",
        "CREATE VIEW v (a, b) AS SELECT x, y FROM t WITH CHECK OPTION",
        "SELECT EXTRACT(YEAR FROM d), CURRENT_TIMESTAMP FROM t",
        "SELECT w FROM t WINDOW win AS (PARTITION BY a ORDER BY b ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)",
        "SELECT RANK() OVER (PARTITION BY region ORDER BY sales) FROM f",
        "SELECT STDDEV_POP(x), VAR_SAMP(y) FROM t GROUP BY g",
        "SELECT a FROM t WHERE b IS NOT UNKNOWN",
    ];
    let full_extra = vec![
        "MERGE INTO t USING u ON t.a = u.a WHEN MATCHED THEN UPDATE SET b = 1 WHEN NOT MATCHED THEN INSERT (a, b) VALUES (1, 2)",
        "CREATE SCHEMA s AUTHORIZATION admin",
        "CREATE DOMAIN money AS DECIMAL(10, 2) DEFAULT 0 CHECK (v >= 0)",
        "ALTER TABLE t ADD COLUMN c BOOLEAN",
        "GRANT SELECT, UPDATE ON TABLE t TO u1, u2 WITH GRANT OPTION",
        "SET SESSION AUTHORIZATION admin",
        "DECLARE c1 INSENSITIVE SCROLL CURSOR WITH HOLD FOR SELECT a FROM t",
        "FETCH ABSOLUTE 10 FROM c1",
        "SELECT SUBSTRING(name FROM 1 FOR 3) || '…no…' FROM t",
        "SELECT INTERVAL '1' DAY, DATE '2026-07-04' FROM t",
        "CREATE GLOBAL TEMPORARY TABLE tt (xs INTEGER ARRAY[8])",
        "SELECT a FROM t WHERE x IS DISTINCT FROM y",
        "SELECT LN(x), EXP(y), ROW_NUMBER() OVER (ORDER BY x) FROM t",
        "CREATE TABLE seq (id INTEGER GENERATED ALWAYS AS IDENTITY PRIMARY KEY, v SMALLINT)",
    ];
    match dialect {
        Dialect::Pico => pico,
        Dialect::Tiny => tiny,
        Dialect::Scql => scql,
        Dialect::Core => core,
        Dialect::Warehouse => {
            let mut v = core.clone();
            v.extend(warehouse);
            v
        }
        Dialect::Full => {
            let mut v = core;
            v.extend(warehouse);
            v.extend(full_extra);
            v
        }
    }
}

/// Deterministically corrupted multi-statement scripts — the error-density
/// workload behind the recovery bench column (Experiment B7) and the
/// recovery differential suite.
///
/// Corpus statements are grouped three to a script (`; `-joined) and one
/// statement per script is corrupted by duplicating its leading keyword
/// (`SELECT SELECT …`), which no dialect accepts; the corrupted slot
/// rotates with the script index so errors land at the start, middle, and
/// end of scripts. Pure index arithmetic, no RNG: the same dialect always
/// yields byte-identical scripts.
pub fn faulty_corpus(dialect: Dialect) -> Vec<String> {
    fn corrupt(stmt: &str) -> String {
        match stmt.split_once(' ') {
            Some((head, rest)) => format!("{head} {head} {rest}"),
            None => format!("{stmt} {stmt}"),
        }
    }
    corpus(dialect)
        .chunks(3)
        .enumerate()
        .map(|(i, chunk)| {
            let bad = i % chunk.len();
            let stmts: Vec<String> = chunk
                .iter()
                .enumerate()
                .map(|(j, s)| if j == bad { corrupt(s) } else { (*s).to_string() })
                .collect();
            stmts.join("; ")
        })
        .collect()
}

/// A statement each *other* dialect accepts but this one must reject
/// (feature-boundary witnesses for the dialect matrix).
pub fn rejection_witness(dialect: Dialect) -> Option<&'static str> {
    match dialect {
        Dialect::Pico => Some("SELECT a FROM t ORDER BY a"),
        Dialect::Tiny => Some("SELECT a AS alias FROM t"),
        Dialect::Scql => Some("COMMIT"),
        Dialect::Core => Some("SELECT a FROM t UNION SELECT b FROM u"),
        Dialect::Warehouse => Some("MERGE INTO t USING u ON a = b WHEN MATCHED THEN UPDATE SET x = 1"),
        Dialect::Full => None,
    }
}

/// Generate `n` random sentences from the dialect's composed grammar.
pub fn generated(dialect: Dialect, seed: u64, n: usize, max_depth: usize) -> Vec<String> {
    let composed = composed(dialect);
    let generator = SentenceGenerator::new(&composed.grammar, &composed.tokens)
        .unwrap_or_else(|e| panic!("generator {}: {e}", dialect.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| generator.generate(&mut rng, max_depth)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_accepted_by_their_dialects() {
        for d in Dialect::ALL {
            let p = parser(d, EngineMode::Backtracking);
            for stmt in corpus(d) {
                if let Err(e) = p.parse(stmt) {
                    panic!("{} rejected corpus statement {stmt:?}: {e}", d.name());
                }
            }
        }
    }

    #[test]
    fn rejection_witnesses_rejected() {
        for d in Dialect::ALL {
            if let Some(stmt) = rejection_witness(d) {
                let p = parser(d, EngineMode::Backtracking);
                assert!(p.parse(stmt).is_err(), "{} accepted witness {stmt:?}", d.name());
            }
        }
    }

    #[test]
    fn generated_sentences_parse() {
        for d in Dialect::ALL {
            let p = parser(d, EngineMode::Backtracking);
            for s in generated(d, 7, 50, 9) {
                if let Err(e) = p.parse(&s) {
                    panic!("{} rejected its own sentence {s:?}: {e}", d.name());
                }
            }
        }
    }

    #[test]
    fn faulty_corpus_is_deterministic_and_every_script_errors() {
        for d in Dialect::ALL {
            let scripts = faulty_corpus(d);
            assert!(!scripts.is_empty(), "{}", d.name());
            assert_eq!(scripts, faulty_corpus(d), "{}", d.name());
            let p = parser(d, EngineMode::Backtracking);
            let mut s = p.session();
            for script in &scripts {
                let outcome = s.parse_resilient(script);
                assert!(!outcome.errors.is_empty(), "{}: {script:?}", d.name());
            }
        }
    }

    #[test]
    fn generated_sentences_are_reproducible() {
        assert_eq!(generated(Dialect::Core, 42, 10, 8), generated(Dialect::Core, 42, 10, 8));
        assert_ne!(generated(Dialect::Core, 42, 10, 8), generated(Dialect::Core, 43, 10, 8));
    }
}

//! Deterministic multi-megabyte corpus factory — the honest lex workload.
//!
//! The curated [`crate::corpus`] statements are a *coverage* workload:
//! 5–42 statements, a few hundred bytes total. Throughput numbers measured
//! on them are dominated by loop warmup and cache residency, not by
//! steady-state scanning ("Parser Knows Best" makes exactly this point
//! about tiny hand-picked corpora). This module manufactures scripts of
//! arbitrary size from the dialect's *own composed grammar*: sentences are
//! sampled from [`SentenceGenerator`] (the same weights the fuzz/sweep
//! workloads use), joined into `;`-separated statement scripts, and
//! interleaved with comment lines when the dialect's token set defines a
//! comment skip rule. Everything is seeded and reproducible — the same
//! `(dialect, seed, size)` triple always yields a byte-identical corpus.

use crate::composed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlweave_dialects::Dialect;
use sqlweave_grammar::sentence::SentenceGenerator;
use std::fmt::Write as _;

/// Seed used by `sqlweave bench --corpus-mb` and the CI smoke run.
pub const DEFAULT_SEED: u64 = 0xC0FF_EE11;

/// Sentence depth budget: deep enough for nested subqueries and multi-way
/// joins so the token mix resembles the curated corpus, not single-clause
/// stubs.
const MAX_DEPTH: usize = 10;

/// Pattern-lexeme repetition range: identifiers, numbers, and string
/// literals sized like production schemas (`order_line_items`,
/// `cfg_retention_days`), not fuzz minimals (`q7`). Real-world scripts
/// average 8–12 bytes per identifier; the default fuzz range averages ~2.
const LEXEME_REPS: (usize, usize) = (8, 18);

/// Wrap generated statements at this column, continuation lines indented —
/// the whitespace shape of hand-written or formatter-emitted SQL.
const WRAP_WIDTH: usize = 72;

/// Generate a script of at least `target_bytes` bytes for `dialect`,
/// deterministically from `seed`.
///
/// The script is a sequence of generated statements, `;`-terminated when
/// the dialect defines a `SEMI` token, one per line, with a comment line
/// (exercising comment-run skipping) every few statements when the
/// dialect's token set has a `LINE_COMMENT` rule. The output always lexes
/// cleanly under the dialect's scanner — it is produced from the same
/// composed token set.
pub fn generate_script(dialect: Dialect, seed: u64, target_bytes: usize) -> String {
    let composed = composed(dialect);
    let generator = SentenceGenerator::new(&composed.grammar, &composed.tokens)
        .unwrap_or_else(|e| panic!("generator {}: {e}", dialect.name()))
        .with_lexeme_reps(LEXEME_REPS.0, LEXEME_REPS.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let has_semi = composed.tokens.get("SEMI").is_some();
    let has_comment = composed.tokens.get("LINE_COMMENT").is_some();

    let mut out = String::with_capacity(target_bytes + 256);
    let mut batch = 0usize;
    while out.len() < target_bytes {
        if has_comment && batch.is_multiple_of(8) {
            let _ = writeln!(
                out,
                "-- batch {batch}: generated workload, dialect {}",
                dialect.name()
            );
        }
        let stmt = generator.generate_wrapped(&mut rng, MAX_DEPTH, WRAP_WIDTH);
        out.push_str(&stmt);
        // The generator samples whole script sentences, which may already
        // carry their own trailing separator — appending another would
        // manufacture an empty statement (`;;`) the parsers diagnose,
        // poisoning every "clean document" workload built on this corpus.
        if has_semi && !stmt.trim_end().ends_with(';') {
            out.push(';');
        }
        out.push('\n');
        batch += 1;
    }
    out
}

/// [`generate_script`] sized in whole mebibytes with the default seed —
/// the entry point behind `sqlweave bench --corpus-mb N`.
pub fn generate_script_mb(dialect: Dialect, mebibytes: usize) -> String {
    generate_script(dialect, DEFAULT_SEED, mebibytes * 1024 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlweave_parser_rt::engine::EngineMode;

    #[test]
    fn corpus_is_deterministic_and_reaches_target_size() {
        let a = generate_script(Dialect::Core, 7, 64 * 1024);
        let b = generate_script(Dialect::Core, 7, 64 * 1024);
        assert_eq!(a, b);
        assert!(a.len() >= 64 * 1024);
        assert_ne!(a, generate_script(Dialect::Core, 8, 64 * 1024));
    }

    #[test]
    fn corpus_lexes_cleanly_on_every_dialect() {
        for d in Dialect::ALL {
            let script = generate_script(d, 3, 32 * 1024);
            let scanner = crate::parser(d, EngineMode::Backtracking).scanner();
            let toks = scanner
                .scan(&script)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert!(!toks.is_empty(), "{}", d.name());
            // and identically across all four substrates' hot pair
            assert_eq!(scanner.scan_compiled(&script).unwrap(), toks, "{}", d.name());
        }
    }

    #[test]
    #[ignore = "manual throughput probe; run with --release -- --ignored"]
    fn throughput_probe() {
        let d = Dialect::Full;
        let script = generate_script_mb(d, 4);
        let scanner = crate::parser(d, EngineMode::Backtracking).scanner();
        println!(
            "strategy={} level={} keywords={} bytes={}",
            scanner.vector_strategy(),
            scanner.simd_level().name(),
            scanner.keywords_hashed(),
            script.len()
        );
        let mut toks = Vec::new();
        for (name, f) in [
            ("vector", Box::new(|out: &mut Vec<_>| scanner.scan_into(&script, out).unwrap())
                as Box<dyn Fn(&mut Vec<sqlweave_lexgen::Token>)>),
            ("compiled", Box::new(|out: &mut Vec<_>| scanner.scan_compiled_into(&script, out).unwrap())),
            ("interval", Box::new(|out: &mut Vec<_>| scanner.scan_reference_into(&script, out).unwrap())),
        ] {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                toks.clear();
                let t = std::time::Instant::now();
                f(&mut toks);
                best = best.min(t.elapsed().as_secs_f64());
            }
            println!(
                "{name}: {:.1} MB/s ({} tokens)",
                script.len() as f64 / best / (1024.0 * 1024.0),
                toks.len()
            );
        }
    }

    #[test]
    #[ignore = "manual component probe"]
    fn component_probe() {
        let d = Dialect::Full;
        let scanner = crate::parser(d, EngineMode::Backtracking).scanner();
        let workloads: Vec<(&str, String)> = vec![
            // long identifier runs: one 40-char ident + space, repeated
            ("idents40", "abcdefgh_ijklmnop_qrstuvwx_yzabcdefg ".repeat(110_000)),
            // short idents: 4-char ident + space
            ("idents4", "abcd ".repeat(820_000)),
            // punctuation: "a<=b " style
            ("punct", "( ) , . + - * / < > = ; ".repeat(170_000)),
            // whitespace-heavy
            ("ws", "a        \n        b        \n        ".repeat(114_000)),
            // keywords
            ("keywords", "select from where group by having order ".repeat(100_000)),
        ];
        let mut toks = Vec::new();
        for (name, text) in &workloads {
            for (sub, f) in [
                ("vector", Box::new(|out: &mut Vec<_>| scanner.scan_into(text, out).unwrap())
                    as Box<dyn Fn(&mut Vec<sqlweave_lexgen::Token>)>),
                ("compiled", Box::new(|out: &mut Vec<_>| scanner.scan_compiled_into(text, out).unwrap())),
            ] {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    toks.clear();
                    let t = std::time::Instant::now();
                    f(&mut toks);
                    best = best.min(t.elapsed().as_secs_f64());
                }
                println!(
                    "{name:9} {sub:9} {:7.1} MB/s  ({} tokens, {} bytes)",
                    text.len() as f64 / best / (1024.0 * 1024.0),
                    toks.len(),
                    text.len()
                );
            }
        }
    }

    #[test]
    fn corpus_contains_comments_and_statement_separators() {
        let script = generate_script(Dialect::Full, 11, 16 * 1024);
        assert!(script.contains("-- batch"));
        assert!(script.contains(";\n"));
    }
}

#[cfg(test)]
mod dump {
    #[test]
    #[ignore]
    fn dump_sample() {
        let s = super::generate_script(sqlweave_dialects::Dialect::Full, super::DEFAULT_SEED, 2500);
        println!("{s}");
    }
}

#[cfg(test)]
mod stats {
    use super::*;
    use sqlweave_parser_rt::engine::EngineMode;
    #[test]
    #[ignore]
    fn corpus_stats() {
        let d = sqlweave_dialects::Dialect::Full;
        let script = generate_script_mb(d, 4);
        let scanner = crate::parser(d, EngineMode::Backtracking).scanner();
        let toks = scanner.scan(&script).unwrap();
        let total = script.len();
        let mut kw_bytes = 0usize; let mut kw_n = 0usize;
        let mut id_bytes = 0usize; let mut id_n = 0usize;
        let mut p1_bytes = 0usize; let mut p1_n = 0usize;
        let mut other_bytes = 0usize; let mut other_n = 0usize;
        for t in &toks {
            let name = scanner.name(t.kind);
            let len = t.end - t.start;
            if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') && script[t.start..t.end].chars().all(|c| c.is_ascii_alphabetic() || c == '_') && name.eq_ignore_ascii_case(&script[t.start..t.end]) {
                kw_bytes += len; kw_n += 1;
            } else if name == "IDENT" { id_bytes += len; id_n += 1; }
            else if len == 1 { p1_bytes += len; p1_n += 1; }
            else { other_bytes += len; other_n += 1; }
        }
        let tok_bytes = kw_bytes + id_bytes + p1_bytes + other_bytes;
        println!("total {total}  token-bytes {tok_bytes}  ws/skip-bytes {}", total - tok_bytes);
        println!("keywords: {kw_n} toks {kw_bytes} bytes avg {:.1}", kw_bytes as f64 / kw_n.max(1) as f64);
        println!("idents:   {id_n} toks {id_bytes} bytes avg {:.1}", id_bytes as f64 / id_n.max(1) as f64);
        println!("punct1:   {p1_n} toks {p1_bytes} bytes", );
        println!("other:    {other_n} toks {other_bytes} bytes avg {:.1}", other_bytes as f64 / other_n.max(1) as f64);
    }
}


#[cfg(test)]
mod probe_tmp2 {
    use super::*;
    use sqlweave_parser_rt::engine::EngineMode;
    #[test]
    #[ignore]
    fn probe_ll1_failures() {
        let d = sqlweave_dialects::Dialect::Core;
        let script = generate_script(d, 0xED17, 256 * 1024);
        let p = crate::parser(d, EngineMode::Ll1Table);
        let mut s = p.session();
        let o = s.parse_resilient(&script);
        println!("core ll1: {} errors", o.errors.len());
        for e in o.errors.iter().take(5) {
            let lo = e.at.saturating_sub(80);
            let hi = (e.at + 40).min(script.len());
            let lo = (lo..=e.at).rev().find(|&i| script.is_char_boundary(i)).unwrap();
            let hi = (hi..script.len().min(hi+4)).find(|&i| script.is_char_boundary(i)).unwrap_or(script.len());
            println!("--- at {} ({}:{}): {}", e.at, e.line, e.column, format!("expected {:?} found {:?}", e.expected, e.found));
            println!("    ...{}", &script[lo..hi].replace('\n', " "));
        }
    }
}

//! Golden-file test: the composed grammar of the worked-example dialect is
//! pinned to `tests/golden/worked_example.grammar`. Any change to the
//! feature decomposition or the composition rules that alters this grammar
//! must update the golden file deliberately:
//!
//! ```sh
//! cargo run -p sqlweave-cli -- compose query_statement select_sublist \
//!     set_quantifier all distinct where > tests/golden/worked_example.grammar
//! ```

use sqlweave::grammar::dsl::parse_grammar;
use sqlweave::grammar::print::to_dsl;
use sqlweave::sql::catalog;

const FEATURES: [&str; 6] = [
    "query_statement",
    "select_sublist",
    "set_quantifier",
    "all",
    "distinct",
    "where",
];

fn composed_dsl() -> String {
    let cat = catalog();
    let config = cat.complete(FEATURES).unwrap();
    let composed = cat.pipeline().compose(&config).unwrap();
    to_dsl(&composed.grammar)
}

#[test]
fn worked_example_grammar_matches_golden_file() {
    let expected = include_str!("golden/worked_example.grammar");
    let actual = composed_dsl();
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "composed grammar drifted from the golden file; if intentional, \
         regenerate it (see the module docs)"
    );
}

#[test]
fn golden_file_is_valid_dsl() {
    let g = parse_grammar(include_str!("golden/worked_example.grammar")).unwrap();
    assert_eq!(g.start(), "sql_script");
    // and printing the parsed golden file reproduces it (printer round-trip
    // at the whole-dialect scale)
    assert_eq!(to_dsl(&g).trim(), include_str!("golden/worked_example.grammar").trim());
}

#[test]
fn composition_is_deterministic() {
    // Composing the same configuration twice yields byte-identical DSL.
    assert_eq!(composed_dsl(), composed_dsl());
}

#[test]
fn tiny_dialect_grammar_matches_golden_file() {
    // The TinySQL dialect grammar, pinned. Regenerate with:
    //   cargo run -p sqlweave-cli -- compose $(tr '\n' ' ' <<< "...tiny seeds...")
    // or simply: see tests/golden/README for the regeneration command.
    let expected = include_str!("golden/tiny.grammar");
    let composed = sqlweave::dialects::Dialect::Tiny.composed().unwrap();
    let actual = to_dsl(&composed.grammar);
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "tiny dialect grammar drifted from the golden file"
    );
}

//! Family-based certification, end to end: the seeded interaction defect
//! that per-dialect linting *provably* cannot see, plus cross-checks between
//! exact counting, enumeration, and the certify pass on the real catalog.

use sqlweave::compose::pipeline::Pipeline;
use sqlweave::compose::registry::FeatureRegistry;
use sqlweave::feature_model::complete::complete;
use sqlweave::feature_model::count::{
    enumerate_configurations, try_count_configurations, MAX_SPLIT_FEATURES,
};
use sqlweave::feature_model::{Configuration, FeatureId, FeatureModel, ModelBuilder};
use sqlweave::lint::certify::{certify_scope, CertifyOptions, FamilyScope};
use sqlweave::lint::{lint_all_dialects, lint_composed, Code, Severity};
use sqlweave::sql::catalog;

/// The seeded product line: `alpha` and `beta` are both optional, both
/// preset dialects pick exactly one of them, and their token definitions
/// shadow each other — a defect that exists only in the (valid, never
/// shipped) configurations selecting both.
fn seeded_family() -> (FeatureModel, FeatureRegistry) {
    let mut b = ModelBuilder::new("mini");
    let r = b.root();
    b.mandatory(r, "base");
    b.optional(r, "alpha");
    b.optional(r, "beta");
    b.optional(r, "gamma");
    let model = b.build().unwrap();

    let mut reg = FeatureRegistry::new();
    reg.register("base", "grammar base; s : CORE ;", "tokens base; CORE = kw;")
        .unwrap();
    reg.register(
        "alpha",
        "grammar alpha; s : ALPHA ;",
        "tokens alpha; ALPHA = /ab/;",
    )
    .unwrap();
    reg.register(
        "beta",
        "grammar beta; s : BETA CORE ;",
        "tokens beta; BETA = /ab/;",
    )
    .unwrap();
    reg.register("gamma", "", "").unwrap();
    (model, reg)
}

fn preset(model: &FeatureModel, extra: &str) -> Configuration {
    complete(model, &Configuration::of(["mini", extra])).unwrap()
}

#[test]
fn per_dialect_lint_misses_the_interaction_defect() {
    // Both presets compose and lint clean on the exact codes certify
    // aggregates — the sweep over shipped dialects has no way to see the
    // alpha+beta collision.
    let (model, reg) = seeded_family();
    for extra in ["alpha", "beta"] {
        let composed = Pipeline::new(&model, &reg)
            .with_start("s")
            .with_name(extra)
            .compose(&preset(&model, extra))
            .unwrap();
        let report = lint_composed(&composed);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::ShadowedTokenRule),
            "preset `{extra}` must not show the collision: {report:?}"
        );
    }
}

#[test]
fn certify_reports_the_defect_with_its_presence_condition() {
    let (model, reg) = seeded_family();
    let scope = FamilyScope {
        subject: "mini".to_string(),
        model: &model,
        registry: &reg,
        start: "s".to_string(),
        scope_model: model.subtree(FeatureId::ROOT),
        base: Configuration::new(),
    };
    let baselines = [preset(&model, "alpha"), preset(&model, "beta")];
    let cert = certify_scope(&scope, &baselines, &CertifyOptions::default());

    // The whole 8-configuration space is covered exactly.
    assert!(cert.exact);
    assert_eq!(cert.total, Some(8));
    assert_eq!(cert.analyzed, 8);

    let f = cert
        .findings
        .iter()
        .find(|f| f.code == Code::InteractionTokenCollision)
        .expect("certify must surface the seeded defect");
    assert_eq!(f.underlying, Some(Code::ShadowedTokenRule));
    // The presence condition is minimized to exactly the interacting pair:
    // gamma appears in the sorted witness but cannot survive minimization.
    assert_eq!(f.presence, vec!["alpha", "beta"]);
    assert!(f.witness.contains("alpha") && f.witness.contains("beta"));
}

#[test]
fn real_catalog_preset_sweep_stays_green() {
    // The shipped dialects remain certifiable the ordinary way: the lint
    // sweep reports no error-severity diagnostics and nothing from the
    // SW5xx family (those codes only ever come from `certify`).
    let reports = lint_all_dialects().expect("all presets compose");
    for r in &reports {
        for d in &r.diagnostics {
            assert_ne!(d.severity(), Severity::Error, "{}: {d:?}", r.subject);
            assert!(
                d.code.id() < "SW500",
                "{}: SW5xx outside certify: {d:?}",
                r.subject
            );
        }
    }
}

#[test]
fn enumeration_agrees_with_exact_count_across_the_catalog() {
    // Satellite cross-check: wherever a catalog diagram's space is exactly
    // countable and small, enumeration must produce precisely that many
    // distinct valid configurations.
    let cat = catalog();
    let mut checked = 0;
    for model in cat.diagrams() {
        let Some(n) = try_count_configurations(&model, MAX_SPLIT_FEATURES) else {
            continue;
        };
        if n > 256 {
            continue;
        }
        let configs = enumerate_configurations(&model, 512);
        assert_eq!(
            configs.len() as u128,
            n,
            "diagram `{}`: enumeration disagrees with count",
            model.name()
        );
        for c in &configs {
            assert!(model.validate(c).is_ok(), "`{}`: invalid {c}", model.name());
        }
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} diagrams cross-checked");
}

#[test]
fn certify_exact_mode_covers_a_real_catalog_diagram() {
    use sqlweave::lint::certify::certify_catalog_model;
    let cert = certify_catalog_model("set_quantifier", &CertifyOptions::default())
        .expect("set_quantifier is a catalog diagram");
    assert!(cert.exact, "3 configurations fit the default limit");
    assert_eq!(cert.total, Some(3));
    assert_eq!(cert.analyzed + cert.unliftable, cert.enumerated);
    assert!(
        cert.findings.is_empty(),
        "set_quantifier certifies clean: {:?}",
        cert.findings
    );
}

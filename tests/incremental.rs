//! Incremental relex + reparse differential: `ParseSession::apply_edit`
//! must be observationally identical to a from-scratch `parse_resilient`
//! of the edited text — same CST, same rendered diagnostics, full token
//! coverage — across all dialects × both engines, over golden single
//! edits (mid-keyword, token-merging, comment-interior, statement-
//! boundary-spanning) and random edit scripts.

use proptest::prelude::*;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave::parser_rt::{CstNode, ParseSession, SyntaxElement, SyntaxNode, SyntaxTree};
use sqlweave_bench::{corpus, parser};

const MODES: [EngineMode; 2] = [EngineMode::Backtracking, EngineMode::Ll1Table];

/// How many times each scanned token index appears in the tree.
fn token_coverage(tree: &SyntaxTree<'_>) -> Vec<usize> {
    fn walk(node: SyntaxNode<'_, '_>, seen: &mut Vec<usize>) {
        for el in node.children() {
            match el {
                SyntaxElement::Token(t) => seen[t.index()] += 1,
                SyntaxElement::Node(n) => walk(n, seen),
            }
        }
    }
    let mut seen = vec![0usize; tree.tokens().len()];
    walk(tree.root(), &mut seen);
    seen
}

/// A small multi-statement script from the dialect's own corpus.
fn base_script(dialect: Dialect) -> String {
    corpus(dialect)[..5.min(corpus(dialect).len())].join("; ")
}

/// Apply one edit incrementally and assert identity with a from-scratch
/// resilient parse of the same edited text. The eager half of the
/// [`sqlweave::parser_rt::EditOutcome`] (diagnostics, stats) is checked
/// first, then the tree is materialized through the lazy handle.
fn check_edit(
    s: &mut ParseSession<'_>,
    oracle: &mut ParseSession<'_>,
    lo: usize,
    hi: usize,
    rep: &str,
    ctx: &str,
) {
    let (inc_cst, inc_errs): (CstNode, Vec<String>) = {
        let mut o = s.apply_edit(lo..hi, rep);
        let errs = o.errors.iter().map(|e| e.to_string()).collect();
        let tree = o.tree.get();
        assert!(
            token_coverage(&tree).iter().all(|&c| c == 1),
            "token coverage broken: {ctx}"
        );
        (tree.to_cst(), errs)
    };
    let text = s.document().to_string();
    let (full_cst, full_errs) = {
        let o = oracle.parse_resilient(&text);
        (o.tree.to_cst(), o.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>())
    };
    assert_eq!(inc_errs, full_errs, "diagnostics diverged: {ctx}\ntext: {text:?}");
    assert_eq!(inc_cst, full_cst, "tree diverged: {ctx}\ntext: {text:?}");
    let st = s.edit_stats();
    assert_eq!(st.total_tokens, full_cst.tokens().len(), "{ctx}");
}

/// Golden single-edit cases on every dialect × engine.
#[test]
fn golden_single_edits_match_full_reparse() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let ctx = |what: &str| format!("{} {mode:?} {what}", d.name());

            // mid-keyword edit: split FROM in two
            let text = base_script(d);
            s.open_document(&text);
            let at = text.find("FROM").expect("corpus has FROM") + 2;
            check_edit(&mut s, &mut oracle, at, at, " ", &ctx("mid-keyword split"));

            // token-merge edit: delete the whitespace before FROM so the
            // preceding token and `FROM` fuse into one identifier
            let text = base_script(d);
            s.open_document(&text);
            let at = text.find(" FROM").expect("corpus has FROM");
            check_edit(&mut s, &mut oracle, at, at + 1, "", &ctx("token merge"));

            // edit inside a block comment: token-preserving
            let text = format!("/* a comment */ {}", base_script(d));
            s.open_document(&text);
            check_edit(&mut s, &mut oracle, 5, 6, "X Y Z", &ctx("comment interior"));
        }
    }
}

/// Comment-interior edits must take the token-preserving fast path.
#[test]
fn comment_edit_is_token_preserving() {
    for d in Dialect::ALL {
        let p = parser(d, EngineMode::Backtracking);
        let mut s = p.session();
        let mut oracle = p.session();
        let text = format!("/* a comment */ {}", base_script(d));
        s.open_document(&text);
        check_edit(&mut s, &mut oracle, 3, 4, "XYZ", &format!("{} comment edit", d.name()));
        let st = s.edit_stats();
        assert!(!st.full_reparse, "{}: {st:?}", d.name());
        assert_eq!(st.reparsed_tokens, 0, "{}: {st:?}", d.name());
        assert_eq!(st.relexed_tokens, 0, "{}: {st:?}", d.name());
    }
}

/// An edit spanning a statement boundary (deleting the separator and both
/// its neighbours' edges) reparses locally and still matches.
#[test]
fn statement_boundary_spanning_edit_matches() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let text = base_script(d);
            s.open_document(&text);
            let semi = text.find(';').expect("multi-statement script");
            let lo = semi.saturating_sub(3);
            let hi = (semi + 4).min(text.len());
            check_edit(&mut s, &mut oracle, lo, hi, " ", &format!("{} {mode:?} cross-boundary", d.name()));
        }
    }
}

/// Single-token edits on a larger script stay local: the reparse window
/// is a small fraction of the document.
#[test]
fn single_token_edit_reparses_locally() {
    let d = Dialect::Core;
    let p = parser(d, EngineMode::Backtracking);
    let mut s = p.session();
    let mut oracle = p.session();
    let stmts = corpus(d);
    let text: Vec<String> = (0..30).map(|i| stmts[i % stmts.len()].to_string()).collect();
    let text = text.join(";\n");
    s.open_document(&text);
    let total = s.edit_stats().total_tokens;
    let at = text.len() / 2;
    let at = (at..text.len()).find(|&i| text.is_char_boundary(i)).unwrap();
    check_edit(&mut s, &mut oracle, at, at, " x ", "mid-document insert");
    let st = s.edit_stats();
    assert!(!st.full_reparse, "{st:?}");
    assert!(st.reparsed_tokens < total / 3, "window too large: {st:?} of {total}");
}

/// Boundary edits: empty documents, edits at byte 0 and at `len`,
/// zero-length inserts/deletes, and whole-document replacement all stay
/// identical to a from-scratch parse.
#[test]
fn boundary_edits_match_full_reparse() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let ctx = |what: &str| format!("{} {mode:?} {what}", d.name());

            // empty document: zero-length edit, then grow from nothing
            s.open_document("");
            check_edit(&mut s, &mut oracle, 0, 0, "", &ctx("empty no-op"));
            let stmt = corpus(d)[0];
            check_edit(&mut s, &mut oracle, 0, 0, stmt, &ctx("insert into empty"));

            // edit at byte 0 and at len
            let text = base_script(d);
            s.open_document(&text);
            check_edit(&mut s, &mut oracle, 0, 0, "X", &ctx("insert at 0"));
            let end = s.document().len();
            check_edit(&mut s, &mut oracle, end, end, " Y", &ctx("insert at len"));
            check_edit(&mut s, &mut oracle, 0, 1, "", &ctx("delete at 0"));
            let end = s.document().len();
            check_edit(&mut s, &mut oracle, end - 1, end, "", &ctx("delete at len"));

            // zero-length delete mid-document (a no-op edit)
            let mid = s.document().len() / 2;
            let mid = (0..=mid).rev().find(|&i| s.document().is_char_boundary(i)).unwrap();
            check_edit(&mut s, &mut oracle, mid, mid, "", &ctx("zero-length mid"));

            // whole-document replacement, then delete everything
            let end = s.document().len();
            let next = base_script(d);
            check_edit(&mut s, &mut oracle, 0, end, &next, &ctx("replace all"));
            let end = s.document().len();
            check_edit(&mut s, &mut oracle, 0, end, "", &ctx("delete all"));
        }
    }
}

/// Multi-byte UTF-8 straddling the damage region: edits adjacent to and
/// replacing multi-byte chars keep spans, diagnostics, and trees exact.
#[test]
fn multibyte_edits_around_damage_region_match() {
    for mode in MODES {
        let d = Dialect::Core;
        let p = parser(d, mode);
        let mut s = p.session();
        let mut oracle = p.session();
        let ctx = |what: &str| format!("{mode:?} {what}");

        // é (2 bytes), 中文 (3+3), 🦀 (4) — inside string literals where
        // the dialect lexes them, plus a bare lexical-error scalar.
        let text = "SELECT '🦀 中文' FROM t; SELECT é FROM u; SELECT 'x' FROM v";
        s.open_document(text);
        // replace the 4-byte scalar inside the literal
        let crab = s.document().find('🦀').unwrap();
        check_edit(&mut s, &mut oracle, crab, crab + 4, "zz", &ctx("replace 4-byte"));
        // insert a multi-byte scalar right at a token boundary
        let quote = s.document().find('\'').unwrap();
        check_edit(&mut s, &mut oracle, quote, quote, "中", &ctx("insert 3-byte at token edge"));
        // delete a span that straddles the lexical-error scalar
        let e_acc = s.document().find('é').unwrap();
        let hi = (e_acc + 2).min(s.document().len());
        check_edit(&mut s, &mut oracle, e_acc, hi, "🦀", &ctx("swap 2-byte error for 4-byte"));
        // and shrink it back to a single ascii byte
        let crab = s.document().find('🦀').unwrap();
        check_edit(&mut s, &mut oracle, crab, crab + 4, "w", &ctx("shrink 4-byte to ascii"));
    }
}

/// A same-length token-preserving splice that adds a newline (replacing a
/// comment character with `\n`) moves every later diagnostic down one line
/// without touching the token stream. The in-place diagnostic repair must
/// reposition them — a byte-delta-only check would leave the lines stale.
#[test]
fn token_preserving_newline_edit_repositions_later_diagnostics() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let text = format!("/* a */\nFROM FROM;\n{}", base_script(d));
            s.open_document(&text);
            let at = text.find('a').unwrap();
            check_edit(
                &mut s,
                &mut oracle,
                at,
                at + 1,
                "\n",
                &format!("{} {mode:?} newline-in-comment", d.name()),
            );
            let st = s.edit_stats();
            assert_eq!(st.relexed_tokens, 0, "{} {mode:?}: {st:?}", d.name());
            let o = s.try_document_outcome().expect("document open");
            assert!(!o.errors.is_empty(), "{} {mode:?}: scenario needs diagnostics", d.name());
        }
    }
}

/// A same-length splice that changes the *character* count (two-byte `é`
/// to two one-byte chars) shifts the column of every later diagnostic on
/// that line even though no byte position moves.
#[test]
fn same_length_multibyte_edit_shifts_same_line_columns() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let mut oracle = p.session();
            let text = format!("/* é */ FROM FROM;\n{}", base_script(d));
            s.open_document(&text);
            let at = text.find('é').unwrap();
            check_edit(
                &mut s,
                &mut oracle,
                at,
                at + 'é'.len_utf8(),
                "xy",
                &format!("{} {mode:?} multibyte same-length", d.name()),
            );
            let o = s.try_document_outcome().expect("document open");
            assert!(!o.errors.is_empty(), "{} {mode:?}: scenario needs diagnostics", d.name());
        }
    }
}

/// Outcomes on a lexically clean document share the session's maintained
/// diagnostic list by reference count instead of cloning it: delivery is
/// O(1) no matter how many diagnostics the document carries (the
/// predictive engine can hold thousands against a large script).
#[test]
fn outcomes_share_the_maintained_diagnostic_list() {
    let d = Dialect::Core;
    let p = parser(d, EngineMode::Ll1Table);
    let mut s = p.session();
    let text = format!("FROM FROM;\n{}", base_script(d));
    s.open_document(&text);
    let first = {
        let o = s.apply_edit(0..0, " ");
        assert!(!o.errors.is_empty(), "scenario needs diagnostics");
        std::sync::Arc::as_ptr(&o.errors)
    };
    let second = {
        let o = s.apply_edit(0..0, " ");
        std::sync::Arc::as_ptr(&o.errors)
    };
    assert_eq!(first, second, "per-edit delivery must not clone the diagnostic list");
}

/// The lazy outcome's eager diagnostics match a full reparse even when the
/// tree is never materialized between edits; a later materialization
/// catches up and still matches.
#[test]
fn diagnostics_stay_exact_without_materializing_trees() {
    let d = Dialect::Core;
    let p = parser(d, EngineMode::Backtracking);
    let mut s = p.session();
    let mut oracle = p.session();
    s.open_document(&base_script(d));
    let mut rng = XorShift(0xfeed_beef);
    for step in 0..24 {
        let (lo, hi, rep) = random_edit(&mut rng, s.document());
        let errs: Vec<String> = s
            .apply_edit(lo..hi, rep)
            .errors
            .iter()
            .map(|e| e.to_string())
            .collect();
        let text = s.document().to_string();
        let full: Vec<String> = oracle
            .parse_resilient(&text)
            .errors
            .iter()
            .map(|e| e.to_string())
            .collect();
        assert_eq!(errs, full, "step {step}: {lo}..{hi} := {rep:?}\ntext: {text:?}");
    }
    // one final materialization after the whole un-materialized script
    check_edit(&mut s, &mut oracle, 0, 0, "", "final catch-up");
}

/// Deterministic xorshift64* so edit scripts are reproducible from a seed.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const SNIPPETS: &[&str] = &[
    "",
    " ",
    ";",
    "; ",
    "SELECT",
    "FROM t",
    "WHERE",
    "x",
    "zz9",
    ", y",
    "(",
    ")",
    "'s'",
    "1",
    "*",
    "-- line\n",
    "/* block */",
    "/*",
    "é",
    "\n",
];

/// One random edit derived from the rng, clamped to char boundaries.
fn random_edit(rng: &mut XorShift, text: &str) -> (usize, usize, &'static str) {
    let len = text.len();
    let mut lo = rng.below(len + 1);
    let mut hi = (lo + rng.below(9).pow(2)).min(len);
    while !text.is_char_boundary(lo) {
        lo -= 1;
    }
    while !text.is_char_boundary(hi) {
        hi -= 1;
    }
    if hi < lo {
        std::mem::swap(&mut lo, &mut hi);
    }
    (lo, hi, SNIPPETS[rng.below(SNIPPETS.len())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random edit scripts across every dialect × engine: after each of
    /// 8 edits the incremental outcome matches a from-scratch resilient
    /// parse byte for byte.
    #[test]
    fn random_edit_scripts_match_full_reparse(seed in 0u64..u64::MAX) {
        for d in Dialect::ALL {
            for mode in MODES {
                let p = parser(d, mode);
                let mut s = p.session();
                let mut oracle = p.session();
                let mut rng = XorShift(seed ^ 0x9e37_79b9_7f4a_7c15);
                s.open_document(&base_script(d));
                for step in 0..8 {
                    let (lo, hi, rep) = random_edit(&mut rng, s.document());
                    check_edit(
                        &mut s,
                        &mut oracle,
                        lo,
                        hi,
                        rep,
                        &format!("{} {mode:?} seed {seed} step {step}: {lo}..{hi} := {rep:?}", d.name()),
                    );
                }
            }
        }
    }
}

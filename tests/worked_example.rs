//! Experiment T3 — the worked example of Section 3.2.
//!
//! "Suppose that we want to create a parser for the SELECT statement …
//! Specifically we want to implement a feature instance description of
//! {Query Specification, Select List, Select Sublist (with cardinality 1),
//! Table Expression} with the Table Expression feature instance
//! description {Table Expression, From, Table Reference (with cardinality
//! 1)}" — and then: "composing the sub-grammars for the Query
//! Specification feature …, the optional Set Quantifier feature … and the
//! optional Where feature … gives a grammar which can essentially parse a
//! SELECT statement with a single column from a single table with optional
//! set quantifier (DISTINCT or ALL) and optional where clause."

use sqlweave::feature_model::Configuration;
use sqlweave::sql::catalog;

/// The base instance of the worked example (plus the expression features
/// the select sublist needs to denote a column).
fn base_selection() -> Vec<&'static str> {
    vec![
        "query_statement",
        "query_expression",
        "query_specification",
        "select_list",
        "select_sublist",
        "derived_column",
        "table_expression",
        "from",
        "table_reference",
    ]
}

#[test]
fn base_instance_parses_single_column_single_table() {
    let cat = catalog();
    let pipeline = cat.pipeline_from("query_specification");
    let config = cat.complete(base_selection()).unwrap();
    let parser = pipeline.parser_for(&config).unwrap();

    // single column, single table
    assert!(parser.parse("SELECT a FROM t").is_ok());
    // the sublist cardinality [1..*] admits more columns
    assert!(parser.parse("SELECT a, b FROM t").is_ok());
    // nothing else was selected:
    assert!(parser.parse("SELECT DISTINCT a FROM t").is_err(), "set quantifier unselected");
    assert!(parser.parse("SELECT a FROM t WHERE a = b").is_err(), "where unselected");
    assert!(parser.parse("SELECT a FROM t, u").is_err(), "from list unselected");
    assert!(parser.parse("SELECT * FROM t").is_err(), "asterisk unselected");
    assert!(parser.parse("SELECT a AS x FROM t").is_err(), "alias unselected");
    assert!(parser.parse("SELECT a FROM t ORDER BY a").is_err(), "order by unselected");
}

#[test]
fn extended_instance_adds_quantifier_and_where() {
    let cat = catalog();
    let pipeline = cat.pipeline_from("query_specification");
    let mut features = base_selection();
    features.extend(["set_quantifier", "all", "distinct", "where", "comparison_predicate"]);
    let config = cat.complete(features).unwrap();
    let parser = pipeline.parser_for(&config).unwrap();

    // exactly the paper's description: optional quantifier, optional where
    assert!(parser.parse("SELECT a FROM t").is_ok());
    assert!(parser.parse("SELECT DISTINCT a FROM t").is_ok());
    assert!(parser.parse("SELECT ALL a FROM t").is_ok());
    assert!(parser.parse("SELECT a FROM t WHERE a = b").is_ok());
    assert!(parser.parse("SELECT DISTINCT a FROM t WHERE a < b").is_ok());
    // still scaled down:
    assert!(parser.parse("SELECT a FROM t GROUP BY a").is_err());
    assert!(parser.parse("SELECT a FROM t WHERE a = b OR c = d").is_err(), "boolean OR unselected");
}

#[test]
fn composition_trace_shows_rule_applications() {
    // The quantifier and where features merge into the base productions
    // (rule R4), the ALL/DISTINCT leaves replace the empty quantifier body
    // (rule R1 over the epsilon production) or append (R3).
    let cat = catalog();
    let pipeline = cat.pipeline_from("query_specification");
    let mut features = base_selection();
    features.extend(["set_quantifier", "all", "distinct", "where", "comparison_predicate"]);
    let config = cat.complete(features).unwrap();
    let composed = pipeline.compose(&config).unwrap();

    assert!(composed.trace.count("R4") >= 2, "\n{}", composed.trace.table());
    assert!(composed.trace.count("R3") >= 2, "\n{}", composed.trace.table());
    // The quantifier's two keyword alternatives both survive.
    let sq = composed.grammar.production("set_quantifier").unwrap();
    assert_eq!(sq.alternatives.len(), 2);
}

#[test]
fn composition_sequence_respects_requires() {
    let cat = catalog();
    let pipeline = cat.pipeline_from("query_specification");
    let mut features = base_selection();
    features.extend(["where", "comparison_predicate"]);
    let config = cat.complete(features).unwrap();
    let composed = pipeline.compose(&config).unwrap();
    let pos = |f: &str| {
        composed
            .sequence
            .iter()
            .position(|x| x == f)
            .unwrap_or_else(|| panic!("{f} not in sequence"))
    };
    // `where` requires `predicates`; the required feature composes first.
    assert!(pos("predicates") < pos("where"), "{:?}", composed.sequence);
    // parents before children (base before refinement)
    assert!(pos("query_specification") < pos("table_expression"));
    assert!(pos("table_expression") < pos("where"));
}

#[test]
fn unselecting_mandatory_feature_is_rejected() {
    let cat = catalog();
    let mut features = base_selection();
    features.retain(|f| *f != "from"); // drop the mandatory From
    let config = Configuration::of(features)
        .with("sql_2003")
        .with("common_elements")
        .with("data_statements");
    assert!(cat.model().validate(&config).is_err());
}

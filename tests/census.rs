//! Experiment T1 — the paper's Section 3.1 census claim:
//! "Overall 40 feature diagrams are obtained for SQL Foundation with more
//! than 500 features."
//!
//! The census counts features per diagram and sums across diagrams (nested
//! diagrams share features with their parents, exactly as the paper's
//! Figure 1 contains the Table Expression node that is also Figure 2's
//! concept). The per-diagram table is printed for EXPERIMENTS.md.

use sqlweave::feature_model::analysis::census;
use sqlweave::sql::{catalog, DIAGRAMS};

#[test]
fn forty_diagrams_five_hundred_features() {
    let cat = catalog();
    let diagrams = cat.diagrams();
    assert!(
        diagrams.len() >= 40,
        "paper claims 40 diagrams; we have {}",
        diagrams.len()
    );

    let mut total_features = 0usize;
    println!(
        "{:<28} {:>8} {:>9} {:>8} {:>8} {:>6} {:>11} {:>14}",
        "diagram", "features", "mandatory", "optional", "grouped", "depth", "constraints", "configurations"
    );
    for model in &diagrams {
        let c = census(model);
        total_features += c.features;
        let configs = c
            .configurations
            .map(|n| n.to_string())
            .unwrap_or_else(|| "(huge)".to_string());
        println!(
            "{:<28} {:>8} {:>9} {:>8} {:>8} {:>6} {:>11} {:>14}",
            c.diagram,
            c.features,
            c.mandatory,
            c.optional,
            c.grouped,
            c.depth,
            c.constraints,
            configs
        );
    }
    println!("TOTAL across {} diagrams: {} features", diagrams.len(), total_features);
    assert!(
        total_features > 500,
        "paper claims >500 features; we count {total_features}"
    );
}

#[test]
fn merged_model_is_healthy() {
    let cat = catalog();
    let model = cat.model();
    // Merged model holds a substantial unique-feature count too.
    assert!(model.len() >= 200, "unique features: {}", model.len());
    // No duplicate diagram roots.
    let mut names: Vec<&str> = DIAGRAMS.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), DIAGRAMS.len());
}

#[test]
fn every_diagram_admits_configurations() {
    let cat = catalog();
    for model in cat.diagrams() {
        // The whole-model diagram has too many cross-tree constraints for
        // exact counting; skip those.
        let Some(count) = sqlweave::feature_model::count::try_count_configurations(&model, 20)
        else {
            continue;
        };
        assert!(
            count > 0,
            "diagram `{}` is void ({} features)",
            model.name(),
            model.len()
        );
    }
}

#[test]
fn registry_covers_syntax_features() {
    // Every feature with a sub-grammar parses and has consistent tokens —
    // already enforced at registration; here we assert coverage breadth.
    let cat = catalog();
    let with_grammar = cat
        .model()
        .iter()
        .filter(|(_, f)| {
            cat.registry()
                .get(&f.name)
                .is_some_and(|a| a.grammar.is_some())
        })
        .count();
    assert!(
        with_grammar >= 120,
        "only {with_grammar} features carry sub-grammars"
    );
}

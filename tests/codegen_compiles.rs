//! The paper's final step is feeding the composed grammar to a parser
//! generator (ANTLR) to obtain parser *code*. This test closes the same
//! loop with our generator: compose the worked-example dialect, emit a
//! standalone Rust parser module, compile it with `rustc`, run it, and
//! check the accept/reject behaviour of the generated binary.

use sqlweave::parser_rt::codegen;
use sqlweave::sql::catalog;
use std::process::Command;

#[test]
fn generated_parser_compiles_and_runs() {
    let cat = catalog();
    let config = cat
        .complete([
            "query_statement",
            "query_expression",
            "query_specification",
            "select_list",
            "select_sublist",
            "derived_column",
            "table_expression",
            "from",
            "table_reference",
        ])
        .unwrap();
    let composed = cat
        .pipeline_from("query_specification")
        .compose(&config)
        .unwrap();
    let module = codegen::generate(&composed.grammar, &composed.tokens).unwrap();

    // Wrap the module with a tiny driver: whitespace-tokenize argv[1],
    // parse, exit 0 on accept / 1 on reject.
    let driver = r#"
fn classify(word: &str) -> Option<Token> {
    let upper = word.to_ascii_uppercase();
    let kind = match upper.as_str() {
        "SELECT" => TokenKind::SELECT,
        "FROM" => TokenKind::FROM,
        "," => TokenKind::COMMA,
        "." => TokenKind::DOT,
        w if w.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && w.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') =>
        {
            TokenKind::IDENT
        }
        _ => return None,
    };
    Some(Token { kind, text: word.to_string() })
}

fn main() {
    let input = std::env::args().nth(1).expect("usage: parser '<sql tokens>'");
    let Some(toks) = input
        .split_whitespace()
        .map(classify)
        .collect::<Option<Vec<_>>>()
    else {
        std::process::exit(2);
    };
    match Parser::parse(&toks) {
        Ok(node) => {
            println!("accepted: {node:?}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("rejected: {e}");
            std::process::exit(1);
        }
    }
}
"#;
    let dir = std::env::temp_dir().join("sqlweave_codegen_test");
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join("generated_parser.rs");
    let bin_path = dir.join("generated_parser_bin");
    std::fs::write(&src_path, format!("{module}\n{driver}")).unwrap();

    let compile = Command::new("rustc")
        .arg("--edition")
        .arg("2021")
        .arg("-o")
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("rustc available");
    assert!(
        compile.status.success(),
        "generated parser failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    let run = |input: &str| {
        Command::new(&bin_path)
            .arg(input)
            .output()
            .expect("run generated parser")
            .status
            .code()
    };
    // Accepts exactly the selected features.
    assert_eq!(run("SELECT a FROM t"), Some(0));
    assert_eq!(run("SELECT a , b FROM t"), Some(0));
    // Rejections: unselected features or malformed input.
    assert_eq!(run("SELECT a FROM"), Some(1));
    assert_eq!(run("SELECT FROM t"), Some(1));
    assert_eq!(run("SELECT a FROM t t2"), Some(1));
}

#[test]
fn generated_source_is_self_contained() {
    let cat = catalog();
    let config = cat
        .complete(["query_statement", "select_sublist"])
        .unwrap();
    let composed = cat
        .pipeline_from("query_specification")
        .compose(&config)
        .unwrap();
    let module = codegen::generate(&composed.grammar, &composed.tokens).unwrap();
    // no code references to workspace crates (the header comment may name
    // the generator)
    assert!(!module.contains("use sqlweave"));
    assert!(!module.contains("sqlweave_"));
    assert!(!module.contains("::sqlweave"));
    // one parse function per flat production
    assert!(module.contains("fn parse_query_specification"));
    assert!(module.contains("fn parse_select_list"));
}

//! Experiment B3 (static side) — the "scaled-down SQL" claim: tailored
//! dialects yield measurably smaller parsers. This regenerates the static
//! size table (grammar productions, alternatives, LL(1) table cells, token
//! rules, lexer DFA states) across the dialect ladder.

use sqlweave_bench::parser;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;

#[test]
fn size_table() {
    println!(
        "{:<10} {:>9} {:>12} {:>10} {:>11} {:>11} {:>10} {:>10}",
        "dialect", "features", "productions", "alts", "flat prods", "table cells", "tokens", "dfa states"
    );
    let mut rows = Vec::new();
    for d in Dialect::ALL {
        let s = parser(d, EngineMode::Backtracking).stats();
        let features = d.configuration().len();
        println!(
            "{:<10} {:>9} {:>12} {:>10} {:>11} {:>11} {:>10} {:>10}",
            d.name(),
            features,
            s.productions,
            s.alternatives,
            s.flat_productions,
            s.table_cells,
            s.token_rules,
            s.dfa_states
        );
        rows.push((d, features, s));
    }

    // The headline shape: every size metric grows strictly from pico to
    // full, and full is several times larger than pico.
    let pico = &rows[0].2;
    let full = &rows[5].2;
    assert!(full.productions > 3 * pico.productions);
    assert!(full.table_cells > 3 * pico.table_cells);
    assert!(full.token_rules > 3 * pico.token_rules);
    assert!(full.dfa_states > 2 * pico.dfa_states);

    // Monotone along the designed ladder pico ⊂ core ⊂ warehouse ⊂ full.
    let ladder = [Dialect::Pico, Dialect::Core, Dialect::Warehouse, Dialect::Full];
    let stats: Vec<_> = ladder
        .iter()
        .map(|d| parser(*d, EngineMode::Backtracking).stats())
        .collect();
    for w in stats.windows(2) {
        assert!(w[0].productions <= w[1].productions);
        assert!(w[0].token_rules <= w[1].token_rules);
        assert!(w[0].table_cells <= w[1].table_cells);
    }
}

#[test]
fn composition_cost_is_feature_bounded() {
    // Composition touches each selected feature once; the trace length is
    // bounded by total alternatives contributed.
    for d in Dialect::ALL {
        let composed = sqlweave_bench::composed(d);
        assert!(composed.trace.entries.len() >= composed.grammar.alternative_count());
        assert_eq!(
            composed.sequence.len(),
            d.configuration().len(),
            "{}: sequence covers every selected feature",
            d.name()
        );
    }
}

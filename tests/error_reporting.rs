//! Parse-error quality across dialects: positions, expected sets, lexical
//! errors, and the feature-boundary property that error messages reflect
//! only *selected* features.

use sqlweave_bench::parser;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;

#[test]
fn positions_are_line_and_column_accurate() {
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    let err = p
        .parse("SELECT a\nFROM t\nWHERE a = = 1")
        .unwrap_err();
    assert_eq!(err.line, 3, "{err}");
    assert_eq!(err.column, 11, "{err}");
    assert_eq!(err.found.as_ref().unwrap().1, "=");
}

#[test]
fn expected_sets_reflect_grammar_position() {
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    // after a complete select-sublist, the legal continuations include
    // COMMA (more columns) and FROM
    let err = p.parse("SELECT a b c FROM t").unwrap_err();
    assert!(err.expected.contains("COMMA"), "{err}");
    assert!(err.expected.contains("FROM"), "{err}");
}

#[test]
fn lexical_errors_are_distinguished() {
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    let err = p.parse("SELECT a FROM t WHERE a = $1").unwrap_err();
    assert!(err.lexical.is_some(), "{err}");
    assert!(err.to_string().contains("'$'"), "{err}");
}

#[test]
fn unterminated_string_is_a_lexical_error() {
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    let err = p.parse("SELECT a FROM t WHERE s = 'oops").unwrap_err();
    assert!(err.lexical.is_some(), "{err}");
}

#[test]
fn expected_sets_exclude_unselected_features() {
    // In pico (no set_quantifier), the error after SELECT must NOT suggest
    // DISTINCT; in full it may.
    let pico = parser(Dialect::Pico, EngineMode::Backtracking);
    let err = pico.parse("SELECT FROM t").unwrap_err();
    assert!(
        !err.expected.contains("DISTINCT"),
        "pico suggested an unselected feature: {err}"
    );
    assert!(err.expected.contains("IDENT"), "{err}");

    let full = parser(Dialect::Full, EngineMode::Backtracking);
    let err = full.parse("SELECT FROM t").unwrap_err();
    assert!(err.expected.contains("DISTINCT"), "{err}");
}

#[test]
fn keywords_of_unselected_features_lex_as_identifiers() {
    // `epoch` is a keyword only when the sensor features are selected: in
    // pico it is a perfectly good column name.
    let pico = parser(Dialect::Pico, EngineMode::Backtracking);
    assert!(pico.parse("SELECT epoch FROM t").is_ok());
    // In tiny it is reserved, so the same statement fails.
    let tiny = parser(Dialect::Tiny, EngineMode::Backtracking);
    assert!(tiny.parse("SELECT epoch FROM t").is_err());
}

#[test]
fn farthest_failure_wins_over_earlier_alternatives() {
    // The parser must report the deepest failure point, not the first
    // alternative that failed.
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    let err = p
        .parse("SELECT a FROM t WHERE a IN (1, 2, )")
        .unwrap_err();
    // error at the `)` after the dangling comma, not back at `IN`
    assert_eq!(err.found.as_ref().unwrap().1, ")", "{err}");
}

#[test]
fn eof_errors_name_the_missing_piece() {
    let p = parser(Dialect::Core, EngineMode::Backtracking);
    let err = p.parse("SELECT a FROM t WHERE").unwrap_err();
    assert!(err.found.is_none());
    assert!(
        err.expected.iter().any(|t| t == "IDENT" || t == "NUMBER"),
        "{err}"
    );
}

#[test]
fn multiline_scripts_report_correct_statement() {
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    let err = p
        .parse("SELECT a FROM t;\nDELETE FROM;\nCOMMIT;")
        .unwrap_err();
    assert_eq!(err.line, 2, "{err}");
}

//! Experiment T4 — "We have created different prototype parsers by
//! composing different features" (paper §5).
//!
//! Every dialect preset composes into a working parser; each accepts its
//! own corpus, rejects its feature-boundary witness, and the full dialect
//! accepts everything every other dialect accepts (language inclusion on
//! the corpora).

use sqlweave_bench::{corpus, parser, rejection_witness};
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;

#[test]
fn acceptance_matrix() {
    // rows: dialects; columns: corpora. Print the acceptance counts.
    println!("{:<10} {}", "dialect", Dialect::ALL.map(|d| format!("{:>10}", d.name())).join(""));
    for row in Dialect::ALL {
        let p = parser(row, EngineMode::Backtracking);
        let mut cells = String::new();
        for col in Dialect::ALL {
            let stmts = corpus(col);
            let accepted = stmts.iter().filter(|s| p.parse(s).is_ok()).count();
            cells.push_str(&format!("{:>7}/{:<2}", accepted, stmts.len()));
        }
        println!("{:<10} {cells}", row.name());
    }

    // Own corpus fully accepted.
    for d in Dialect::ALL {
        let p = parser(d, EngineMode::Backtracking);
        for stmt in corpus(d) {
            assert!(p.parse(stmt).is_ok(), "{} rejected {stmt:?}", d.name());
        }
    }
}

#[test]
fn full_dialect_subsumes_all_corpora() {
    let full = parser(Dialect::Full, EngineMode::Backtracking);
    for d in Dialect::ALL {
        for stmt in corpus(d) {
            assert!(
                full.parse(stmt).is_ok(),
                "full rejected {}-corpus statement {stmt:?}",
                d.name()
            );
        }
    }
}

#[test]
fn boundaries_are_enforced() {
    for d in Dialect::ALL {
        if let Some(witness) = rejection_witness(d) {
            let p = parser(d, EngineMode::Backtracking);
            assert!(
                p.parse(witness).is_err(),
                "{} must reject {witness:?} (unselected feature)",
                d.name()
            );
            // …and the full dialect accepts the same statement.
            assert!(
                parser(Dialect::Full, EngineMode::Backtracking).parse(witness).is_ok(),
                "full must accept {witness:?}"
            );
        }
    }
}

#[test]
fn configurations_grow_with_dialect_scope() {
    let sizes: Vec<(usize, &str)> = Dialect::ALL
        .iter()
        .map(|d| (d.configuration().len(), d.name()))
        .collect();
    println!("selected features per dialect: {sizes:?}");
    let pico = sizes[0].0;
    let full = sizes[5].0;
    assert!(pico < full / 3, "pico ({pico}) should be far smaller than full ({full})");
    for (len, name) in &sizes {
        assert!(*len >= pico, "{name} smaller than pico?");
        assert!(*len <= full, "{name} larger than full?");
    }
}

//! Robustness: nothing in the pipeline panics on hostile input — parsers
//! return errors, the DSL parser rejects garbage gracefully, spans stay
//! consistent, and composed grammars are hygienic (no unproductive rules).

use proptest::prelude::*;
use sqlweave_bench::{corpus, parser};
use sqlweave::dialects::Dialect;
use sqlweave::grammar::dsl::{parse_grammar, parse_tokens};
use sqlweave::parser_rt::engine::EngineMode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The full-dialect parser never panics; it accepts or errors.
    #[test]
    fn parser_never_panics_on_random_input(input in "[ -~\\n]{0,80}") {
        let p = parser(Dialect::Full, EngineMode::Backtracking);
        let _ = p.parse(&input);
        let ll = parser(Dialect::Full, EngineMode::Ll1Table);
        let _ = ll.parse(&input);
    }

    /// Random keyword soup in particular (lexes fine, must fail cleanly).
    #[test]
    fn parser_never_panics_on_keyword_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN",
                "ON", "AND", "OR", "NOT", "NULL", "CASE", "WHEN", "END",
                "INSERT", "UPDATE", "DELETE", "CREATE", "TABLE", "(", ")",
                ",", "*", "=", "a", "t", "1", "'s'",
            ]),
            0..25,
        )
    ) {
        let input = words.join(" ");
        let p = parser(Dialect::Full, EngineMode::Backtracking);
        let _ = p.parse(&input);
        let _ = sqlweave::baseline::parse_script(&input);
    }

    /// The grammar DSL parser never panics on arbitrary text.
    #[test]
    fn dsl_parsers_never_panic(input in "[ -~\\n]{0,120}") {
        let _ = parse_grammar(&input);
        let _ = parse_tokens(&input);
    }

    /// The regex parser never panics on arbitrary patterns.
    #[test]
    fn regex_parser_never_panics(input in "[ -~]{0,40}") {
        let _ = sqlweave::lexgen::regex::parse(&input);
    }
}

#[test]
fn token_spans_reconstruct_source_slices() {
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    for stmt in corpus(Dialect::Full) {
        let cst = p.parse(stmt).unwrap();
        for tok in cst.tokens() {
            let sqlweave::parser_rt::CstNode::Token { text, start, end, .. } = tok else {
                unreachable!()
            };
            assert_eq!(
                &stmt[*start..*end],
                text,
                "span [{start}..{end}] does not slice to the token text in {stmt:?}"
            );
        }
        // whole-tree span covers first..last token
        let (lo, hi) = cst.span().unwrap();
        assert!(lo <= hi && hi <= stmt.len());
    }
}

#[test]
fn composed_dialect_grammars_are_hygienic() {
    for d in Dialect::ALL {
        let p = parser(d, EngineMode::Backtracking);
        let analysis = p.analysis();
        assert!(
            analysis.unproductive.is_empty(),
            "{}: unproductive nonterminals {:?}",
            d.name(),
            analysis.unproductive
        );
        assert!(
            analysis.left_recursion.is_empty(),
            "{}: left recursion {:?}",
            d.name(),
            analysis.left_recursion
        );
        // Everything the composition pulled in should be reachable from the
        // start symbol — unreachable rules would mean a feature contributed
        // syntax that can never fire.
        assert!(
            analysis.unreachable.is_empty(),
            "{}: unreachable nonterminals {:?}",
            d.name(),
            analysis.unreachable
        );
    }
}

#[test]
fn deeply_nested_input_parses_or_fails_gracefully() {
    // 60 levels of parenthesized expressions — exercises recursion depth.
    let p = parser(Dialect::Warehouse, EngineMode::Backtracking);
    let depth = 60;
    let stmt = format!(
        "SELECT {}a{} FROM t",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    p.parse(&stmt).unwrap();
    // unbalanced version must error, not panic or hang
    let bad = format!("SELECT {}a FROM t", "(".repeat(depth));
    assert!(p.parse(&bad).is_err());
}

#[test]
fn pathological_backtracking_terminates_quickly() {
    // Chains of commas/identifiers that force alternative retries.
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    let stmt = format!("SELECT {} FROM t", vec!["a"; 200].join(", "));
    let t0 = std::time::Instant::now();
    p.parse(&stmt).unwrap();
    assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());

    let bad = format!("SELECT {} FROM", vec!["a"; 200].join(", "));
    let t0 = std::time::Instant::now();
    assert!(p.parse(&bad).is_err());
    assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
}

//! Experiment B4 (correctness side) — the two parse engines.
//!
//! The paper closes asking "what kind of parsing mechanism is most suitable
//! for feature-oriented extension of SQL". We ship two: a backtracking
//! interpreter (handles every composed grammar) and an LL(1) table engine
//! (fastest, but commits to the table's choice on conflicts). These tests
//! pin down where they agree and where the table engine gives up.

use sqlweave_bench::{corpus, parser};
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;

#[test]
fn engines_agree_when_the_table_engine_succeeds() {
    for d in Dialect::ALL {
        let bt = parser(d, EngineMode::Backtracking);
        let ll = parser(d, EngineMode::Ll1Table);
        let mut ll_ok = 0usize;
        let mut total = 0usize;
        for stmt in corpus(d) {
            total += 1;
            let b = bt.parse(stmt).expect("backtracking accepts its corpus");
            if let Ok(l) = ll.parse(stmt) {
                ll_ok += 1;
                assert_eq!(b, l, "engines disagree on {stmt:?} ({})", d.name());
            }
        }
        println!("{:<10} LL(1) engine parsed {ll_ok}/{total} corpus statements", d.name());
        assert!(ll_ok > 0, "{}: LL(1) engine parsed nothing", d.name());
    }
}

#[test]
fn pico_is_fully_ll1_parsable() {
    // The tailored pico dialect avoids every conflict-heavy feature, so the
    // table engine covers it completely.
    let ll = parser(Dialect::Pico, EngineMode::Ll1Table);
    let bt = parser(Dialect::Pico, EngineMode::Backtracking);
    for stmt in corpus(Dialect::Pico) {
        let l = ll.parse(stmt).unwrap_or_else(|e| panic!("LL(1) on {stmt:?}: {e}"));
        assert_eq!(l, bt.parse(stmt).unwrap());
    }
}

#[test]
fn conflicts_grow_with_dialect_size() {
    let mut prev = 0usize;
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let stats = parser(d, EngineMode::Backtracking).stats();
        println!(
            "{:<10} productions={} conflicts={} table_cells={}",
            d.name(),
            stats.productions,
            stats.conflicts,
            stats.table_cells
        );
        assert!(
            stats.conflicts >= prev,
            "conflicts should not shrink as features are added"
        );
        prev = stats.conflicts;
    }
}

#[test]
fn both_engines_reject_out_of_dialect_statements() {
    for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
        let p = parser(Dialect::Pico, mode);
        assert!(p.parse("SELECT a FROM t ORDER BY a").is_err());
        assert!(p.parse("INSERT INTO t VALUES (1)").is_err());
    }
}

#[test]
fn engines_agree_on_generated_workloads_for_ll1_dialects() {
    // pico and tiny are LL(1)-parsable except for ONE conflict every
    // dialect shares: in `sql_script : stmt (SEMI stmt)* SEMI?`, a trailing
    // semicolon is predicted as a separator, so the table engine rejects
    // scripts that end in `;`. Strip that case and both engines must accept
    // every grammar-generated sentence with identical CSTs.
    for d in [Dialect::Pico, Dialect::Tiny] {
        let bt = parser(d, EngineMode::Backtracking);
        let ll = parser(d, EngineMode::Ll1Table);
        for s in sqlweave_bench::generated(d, 0x5eed, 200, 9) {
            let s = s.trim_end().trim_end_matches(';').trim_end();
            if s.is_empty() {
                continue;
            }
            let b = bt
                .parse(s)
                .unwrap_or_else(|e| panic!("{} backtracking rejected {s:?}: {e}", d.name()));
            let l = ll
                .parse(s)
                .unwrap_or_else(|e| panic!("{} LL(1) rejected {s:?}: {e}", d.name()));
            assert_eq!(b, l, "{}: engines disagree on {s:?}", d.name());
        }
    }
}

#[test]
fn ll1_never_accepts_what_backtracking_rejects() {
    // The table engine resolves conflicts to the first alternative; it may
    // reject more, but must never accept a statement the general engine
    // rejects (soundness of the table construction).
    let bt = parser(Dialect::Full, EngineMode::Backtracking);
    let ll = parser(Dialect::Full, EngineMode::Ll1Table);
    for s in sqlweave_bench::generated(Dialect::Full, 77, 300, 8) {
        if ll.parse(&s).is_ok() {
            assert!(
                bt.parse(&s).is_ok(),
                "LL(1) accepted but backtracking rejected {s:?}"
            );
        }
    }
}

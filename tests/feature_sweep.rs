//! Single-feature sweep: every feature of the catalog, added alone to a
//! minimal query dialect, must complete into a valid configuration and
//! compose into a *closed, analyzable* grammar. This catches any feature
//! whose artifact breaks composition in isolation (undefined nonterminals a
//! `requires` edge should have pulled in, token conflicts, ordering
//! hazards). Full parser construction (dominated by lexer-DFA
//! minimization) is exercised on a deterministic sample; the dialect and
//! property suites cover full builds of the realistic configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use sqlweave::dialects::Dialect;
use sqlweave::feature_model::complete::complete;
use sqlweave::feature_model::solve::{enumerate_or_sample, resolve_open_choices};
use sqlweave::feature_model::Configuration;
use sqlweave::grammar::analysis::analyze;
use sqlweave::grammar::ir::Grammar;
use sqlweave::grammar::sentence::SentenceGenerator;
use sqlweave::lexgen::tokenset::TokenSet;
use sqlweave::parser_rt::engine::{EngineMode, Parser};
use sqlweave::sql::catalog;
use std::collections::BTreeSet;
use std::sync::OnceLock;

#[test]
fn every_feature_composes_on_top_of_the_minimal_query_dialect() {
    let cat = catalog();
    let base = ["query_statement", "select_sublist"];
    let mut tested = 0usize;
    let mut skipped_invalid = Vec::new();

    for (i, (_, feature)) in cat.model().iter().enumerate() {
        let name = feature.name.clone();
        let mut selection: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        selection.push(name.clone());
        let Ok(config) = cat.complete(selection) else {
            panic!("completion failed for feature `{name}`");
        };
        // Completion can leave OR-group choices open (selecting a group
        // parent without a member); those configurations are legitimately
        // invalid and skipped.
        if cat.model().validate(&config).is_err() {
            skipped_invalid.push(name);
            continue;
        }
        tested += 1;
        let composed = cat
            .pipeline()
            .compose(&config)
            .unwrap_or_else(|e| panic!("feature `{name}` broke composition: {e}"));
        let analysis = analyze(&composed.grammar)
            .unwrap_or_else(|e| panic!("feature `{name}` left an open grammar: {e}"));
        assert!(
            analysis.left_recursion.is_empty(),
            "feature `{name}` introduced left recursion: {:?}",
            analysis.left_recursion
        );
        assert!(
            analysis.unproductive.is_empty(),
            "feature `{name}` introduced unproductive rules: {:?}",
            analysis.unproductive
        );
        // Full parser build + parse on a deterministic sample.
        if i % 8 == 0 {
            let parser = composed
                .into_parser()
                .unwrap_or_else(|e| panic!("feature `{name}` broke the parser build: {e}"));
            parser
                .parse("SELECT a FROM t")
                .unwrap_or_else(|e| panic!("feature `{name}` broke the base query: {e}"));
        }
    }

    println!(
        "swept {tested} features ({} skipped as open OR-group parents: {:?})",
        skipped_invalid.len(),
        skipped_invalid
    );
    assert!(tested >= 170, "only {tested} features were sweepable");
}

#[test]
fn every_pair_of_statement_classes_composes() {
    // Pairwise interaction of the statement-class features (the R3-append
    // surface where cross-feature conflicts would appear).
    let cat = catalog();
    let classes = [
        "query_statement",
        "insert_statement",
        "update_statement",
        "delete_statement",
        "merge_statement",
        "table_definition",
        "view_definition",
        "schema_definition",
        "domain_definition",
        "alter_table_statement",
        "drop_statement",
        "grant_revoke",
        "transaction_statement",
        "session_statement",
        "cursor_statement",
    ];
    for (i, a) in classes.iter().enumerate() {
        for b in &classes[i + 1..] {
            let mut selection = vec![a.to_string(), b.to_string()];
            // statement classes with OR-group children need one choice
            for extra in [
                "select_sublist",      // query
                "drop_table",          // drop
                "add_column",          // alter
                "set_schema",          // session
                "merge_update_branch", // merge
                "character_types",     // data_type via column_definition
            ] {
                selection.push(extra.to_string());
            }
            let config = cat
                .complete(selection)
                .unwrap_or_else(|e| panic!("{a}+{b}: completion failed: {e}"));
            if cat.model().validate(&config).is_err() {
                continue;
            }
            let composed = cat
                .pipeline()
                .compose(&config)
                .unwrap_or_else(|e| panic!("{a}+{b} broke composition: {e}"));
            analyze(&composed.grammar)
                .unwrap_or_else(|e| panic!("{a}+{b} left an open grammar: {e}"));
        }
    }
}

#[test]
fn removing_any_optional_feature_from_full_still_composes() {
    // The complement sweep: full minus one optional leaf must remain valid
    // (when no other selected feature requires it) and compose.
    let cat = catalog();
    let full: Vec<String> = cat.model().iter().map(|(_, f)| f.name.clone()).collect();
    let mut tested = 0usize;
    for (id, feature) in cat.model().iter() {
        // Only leaves: removing an inner node orphans its children.
        if !feature.children.is_empty() {
            continue;
        }
        let name = &feature.name;
        let config = Configuration::of(full.iter().filter(|n| *n != name).cloned());
        if cat.model().validate(&config).is_err() {
            // mandatory leaf, group minimum, or another feature requires it
            continue;
        }
        tested += 1;
        let composed = cat
            .pipeline()
            .compose(&config)
            .unwrap_or_else(|e| panic!("full minus `{name}` broke composition: {e}"));
        analyze(&composed.grammar)
            .unwrap_or_else(|e| panic!("full minus `{name}` left an open grammar: {e}"));
        // full parser build on a sample
        if tested.is_multiple_of(10) {
            composed
                .into_parser()
                .unwrap_or_else(|e| panic!("full minus `{name}` broke the parser build: {e}"));
        }
        let _ = id;
    }
    println!("tested full-minus-one for {tested} leaves");
    assert!(tested >= 60, "only {tested} leaves were removable");
}

/// One certify-sampled non-preset configuration, composed and built once.
struct SampledDialect {
    config: String,
    grammar: Grammar,
    tokens: TokenSet,
    backtracking: Parser,
    ll1: Parser,
}

/// Non-preset configurations drawn by the same pairwise sampler `sqlweave
/// certify` uses, built once for the whole property suite. Configurations
/// whose parser cannot be built (certify reports those as findings) are
/// skipped here — this suite is about the ones that *do* build.
fn certify_sampled_dialects() -> &'static [SampledDialect] {
    static SAMPLED: OnceLock<Vec<SampledDialect>> = OnceLock::new();
    SAMPLED.get_or_init(|| {
        let cat = catalog();
        let seeds: Vec<Configuration> = Dialect::ALL.iter().map(|d| d.configuration()).collect();
        let presets: BTreeSet<String> = seeds.iter().map(|c| c.to_string()).collect();
        let sample = enumerate_or_sample(cat.model(), &seeds, 10, true);
        // Sampled configurations are minimal realizations of pairwise
        // combos; most select no statement class and (correctly) fail the
        // parser build — `sqlweave certify` reports exactly that. Lift each
        // onto the minimal query dialect, the way certify's diagram scopes
        // do, to obtain buildable non-preset dialects.
        let base = Configuration::of(["query_statement", "select_sublist"]);
        let mut out: Vec<SampledDialect> = Vec::new();
        for config in &sample.configs {
            let Ok(closed) = complete(cat.model(), &config.union(&base)) else {
                continue;
            };
            let Some(lifted) = resolve_open_choices(cat.model(), &closed, &Configuration::new())
            else {
                continue;
            };
            let key = lifted.to_string();
            if presets.contains(&key) || out.iter().any(|d| d.config == key) {
                continue;
            }
            let Ok(composed) = cat.pipeline().compose(&lifted) else {
                continue;
            };
            let Ok(backtracking) = Parser::new(composed.grammar.clone(), &composed.tokens) else {
                continue;
            };
            let ll1 = Parser::new(composed.grammar.clone(), &composed.tokens)
                .expect("same grammar built once already")
                .with_mode(EngineMode::Ll1Table);
            out.push(SampledDialect {
                config: key,
                grammar: composed.grammar,
                tokens: composed.tokens,
                backtracking,
                ll1,
            });
        }
        assert!(
            out.len() >= 2,
            "pairwise sampling produced only {} buildable non-preset configurations",
            out.len()
        );
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Certify-sampled configurations behave like shipped dialects: their
    /// own generated sentences parse without panicking on either engine,
    /// and wherever the LL(1) table engine succeeds it agrees with the
    /// backtracking oracle.
    #[test]
    fn sampled_configurations_parse_their_generated_sentences(
        pick in 0usize..64,
        seed in prop::num::usize::ANY,
        depth in 4usize..9,
    ) {
        let dialects = certify_sampled_dialects();
        let d = &dialects[pick % dialects.len()];
        let gen = SentenceGenerator::new(&d.grammar, &d.tokens)
            .unwrap_or_else(|e| panic!("{}: sentence generator: {e}", d.config));
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let sentence = gen.generate(&mut rng, depth);
        let bt = d.backtracking.parse(&sentence).unwrap_or_else(|e| {
            panic!("{}: rejected its own sentence {sentence:?}: {e}", d.config)
        });
        if let Ok(ll) = d.ll1.parse(&sentence) {
            prop_assert_eq!(&bt, &ll, "engines disagree on {:?}", &sentence);
        }
    }
}

//! Single-feature sweep: every feature of the catalog, added alone to a
//! minimal query dialect, must complete into a valid configuration and
//! compose into a *closed, analyzable* grammar. This catches any feature
//! whose artifact breaks composition in isolation (undefined nonterminals a
//! `requires` edge should have pulled in, token conflicts, ordering
//! hazards). Full parser construction (dominated by lexer-DFA
//! minimization) is exercised on a deterministic sample; the dialect and
//! property suites cover full builds of the realistic configurations.

use sqlweave::feature_model::Configuration;
use sqlweave::grammar::analysis::analyze;
use sqlweave::sql::catalog;

#[test]
fn every_feature_composes_on_top_of_the_minimal_query_dialect() {
    let cat = catalog();
    let base = ["query_statement", "select_sublist"];
    let mut tested = 0usize;
    let mut skipped_invalid = Vec::new();

    for (i, (_, feature)) in cat.model().iter().enumerate() {
        let name = feature.name.clone();
        let mut selection: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        selection.push(name.clone());
        let Ok(config) = cat.complete(selection) else {
            panic!("completion failed for feature `{name}`");
        };
        // Completion can leave OR-group choices open (selecting a group
        // parent without a member); those configurations are legitimately
        // invalid and skipped.
        if cat.model().validate(&config).is_err() {
            skipped_invalid.push(name);
            continue;
        }
        tested += 1;
        let composed = cat
            .pipeline()
            .compose(&config)
            .unwrap_or_else(|e| panic!("feature `{name}` broke composition: {e}"));
        let analysis = analyze(&composed.grammar)
            .unwrap_or_else(|e| panic!("feature `{name}` left an open grammar: {e}"));
        assert!(
            analysis.left_recursion.is_empty(),
            "feature `{name}` introduced left recursion: {:?}",
            analysis.left_recursion
        );
        assert!(
            analysis.unproductive.is_empty(),
            "feature `{name}` introduced unproductive rules: {:?}",
            analysis.unproductive
        );
        // Full parser build + parse on a deterministic sample.
        if i % 8 == 0 {
            let parser = composed
                .into_parser()
                .unwrap_or_else(|e| panic!("feature `{name}` broke the parser build: {e}"));
            parser
                .parse("SELECT a FROM t")
                .unwrap_or_else(|e| panic!("feature `{name}` broke the base query: {e}"));
        }
    }

    println!(
        "swept {tested} features ({} skipped as open OR-group parents: {:?})",
        skipped_invalid.len(),
        skipped_invalid
    );
    assert!(tested >= 170, "only {tested} features were sweepable");
}

#[test]
fn every_pair_of_statement_classes_composes() {
    // Pairwise interaction of the statement-class features (the R3-append
    // surface where cross-feature conflicts would appear).
    let cat = catalog();
    let classes = [
        "query_statement",
        "insert_statement",
        "update_statement",
        "delete_statement",
        "merge_statement",
        "table_definition",
        "view_definition",
        "schema_definition",
        "domain_definition",
        "alter_table_statement",
        "drop_statement",
        "grant_revoke",
        "transaction_statement",
        "session_statement",
        "cursor_statement",
    ];
    for (i, a) in classes.iter().enumerate() {
        for b in &classes[i + 1..] {
            let mut selection = vec![a.to_string(), b.to_string()];
            // statement classes with OR-group children need one choice
            for extra in [
                "select_sublist",      // query
                "drop_table",          // drop
                "add_column",          // alter
                "set_schema",          // session
                "merge_update_branch", // merge
                "character_types",     // data_type via column_definition
            ] {
                selection.push(extra.to_string());
            }
            let config = cat
                .complete(selection)
                .unwrap_or_else(|e| panic!("{a}+{b}: completion failed: {e}"));
            if cat.model().validate(&config).is_err() {
                continue;
            }
            let composed = cat
                .pipeline()
                .compose(&config)
                .unwrap_or_else(|e| panic!("{a}+{b} broke composition: {e}"));
            analyze(&composed.grammar)
                .unwrap_or_else(|e| panic!("{a}+{b} left an open grammar: {e}"));
        }
    }
}

#[test]
fn removing_any_optional_feature_from_full_still_composes() {
    // The complement sweep: full minus one optional leaf must remain valid
    // (when no other selected feature requires it) and compose.
    let cat = catalog();
    let full: Vec<String> = cat.model().iter().map(|(_, f)| f.name.clone()).collect();
    let mut tested = 0usize;
    for (id, feature) in cat.model().iter() {
        // Only leaves: removing an inner node orphans its children.
        if !feature.children.is_empty() {
            continue;
        }
        let name = &feature.name;
        let config = Configuration::of(full.iter().filter(|n| *n != name).cloned());
        if cat.model().validate(&config).is_err() {
            // mandatory leaf, group minimum, or another feature requires it
            continue;
        }
        tested += 1;
        let composed = cat
            .pipeline()
            .compose(&config)
            .unwrap_or_else(|e| panic!("full minus `{name}` broke composition: {e}"));
        analyze(&composed.grammar)
            .unwrap_or_else(|e| panic!("full minus `{name}` left an open grammar: {e}"));
        // full parser build on a sample
        if tested.is_multiple_of(10) {
            composed
                .into_parser()
                .unwrap_or_else(|e| panic!("full minus `{name}` broke the parser build: {e}"));
        }
        let _ = id;
    }
    println!("tested full-minus-one for {tested} leaves");
    assert!(tested >= 60, "only {tested} leaves were removable");
}

//! Cross-engine differential suite for the event-driven green core: every
//! tree the event engines build (via [`sqlweave::parser_rt::SyntaxTree`])
//! must convert to the *identical* `CstNode` the preserved seed engines
//! produce — and every error must be reported identically — across all
//! dialects, both engine modes, curated corpora, rejection witnesses, and
//! grammar-generated sentences. This is the proof that the perf rework is
//! a pure representation change.

use proptest::prelude::*;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave_bench::{corpus, generated, parser, rejection_witness};

const MODES: [EngineMode; 2] = [EngineMode::Backtracking, EngineMode::Ll1Table];

#[test]
fn corpus_trees_match_seed_engines_everywhere() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut session = p.session();
            for stmt in corpus(d) {
                match p.parse_reference(stmt) {
                    Ok(seed_cst) => {
                        let tree = session.parse_tree(stmt).unwrap_or_else(|e| {
                            panic!("{} {mode:?}: event engine rejected {stmt:?}: {e}", d.name())
                        });
                        assert_eq!(
                            tree.to_cst(),
                            seed_cst,
                            "{} {mode:?}: tree shape drift on {stmt:?}",
                            d.name()
                        );
                        assert_eq!(
                            tree.pretty(),
                            seed_cst.pretty(),
                            "{} {mode:?}: pretty drift on {stmt:?}",
                            d.name()
                        );
                    }
                    // The LL(1) engine legitimately rejects non-LL(1)
                    // corpus statements; the event engine must agree.
                    Err(seed_err) => {
                        let event_err = session.parse_tree(stmt).map(|t| t.to_cst()).unwrap_err();
                        assert_eq!(
                            event_err,
                            seed_err,
                            "{} {mode:?}: error drift on {stmt:?}",
                            d.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn error_messages_unchanged_on_rejections() {
    // Rejection witnesses plus a few malformed statements: the memo table
    // and the note-recording fast path must not alter a single diagnostic.
    let malformed = [
        "",
        "SELECT",
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t t t",
        "SELEC a FROM t",
        "SELECT a FROM t WHERE",
    ];
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let witnesses = rejection_witness(d).into_iter();
            for stmt in witnesses.chain(malformed) {
                let seed = p.parse_reference(stmt);
                let event = p.parse(stmt);
                assert_eq!(event, seed, "{} {mode:?}: outcome drift on {stmt:?}", d.name());
                if let (Err(se), Err(ee)) = (p.parse_reference(stmt), p.parse(stmt)) {
                    assert_eq!(
                        ee.to_string(),
                        se.to_string(),
                        "{} {mode:?}: message drift on {stmt:?}",
                        d.name()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_api_matches_one_shot_parses() {
    for d in [Dialect::Pico, Dialect::Core, Dialect::Full] {
        let p = parser(d, EngineMode::Backtracking);
        let mut stmts = corpus(d);
        stmts.push("SELECT FROM t"); // keep an error in every batch
        let batched = p.parse_many(&stmts);
        let threaded = p.parse_many_parallel(&stmts, 3);
        assert_eq!(batched.len(), stmts.len());
        for (i, stmt) in stmts.iter().enumerate() {
            match (&batched[i], p.parse_reference(stmt)) {
                (Ok(stats), Ok(cst)) => {
                    assert_eq!(stats.nodes, cst.node_count(), "{} node count {stmt:?}", d.name());
                }
                (Err(be), Err(se)) => assert_eq!(be, &se, "{} batch error {stmt:?}", d.name()),
                (b, s) => panic!("{} outcome drift on {stmt:?}: batch {b:?} vs seed {s:?}", d.name()),
            }
            match (&batched[i], &threaded[i]) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("{} parallel drift on {stmt:?}: {a:?} vs {b:?}", d.name()),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grammar-generated sentences from the full dialect: the event tree
    /// converts to exactly the seed engines' CST, in both engine modes,
    /// for any generation seed.
    #[test]
    fn generated_sentences_trees_match(seed in 0u64..1u64 << 48) {
        for mode in MODES {
            let p = parser(Dialect::Full, mode);
            let mut session = p.session();
            for s in generated(Dialect::Full, seed, 8, 9) {
                let seed_result = p.parse_reference(&s);
                let event_result = session.parse_tree(&s).map(|t| t.to_cst());
                prop_assert_eq!(
                    event_result,
                    seed_result,
                    "{:?} drift on generated sentence {:?}",
                    mode,
                    s
                );
            }
        }
    }
}

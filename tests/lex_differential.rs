//! Lex-stage differential suite: the vectorized run-skipping scanner (the
//! production `scan`/`scan_into` path), the compiled byte-class walker
//! (`scan_compiled`), the preserved interval walker (`scan_reference`),
//! and per-rule NFA simulation (`scan_naive`) must agree on every dialect
//! and input shape — token kinds, byte spans, skip behavior, and
//! `LexError` messages alike. The vector path is additionally pinned
//! against its own portable SWAR level so the SIMD and scalar chunk
//! classifiers cannot drift apart. This is the whole-pipeline
//! counterpart of the unit-level differentials inside `sqlweave-lexgen`:
//! here the token sets are the real composed dialects, so the compiled
//! tables face hundreds of DFA states and the full byte-class spread.

use proptest::prelude::*;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave_bench::{composed, corpus, generated, parser};

/// Assert all four scanners (and the pinned-SWAR vector path) agree on
/// one input, including error text.
fn assert_scanners_agree(
    d: Dialect,
    scanner: &sqlweave::lexgen::Scanner,
    nfas: &[sqlweave::lexgen::nfa::Nfa],
    input: &str,
) {
    let fast = scanner.scan(input);
    let compiled = scanner.scan_compiled(input);
    assert_eq!(
        fast,
        compiled,
        "vector vs compiled ({}) on {input:?}",
        d.name()
    );
    let interval = scanner.scan_reference(input);
    assert_eq!(
        fast,
        interval,
        "vector vs interval ({}) on {input:?}",
        d.name()
    );
    let swar = scanner
        .scan_with_simd(sqlweave::lexgen::SimdLevel::Swar, input)
        .expect("SWAR is always available");
    assert_eq!(fast, swar, "detected level vs SWAR ({}) on {input:?}", d.name());
    let naive = scanner.scan_naive(input, nfas);
    assert_eq!(fast, naive, "vector vs naive ({}) on {input:?}", d.name());
    if let (Err(f), Err(i)) = (&fast, &interval) {
        assert_eq!(
            f.to_string(),
            i.to_string(),
            "error text drifted ({})",
            d.name()
        );
    }
}

/// One scanner + naive-oracle pair per dialect (the NFAs are the
/// expensive part — build them once per dialect, not per input).
fn with_dialect_oracles(mut f: impl FnMut(Dialect, &sqlweave::lexgen::Scanner, &[sqlweave::lexgen::nfa::Nfa])) {
    for d in Dialect::ALL {
        let scanner = parser(d, EngineMode::Backtracking).scanner();
        let nfas = composed(d)
            .tokens
            .build_rule_nfas()
            .unwrap_or_else(|e| panic!("rule NFAs {}: {e}", d.name()));
        f(d, scanner, &nfas);
    }
}

#[test]
fn corpus_tokens_agree_across_scanners() {
    with_dialect_oracles(|d, scanner, nfas| {
        for stmt in corpus(d) {
            assert_scanners_agree(d, scanner, nfas, stmt);
        }
    });
}

#[test]
fn generated_workloads_agree_across_scanners() {
    with_dialect_oracles(|d, scanner, nfas| {
        for stmt in generated(d, 4242, 40, 8) {
            assert_scanners_agree(d, scanner, nfas, &stmt);
        }
    });
}

#[test]
fn multibyte_utf8_agrees_across_scanners() {
    // String/comment contents admit non-ASCII scalars, which the compiled
    // scanner routes through its interval fallback mid-token; identifiers
    // do not, so several of these also exercise the error path. Every
    // dialect sees every input — smaller dialects reject more of them,
    // and rejections must match too.
    let inputs = [
        "SELECT 'héllo wörld' FROM t",
        "SELECT '中文 и русский' FROM t WHERE a = 'λ'",
        "SELECT '🦀🦀🦀' FROM t",
        "SELECT a FROM t -- trailing comment with émoji 🎉",
        "'unterminated héllo",
        "é",
        "SELECT é FROM t",
        "SELECT 'ok' FROM 中文",
        "\u{FEFF}SELECT a FROM t",
    ];
    with_dialect_oracles(|d, scanner, nfas| {
        for input in inputs {
            assert_scanners_agree(d, scanner, nfas, input);
        }
    });
}

#[test]
fn lex_error_messages_agree_across_scanners() {
    // ASCII error shapes: unknown punctuation, bad numerics, mid-token
    // failures. The compiled path must report the same byte offset,
    // line/column, and offending character as both oracles.
    let inputs = [
        "SELECT ? FROM t",
        "SELECT a FROM t WHERE a ~ 1",
        "a\nb\n  #",
        "SELECT \u{0007}",
        "`backtick`",
    ];
    with_dialect_oracles(|d, scanner, nfas| {
        for input in inputs {
            let fast = scanner.scan(input);
            assert_scanners_agree(d, scanner, nfas, input);
            if let Err(e) = fast {
                // sanity: the error names a real position inside the input
                assert!(e.at <= input.len(), "{} on {input:?}", d.name());
            }
        }
    });
}

/// SQL-ish fragments mixing ASCII structure with multi-byte scalars both
/// inside and outside string literals, so random concatenations hit the
/// fast path, the fallback, and the error path in one scan.
fn arb_sqlish() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "SELECT ", "FROM ", "WHERE ", "t", "a1", "12", "12.5", ", ", " = ", "(", ")", "*",
            " ", "'héllo'", "'中文'", "'🦀'", "é", "🦀", "?", "-- c\n", "'",
        ]),
        0..10,
    )
    .prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_fragments_agree_on_the_full_dialect(input in arb_sqlish()) {
        // Build the oracles once; `parser`/`composed` are cached statics
        // and `build_rule_nfas` is deterministic, so per-case rebuild cost
        // is the only concern — full has 244 rules, hence the lazy static.
        use std::sync::OnceLock;
        static NFAS: OnceLock<Vec<sqlweave::lexgen::nfa::Nfa>> = OnceLock::new();
        let scanner = parser(Dialect::Full, EngineMode::Backtracking).scanner();
        let nfas = NFAS.get_or_init(|| {
            composed(Dialect::Full).tokens.build_rule_nfas().expect("full rule NFAs")
        });
        let fast = scanner.scan(&input);
        let compiled = scanner.scan_compiled(&input);
        prop_assert_eq!(&fast, &compiled, "vector vs compiled on {:?}", &input);
        let interval = scanner.scan_reference(&input);
        prop_assert_eq!(&fast, &interval, "vector vs interval on {:?}", &input);
        let swar = scanner
            .scan_with_simd(sqlweave::lexgen::SimdLevel::Swar, &input)
            .expect("SWAR is always available");
        prop_assert_eq!(&fast, &swar, "detected vs SWAR on {:?}", &input);
        let naive = scanner.scan_naive(&input, nfas);
        prop_assert_eq!(&fast, &naive, "vector vs naive on {:?}", &input);
        if let (Err(f), Err(i)) = (&fast, &interval) {
            prop_assert_eq!(f.to_string(), i.to_string());
        }
    }
}

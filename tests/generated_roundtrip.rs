//! Property-based tests over the whole pipeline, using proptest for the
//! feature-model/composition invariants and seeded grammar-driven
//! generation for the parser round-trip property.

use proptest::prelude::*;
use sqlweave_bench::{generated, parser};
use sqlweave::dialects::Dialect;
use sqlweave::feature_model::count::enumerate_configurations;
use sqlweave::feature_model::{Configuration, GroupKind, ModelBuilder};
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave::sql::catalog;
use sqlweave::sql_ast::{lower, print};

#[test]
fn every_dialect_parses_its_generated_sentences() {
    for d in Dialect::ALL {
        let p = parser(d, EngineMode::Backtracking);
        for s in generated(d, 0xfeed, 100, 10) {
            if let Err(e) = p.parse(&s) {
                panic!("{} rejected its own sentence {s:?}: {e}", d.name());
            }
        }
    }
}

#[test]
fn full_dialect_generated_sentences_roundtrip_through_ast() {
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    for s in generated(Dialect::Full, 0xabcd, 200, 9) {
        let cst = p.parse(&s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"));
        let stmts = lower::lower_script(&cst).unwrap_or_else(|e| panic!("lower {s:?}: {e}"));
        for ast in &stmts {
            let printed = print::statement(ast);
            let cst2 = p
                .parse(&printed)
                .unwrap_or_else(|e| panic!("reparse {printed:?} (from {s:?}): {e}"));
            let stmts2 = lower::lower_script(&cst2).unwrap();
            assert_eq!(&stmts2[0], ast, "roundtrip drift on {s:?} -> {printed:?}");
        }
    }
}

/// Strategy producing small random feature models.
fn arb_model() -> impl Strategy<Value = sqlweave::feature_model::FeatureModel> {
    // Up to 3 levels: root with n1 children; each child optionally a group
    // or solitary; leaves get no children.
    let leaf = prop::collection::vec(prop::bool::ANY, 1..4);
    prop::collection::vec((prop::bool::ANY, prop::bool::ANY, leaf), 1..4).prop_map(|spec| {
        let mut b = ModelBuilder::new("root");
        let root = b.root();
        for (i, (mandatory, grouped, leaves)) in spec.into_iter().enumerate() {
            if grouped && leaves.len() >= 2 {
                let names: Vec<String> =
                    (0..leaves.len()).map(|j| format!("g{i}_{j}")).collect();
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let kind = if leaves[0] { GroupKind::Or } else { GroupKind::Xor };
                b.group(root, kind, &name_refs);
            } else {
                let name = format!("f{i}");
                let parent = if mandatory {
                    b.mandatory(root, &name)
                } else {
                    b.optional(root, &name)
                };
                for (j, leaf_mandatory) in leaves.iter().enumerate() {
                    let leaf_name = format!("f{i}_{j}");
                    if *leaf_mandatory {
                        b.mandatory(parent, &leaf_name);
                    } else {
                        b.optional(parent, &leaf_name);
                    }
                }
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counting and enumeration agree on arbitrary small models.
    #[test]
    fn count_matches_enumeration(model in arb_model()) {
        let count = model.count_configurations();
        let enumerated = enumerate_configurations(&model, 50_000);
        prop_assert_eq!(count, enumerated.len() as u128);
        for config in &enumerated {
            prop_assert!(model.validate(config).is_ok());
        }
    }

    /// Completion always yields a superset closed under completion.
    #[test]
    fn completion_is_monotone_and_idempotent(model in arb_model(), pick in prop::collection::vec(prop::num::usize::ANY, 0..4)) {
        let names: Vec<String> = model.iter().map(|(_, f)| f.name.clone()).collect();
        let mut partial = Configuration::new();
        for p in pick {
            partial.select(names[p % names.len()].clone());
        }
        let completed = model.complete(&partial).unwrap();
        prop_assert!(partial.is_subset_of(&completed));
        let twice = model.complete(&completed).unwrap();
        prop_assert_eq!(completed, twice);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any valid configuration of the SQL catalog that selects at least one
    /// statement class composes into a working parser.
    #[test]
    fn random_catalog_configurations_compose(seed_features in prop::collection::vec(0usize..4096, 1..12)) {
        let cat = catalog();
        let names: Vec<String> = cat.model().iter().map(|(_, f)| f.name.clone()).collect();
        let mut partial = Configuration::of(["query_statement", "select_sublist"]);
        for s in seed_features {
            partial.select(names[s % names.len()].clone());
        }
        let Ok(config) = cat.model().complete(&partial) else {
            // names are all valid; completion cannot fail
            unreachable!()
        };
        // Completion leaves OR-group choices open occasionally; fill any
        // invalid config by skipping it (the property targets composable
        // configs).
        if cat.model().validate(&config).is_err() {
            return Ok(());
        }
        let parser = cat.pipeline().parser_for(&config);
        prop_assert!(parser.is_ok(), "compose failed: {:?}", parser.err().map(|e| e.to_string()));
        // Every such dialect parses the minimal SELECT.
        let parser = parser.unwrap();
        prop_assert!(parser.parse("SELECT a FROM t").is_ok());
    }
}

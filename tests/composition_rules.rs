//! Experiment T2 — the composition rules of Section 3.2, demonstrated with
//! the paper's own examples through the public API, printing the rule
//! table recorded in EXPERIMENTS.md.

use sqlweave::compose::registry::FeatureRegistry;
use sqlweave::compose::{compose_grammars, compose_into, ComposeDecision};
use sqlweave::grammar::dsl::parse_grammar;
use sqlweave::grammar::ir::{Alternative, Term};

/// Compose two single-production grammars written in DSL text and return
/// `(resulting alternatives as text, decision tags)`.
fn compose_texts(cases: &[&str]) -> (Vec<String>, Vec<&'static str>) {
    let mut alternatives: Vec<Alternative> = Vec::new();
    let mut decisions = Vec::new();
    for src in cases {
        let g = parse_grammar(&format!("grammar t; a : {src} ;")).unwrap();
        for alt in &g.production("a").unwrap().alternatives {
            decisions.push(compose_into(&mut alternatives, alt.clone()).tag());
        }
    }
    (
        alternatives.iter().map(|a| a.to_string()).collect(),
        decisions,
    )
}

#[test]
fn rule_table_matches_the_paper() {
    // The exact examples from Section 3.2, printed as a table.
    let cases: &[(&str, &[&str], &str, &[&str])] = &[
        // (description, inputs in order, expected result, expected tags)
        ("R1: A:B ∘ A:BC  => replace", &["b", "b c"], "b c", &["R3", "R1"]),
        ("R2: A:BC ∘ A:B  => retain", &["b c", "b"], "b c", &["R3", "R2"]),
        ("R3: A:B ∘ A:C   => choices", &["b", "c"], "b | c", &["R3", "R3"]),
        ("R4: A:B ∘ A:B[C] => optional after base", &["b", "b c?"], "b c?", &["R3", "R4"]),
        ("R4: A:B ∘ A:[C]B => optional before base", &["b", "c? b"], "c? b", &["R3", "R4"]),
        (
            "R5: sublist ∘ complex list",
            &["b", "b (COMMA b)*"],
            "b (COMMA b)*",
            &["R3", "R4"],
        ),
        ("idempotence", &["b c", "b c"], "b c", &["R3", "="]),
    ];
    println!("{:<42} {:<22} {:<16} tags", "case", "inputs", "result");
    for (desc, inputs, expected, tags) in cases {
        let (alts, decisions) = compose_texts(inputs);
        let result = alts.join(" | ");
        println!("{desc:<42} {:<22} {result:<16} {decisions:?}", inputs.join(" ∘ "));
        assert_eq!(result, *expected, "{desc}");
        assert_eq!(&decisions[..], *tags, "{desc}");
    }
}

#[test]
fn independent_optionals_accumulate() {
    // The composition that makes Figure 2 work: where/group_by/having each
    // extend table_expression independently and merge into one production.
    let (alts, _) = compose_texts(&[
        "from_clause",
        "from_clause where_clause?",
        "from_clause group_by_clause?",
        "from_clause having_clause?",
    ]);
    assert_eq!(
        alts,
        ["from_clause where_clause? group_by_clause? having_clause?"]
    );
}

#[test]
fn grammar_level_composition_records_trace() {
    let mut r = FeatureRegistry::new();
    r.register(
        "base",
        "grammar base; stmt : walk ; walk : STEP ;",
        "tokens base; STEP = kw;",
    )
    .unwrap();
    r.register(
        "run",
        "grammar run; stmt : run_stmt ; run_stmt : RUN STEP ;",
        "tokens run; RUN = kw; STEP = kw;",
    )
    .unwrap();
    let artifacts = [r.get("base").unwrap(), r.get("run").unwrap()];
    let (grammar, tokens, trace) = compose_grammars("demo", "stmt", &artifacts).unwrap();
    assert_eq!(grammar.production("stmt").unwrap().alternatives.len(), 2);
    assert_eq!(tokens.len(), 2);
    assert_eq!(trace.entries.len(), 4);
    assert!(trace.table().contains("run_stmt"));
}

#[test]
fn composition_is_a_fixed_point_under_reapplication() {
    // Re-composing every selected feature's grammar a second time must not
    // change the result (idempotence at the whole-dialect level).
    let cat = sqlweave::sql::catalog();
    let config = cat
        .complete(["query_statement", "select_sublist", "where"])
        .unwrap();
    let pipeline = cat.pipeline();
    let once = pipeline.compose(&config).unwrap();

    // compose the same artifacts again on top, by doubling the sequence
    let registry = cat.registry();
    let artifacts: Vec<_> = once
        .sequence
        .iter()
        .chain(once.sequence.iter())
        .filter_map(|f| registry.get(f))
        .collect();
    let (grammar2, _, _) =
        compose_grammars("dialect-twice", "sql_script", &artifacts).unwrap();
    let mut g1 = once.grammar.clone();
    g1.set_name("dialect-twice");
    assert_eq!(g1, grammar2);
}

#[test]
fn order_sensitivity_is_controlled_by_the_sequence() {
    // The paper's R4/R6: optionals land in composition order. Arrival order
    // of independent optional features changes the grammar (documented
    // order-sensitivity), which is why the composition sequence exists.
    let (ab, _) = compose_texts(&["x", "x a?", "x b?"]);
    let (ba, _) = compose_texts(&["x", "x b?", "x a?"]);
    assert_eq!(ab, ["x a? b?"]);
    assert_eq!(ba, ["x b? a?"]);
    assert_ne!(ab, ba);
}

#[test]
fn epsilon_bodies_are_replaced_by_refinements() {
    // set_quantifier's empty body is replaced by keyword alternatives (R1
    // with the empty production as the contained one).
    let mut alternatives = vec![Alternative::new(vec![])];
    let d1 = compose_into(&mut alternatives, Alternative::new(vec![Term::tok("ALL")]));
    assert_eq!(d1, ComposeDecision::Replaced(0));
    let d2 = compose_into(
        &mut alternatives,
        Alternative::new(vec![Term::tok("DISTINCT")]),
    );
    assert_eq!(d2, ComposeDecision::Appended(1));
    assert_eq!(alternatives.len(), 2);
}

//! Differential testing: the composed full parser (+ lowering) and the
//! hand-written monolithic baseline parser must agree statement by
//! statement — both on curated corpora and on grammar-generated workloads.

use sqlweave_bench::{corpus, generated, parser};
use sqlweave::baseline;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave::sql_ast::lower;

fn composed_ast(stmt: &str) -> sqlweave::sql_ast::Statement {
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    let cst = p.parse(stmt).unwrap_or_else(|e| panic!("composed parse {stmt:?}: {e}"));
    let stmts = lower::lower_script(&cst).unwrap_or_else(|e| panic!("lower {stmt:?}: {e}"));
    assert_eq!(stmts.len(), 1);
    stmts.into_iter().next().unwrap()
}

#[test]
fn corpora_agree() {
    for d in Dialect::ALL {
        for stmt in corpus(d) {
            let b = baseline::parse_statement(stmt)
                .unwrap_or_else(|e| panic!("baseline parse {stmt:?}: {e}"));
            let c = composed_ast(stmt);
            assert_eq!(b, c, "ASTs differ on {stmt:?}");
        }
    }
}

#[test]
fn generated_workloads_agree() {
    // Generated sentences must come from the FULL dialect: its sentence
    // generator validates sampled identifiers against the full keyword set,
    // which is also the baseline's reserved-word list. (A sentence from a
    // scaled-down dialect may legally use `is` or `floor` as identifiers —
    // they only become reserved when the corresponding features are
    // selected.)
    for seed in [1234u64, 99, 7] {
        for stmt in generated(Dialect::Full, seed, 150, 9) {
            // scripts can contain several statements — compare lists
            let b = baseline::parse_script(&stmt)
                .unwrap_or_else(|e| panic!("baseline parse {stmt:?}: {e}"));
            let p = parser(Dialect::Full, EngineMode::Backtracking);
            let cst = p
                .parse(&stmt)
                .unwrap_or_else(|e| panic!("composed parse {stmt:?}: {e}"));
            let c = lower::lower_script(&cst)
                .unwrap_or_else(|e| panic!("lower {stmt:?}: {e}"));
            assert_eq!(b, c, "ASTs differ on {stmt:?}");
        }
    }
}

#[test]
fn printed_asts_reparse_identically_in_baseline() {
    // parse (composed) → lower → print → parse (baseline): fixed point.
    for stmt in corpus(Dialect::Full) {
        let ast = composed_ast(stmt);
        let printed = sqlweave::sql_ast::print_statement(&ast);
        let reparsed = baseline::parse_statement(&printed)
            .unwrap_or_else(|e| panic!("baseline reparse {printed:?}: {e}"));
        assert_eq!(ast, reparsed, "print/reparse drift:\n  {stmt}\n  {printed}");
    }
}

#[test]
fn both_reject_malformed_statements() {
    let p = parser(Dialect::Full, EngineMode::Backtracking);
    for bad in [
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "INSERT t VALUES (1)",
        "UPDATE SET a = 1",
        "DELETE t",
        "CREATE TABLE t",
        "SELECT a FROM t GROUP BY",
        "SELECT a a a FROM t",
        "GRANT ON t TO u",
    ] {
        assert!(p.parse(bad).is_err(), "composed accepted {bad:?}");
        assert!(baseline::parse_statement(bad).is_err(), "baseline accepted {bad:?}");
    }
}

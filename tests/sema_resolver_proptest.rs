//! Property tests for the semantic analysis layer: resolving
//! grammar-generated scripts never panics, and every span the resolver
//! emits — statement extents, table reads, column-lineage edges,
//! diagnostic anchors — falls inside the analyzed source. Runs the full
//! dialect × engine matrix so the resolver sees every CST shape both
//! engines can produce.

use proptest::prelude::*;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave::sema::{analyze_script, Analysis, ResolverCaps};
use sqlweave_bench::{generated, parser};

/// Every span in the analysis is a well-formed range into `sql`.
fn assert_spans_in_bounds(dialect: Dialect, sql: &str, a: &Analysis) {
    let check = |what: &str, (start, end): (usize, usize)| {
        assert!(
            start <= end && end <= sql.len(),
            "{}: {what} span {start}..{end} escapes {sql:?}",
            dialect.name()
        );
    };
    for s in &a.statements {
        check("statement", s.span);
        for r in &s.reads {
            check("read", r.span);
        }
        for c in &s.columns {
            check("column edge", c.span);
        }
    }
    for d in &a.diagnostics {
        if let Some(span) = d.span {
            check("diagnostic", span);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grammar-generated scripts — syntactically valid by construction,
    /// semantically arbitrary — resolve without panicking on any dialect
    /// with either engine, and every emitted span stays in bounds.
    #[test]
    fn resolver_survives_generated_scripts(seed in 0u64..1 << 48) {
        for &dialect in Dialect::ALL.iter() {
            let caps = ResolverCaps::for_dialect(dialect);
            let sentences = generated(dialect, seed, 4, 8);
            // Exercise both single statements and multi-statement scripts
            // (cross-statement state: CTE envs reset, DDL registration).
            let script = sentences.join("; ");
            for mode in [EngineMode::Backtracking, EngineMode::Ll1Table] {
                let p = parser(dialect, mode);
                let mut session = p.session();
                for sql in sentences.iter().map(String::as_str).chain([script.as_str()]) {
                    // The LL(1) engine rejects some sentences of the larger
                    // dialects; the property only covers accepted parses.
                    let Ok(tree) = session.parse_tree(sql) else { continue };
                    let a = analyze_script(sql, &tree.to_cst(), &caps, None);
                    assert_spans_in_bounds(dialect, sql, &a);
                }
            }
        }
    }
}

/// Deterministic companion: the per-dialect lineage fixtures (the ones the
/// golden inventory is built from) analyze cleanly through the facade, and
/// every edge's spans sit inside the fixture source.
#[test]
fn lineage_fixture_spans_stay_in_bounds() {
    for (dialect, sql) in sqlweave::sema::fixtures::all() {
        let caps = ResolverCaps::for_dialect(dialect);
        let p = parser(dialect, EngineMode::Backtracking);
        let cst = p.parse(sql).unwrap_or_else(|e| panic!("{}: {e}", dialect.name()));
        let a = analyze_script(sql, &cst, &caps, None);
        assert!(
            a.diagnostics.is_empty(),
            "{}: fixture produced {:?}",
            dialect.name(),
            a.diagnostics
        );
        assert!(!a.statements.is_empty(), "{}: no statements", dialect.name());
        assert_spans_in_bounds(dialect, sql, &a);
    }
}

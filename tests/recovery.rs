//! Panic-mode error recovery across the dialect matrix: multi-error
//! scripts yield one diagnostic per seeded error plus a tree covering
//! every scanned token, the first diagnostic stays byte-identical to the
//! strict single-error path, and the resilient driver never panics,
//! always terminates, and agrees with strict parsing on clean input.

use proptest::prelude::*;
use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::EngineMode;
use sqlweave::parser_rt::{SyntaxElement, SyntaxNode, SyntaxTree};
use sqlweave_bench::{corpus, faulty_corpus, parser};

const MODES: [EngineMode; 2] = [EngineMode::Backtracking, EngineMode::Ll1Table];

/// How many times each scanned token index appears in the tree. A
/// recovered tree must cover every token exactly once — skipped tokens
/// land in `error` nodes, never on the floor.
fn token_coverage(tree: &SyntaxTree<'_>) -> Vec<usize> {
    fn walk(node: SyntaxNode<'_, '_>, seen: &mut Vec<usize>) {
        for el in node.children() {
            match el {
                SyntaxElement::Token(t) => seen[t.index()] += 1,
                SyntaxElement::Node(n) => walk(n, seen),
            }
        }
    }
    let mut seen = vec![0usize; tree.tokens().len()];
    walk(tree.root(), &mut seen);
    seen
}

/// Duplicate the statement's leading keyword — no dialect accepts
/// `SELECT SELECT …`, and the error lands inside this statement.
fn corrupt(stmt: &str) -> String {
    match stmt.split_once(' ') {
        Some((head, rest)) => format!("{head} {head} {rest}"),
        None => format!("{stmt} {stmt}"),
    }
}

/// A five-statement script with syntax errors seeded into statements
/// 1, 3, and 4 (0-based), plus the byte range of each corrupted
/// statement. Statements come from the dialect's own corpus, restricted
/// to those BOTH engines accept strictly (the LL(1) engine rejects a few
/// corpus entries of the larger dialects, which would add genuine extra
/// diagnostics), and cycled if fewer than five remain.
fn seeded_script(dialect: Dialect) -> (String, Vec<(usize, usize)>) {
    let bt = parser(dialect, EngineMode::Backtracking);
    let ll1 = parser(dialect, EngineMode::Ll1Table);
    let stmts: Vec<&str> = corpus(dialect)
        .into_iter()
        .filter(|s| bt.parse(s).is_ok() && ll1.parse(s).is_ok())
        .collect();
    assert!(!stmts.is_empty(), "{}: no statements accepted by both engines", dialect.name());
    let bad = [1usize, 3, 4];
    let mut script = String::new();
    let mut spans = Vec::new();
    for i in 0..5 {
        if i > 0 {
            script.push_str("; ");
        }
        let stmt = stmts[i % stmts.len()];
        if bad.contains(&i) {
            let start = script.len();
            script.push_str(&corrupt(stmt));
            spans.push((start, script.len()));
        } else {
            script.push_str(stmt);
        }
    }
    (script, spans)
}

#[test]
fn three_seeded_errors_yield_three_diagnostics_everywhere() {
    for d in Dialect::ALL {
        let (script, spans) = seeded_script(d);
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let outcome = s.parse_resilient(&script);
            assert_eq!(
                outcome.errors.len(),
                3,
                "{} {mode:?}: {script:?} -> {:?}",
                d.name(),
                outcome.errors
            );
            // One diagnostic inside each corrupted statement, in order.
            for (e, (lo, hi)) in outcome.errors.iter().zip(&spans) {
                assert!(
                    (*lo..=*hi).contains(&e.at),
                    "{} {mode:?}: error at {} outside seeded range {lo}..{hi}",
                    d.name(),
                    e.at
                );
            }
            // Full coverage: every scanned token appears exactly once.
            assert!(
                token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                "{} {mode:?}: tree dropped or duplicated tokens",
                d.name()
            );
        }
    }
}

#[test]
fn first_diagnostic_is_byte_identical_to_strict_error() {
    for d in Dialect::ALL {
        let (script, _) = seeded_script(d);
        for mode in MODES {
            let p = parser(d, mode);
            let strict = p.parse(&script).unwrap_err();
            let mut s = p.session();
            let outcome = s.parse_resilient(&script);
            assert_eq!(
                outcome.errors[0].to_string(),
                strict.to_string(),
                "{} {mode:?}",
                d.name()
            );
        }
    }
}

#[test]
fn resilient_agrees_with_strict_on_clean_corpus() {
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            // The LL(1) engine strictly rejects a few corpus statements
            // of the larger dialects; recovery equivalence only holds on
            // inputs the engine accepts.
            for stmt in corpus(d) {
                let Ok(strict) = p.parse(stmt) else { continue };
                let outcome = s.parse_resilient(stmt);
                assert!(outcome.errors.is_empty(), "{} {mode:?}: {stmt:?}", d.name());
                assert_eq!(outcome.tree.to_cst(), strict, "{} {mode:?}: {stmt:?}", d.name());
            }
        }
    }
}

#[test]
fn faulty_corpus_recovers_with_stable_diagnostics() {
    // The bench workload: deterministic corruption, so the diagnostic
    // count per script is stable across runs and engines see the same
    // scripts. Every script reports at least one error and keeps full
    // token coverage.
    for d in Dialect::ALL {
        for mode in MODES {
            let p = parser(d, mode);
            let mut s = p.session();
            let counts: Vec<usize> = faulty_corpus(d)
                .iter()
                .map(|script| {
                    let outcome = s.parse_resilient(script);
                    assert!(!outcome.errors.is_empty(), "{} {mode:?}: {script:?}", d.name());
                    assert!(
                        token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                        "{} {mode:?}: {script:?}",
                        d.name()
                    );
                    outcome.errors.len()
                })
                .collect();
            let again: Vec<usize> =
                faulty_corpus(d).iter().map(|s2| s.parse_resilient(s2).errors.len()).collect();
            assert_eq!(counts, again, "{} {mode:?}", d.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The resilient driver never panics and always terminates on
    /// arbitrary printable input, and its diagnostics are well-formed:
    /// sorted by position, in bounds, with a covered tree.
    #[test]
    fn resilient_never_panics_and_spans_stay_in_bounds(input in "[ -~\\n]{0,80}") {
        for mode in MODES {
            let p = parser(Dialect::Full, mode);
            let mut s = p.session();
            let outcome = s.parse_resilient(&input);
            let mut prev = 0usize;
            for e in &outcome.errors {
                prop_assert!(e.at <= input.len(), "{mode:?}: {e:?}");
                prop_assert!(e.at >= prev, "{mode:?}: diagnostics out of order");
                prev = e.at;
                prop_assert!(e.line >= 1 && e.column >= 1, "{mode:?}: {e:?}");
            }
            prop_assert!(
                token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                "{mode:?} on {input:?}"
            );
        }
    }

    /// Keyword soup: lexes clean, fails syntactically all over — recovery
    /// must still cover every token and terminate.
    #[test]
    fn resilient_survives_keyword_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN",
                "ON", "AND", "OR", "NOT", "NULL", "INSERT", "UPDATE",
                "DELETE", "CREATE", "TABLE", "(", ")", ",", "*", "=",
                ";", "a", "t", "1", "'s'",
            ]),
            0..25,
        )
    ) {
        let input = words.join(" ");
        for mode in MODES {
            let p = parser(Dialect::Full, mode);
            let mut s = p.session();
            let outcome = s.parse_resilient(&input);
            prop_assert!(
                token_coverage(&outcome.tree).iter().all(|&c| c == 1),
                "{mode:?} on {input:?}"
            );
        }
    }

    /// On inputs the engine accepts strictly, recovery is invisible: no
    /// diagnostics and an identical CST.
    #[test]
    fn resilient_matches_strict_on_accepted_input(
        idx in 0usize..64,
        d in prop::sample::select(Dialect::ALL.to_vec()),
    ) {
        let stmts = corpus(d);
        let stmt = stmts[idx % stmts.len()];
        for mode in MODES {
            let p = parser(d, mode);
            if let Ok(strict) = p.parse(stmt) {
                let mut s = p.session();
                let outcome = s.parse_resilient(stmt);
                prop_assert!(outcome.errors.is_empty(), "{mode:?} on {stmt:?}");
                prop_assert_eq!(outcome.tree.to_cst(), strict, "{mode:?} on {stmt:?}");
            }
        }
    }
}

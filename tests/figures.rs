//! Experiments F1 and F2 — regenerate Figures 1 and 2 of the paper.
//!
//! Figure 1: the *Query Specification* feature diagram (SELECT statement):
//! optional Set Quantifier with ALL/DISTINCT alternatives, mandatory Select
//! List with Select Sublist `[1..*]` / Asterisk choices, Derived Column
//! with optional AS clause, and mandatory Table Expression.
//!
//! Figure 2: the *Table Expression* feature diagram: mandatory From,
//! optional Where / Group By / Having / Window.

use sqlweave::feature_model::{render, Cardinality, Optionality};
use sqlweave::sql::catalog;

#[test]
fn figure1_query_specification_structure() {
    let fig1 = catalog().diagram("query_specification").unwrap();

    // Optional Set Quantifier with the ALL / DISTINCT group.
    let sq = fig1.by_name("set_quantifier").expect("Set Quantifier");
    assert_eq!(sq.optionality, Optionality::Optional);
    let all = fig1.id_of("all").expect("ALL");
    let distinct = fig1.id_of("distinct").expect("DISTINCT");
    let group = fig1.group_of(all).expect("ALL is grouped");
    assert!(group.members.contains(&distinct));

    // Mandatory Select List with Select Sublist / Asterisk.
    let sl = fig1.by_name("select_list").expect("Select List");
    assert_eq!(sl.optionality, Optionality::Mandatory);
    let sublist = fig1.id_of("select_sublist").expect("Select Sublist");
    assert!(fig1.group_of(sublist).is_some());
    assert!(fig1.by_name("select_asterisk").is_some(), "Asterisk");

    // Select Sublist carries the paper's [1..*] cardinality.
    assert_eq!(
        fig1.feature(sublist).cardinality,
        Some(Cardinality::ONE_OR_MORE)
    );

    // Derived Column with optional AS clause.
    let dc = fig1.by_name("derived_column").expect("Derived Column");
    assert_eq!(dc.optionality, Optionality::Mandatory);
    let as_clause = fig1.by_name("as_clause").expect("AS");
    assert_eq!(as_clause.optionality, Optionality::Optional);

    // Mandatory Table Expression.
    let te = fig1.by_name("table_expression").expect("Table Expression");
    assert_eq!(te.optionality, Optionality::Mandatory);
}

#[test]
fn figure2_table_expression_structure() {
    let fig2 = catalog().diagram("table_expression").unwrap();
    let from = fig2.by_name("from").expect("From");
    assert_eq!(from.optionality, Optionality::Mandatory);
    for clause in ["where", "group_by", "having", "window_clause"] {
        let f = fig2.by_name(clause).unwrap_or_else(|| panic!("missing {clause}"));
        assert_eq!(f.optionality, Optionality::Optional, "{clause} must be optional");
    }
    // The standard constraint the paper's semantics imply.
    assert!(
        fig2.constraints()
            .iter()
            .any(|c| matches!(c, sqlweave::feature_model::Constraint::Requires(a, b)
                if fig2.feature(*a).name == "having" && fig2.feature(*b).name == "group_by")),
        "having requires group_by"
    );
}

#[test]
fn figures_render_as_ascii_and_dot() {
    let cat = catalog();
    for (name, must_contain) in [
        ("query_specification", vec!["Set Quantifier", "Select List", "Table Expression", "[1..*]"]),
        ("table_expression", vec!["From", "Where", "Group By", "Having", "Window"]),
    ] {
        let model = cat.diagram(name).unwrap();
        let ascii = render::ascii(&model);
        for needle in &must_contain {
            assert!(ascii.contains(needle), "figure {name} ASCII missing {needle}:\n{ascii}");
        }
        let dot = render::dot(&model);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
    }
}

#[test]
fn figure1_worked_instance_is_valid() {
    // The feature instance description of Section 3.2:
    // {Query Specification, Select List, Select Sublist (1), Table
    // Expression} with {Table Expression, From, Table Reference (1)}.
    let fig1 = catalog().diagram("query_specification").unwrap();
    let config = sqlweave::feature_model::Configuration::of([
        "query_specification",
        "select_list",
        "select_sublist",
        "derived_column",
        "table_expression",
        "from",
        "table_reference",
    ]);
    assert!(fig1.validate(&config).is_ok(), "{:?}", fig1.validate(&config));
}

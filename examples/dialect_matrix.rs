//! Build every dialect preset and print the acceptance matrix and the
//! static size table — the "different prototype parsers by composing
//! different features" of the paper's Section 5.
//!
//! ```sh
//! cargo run --example dialect_matrix
//! ```

use sqlweave::dialects::Dialect;
use sqlweave::parser_rt::engine::Parser;

fn corpus(d: Dialect) -> Vec<&'static str> {
    match d {
        Dialect::Pico => vec![
            "SELECT a, b FROM t WHERE a = 1",
            "SELECT * FROM accounts WHERE owner = 4711 AND kind = 2",
        ],
        Dialect::Tiny => vec![
            "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024",
        ],
        Dialect::Scql => vec![
            "CREATE TABLE purse (id INT NOT NULL, balance DECIMAL(8, 2))",
            "UPDATE purse SET balance = 50 WHERE id = 1",
            "GRANT SELECT ON purse TO PUBLIC",
        ],
        Dialect::Core => vec![
            "SELECT a, COUNT(*) FROM t LEFT OUTER JOIN u ON t.x = u.y GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
            "INSERT INTO t (a, b) VALUES (1, 'x')",
        ],
        Dialect::Warehouse => vec![
            "WITH r AS (SELECT a FROM t) SELECT * FROM r UNION ALL SELECT b FROM u",
            "SELECT region, SUM(x) FROM f GROUP BY ROLLUP (region, yr)",
        ],
        Dialect::Full => vec![
            "MERGE INTO t USING u ON t.a = u.a WHEN MATCHED THEN UPDATE SET b = 1",
            "DECLARE c1 SCROLL CURSOR FOR SELECT a FROM t",
        ],
    }
}

fn main() {
    let parsers: Vec<(Dialect, Parser)> = Dialect::ALL
        .into_iter()
        .map(|d| (d, d.parser().expect("dialect composes")))
        .collect();

    // --- static size table (Experiment B3) ---
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>8} {:>11}",
        "dialect", "features", "productions", "table cells", "tokens", "DFA states"
    );
    for (d, p) in &parsers {
        let s = p.stats();
        println!(
            "{:<10} {:>9} {:>12} {:>12} {:>8} {:>11}",
            d.name(),
            d.configuration().len(),
            s.productions,
            s.table_cells,
            s.token_rules,
            s.dfa_states
        );
    }

    // --- acceptance matrix (Experiment T4) ---
    println!("\nacceptance matrix (rows parse columns' corpora):");
    print!("{:<10}", "");
    for (d, _) in &parsers {
        print!("{:>10}", d.name());
    }
    println!();
    for (row, parser) in &parsers {
        print!("{:<10}", row.name());
        for (col, _) in &parsers {
            let stmts = corpus(*col);
            let ok = stmts.iter().filter(|s| parser.parse(s).is_ok()).count();
            print!("{:>7}/{:<2}", ok, stmts.len());
        }
        println!();
    }
    println!("\n(the full row accepts everything; scaled-down rows reject foreign features)");
}

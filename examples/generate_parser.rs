//! Generate standalone Rust parser source for a composed dialect — the
//! analogue of the paper's "using the ANTLR parser generator, we create
//! the parser with the composed grammar".
//!
//! ```sh
//! cargo run --example generate_parser               # print to stdout
//! cargo run --example generate_parser -- out.rs     # write to a file
//! ```

use sqlweave::parser_rt::codegen;
use sqlweave::sql::catalog;

fn main() {
    let cat = catalog();
    let config = cat
        .complete([
            "query_statement",
            "select_sublist",
            "select_asterisk",
            "set_quantifier",
            "all",
            "distinct",
            "where",
        ])
        .expect("valid selection");
    let composed = cat
        .pipeline_from("query_specification")
        .compose(&config)
        .expect("composes");
    let source =
        codegen::generate(&composed.grammar, &composed.tokens).expect("closed grammar");

    eprintln!(
        "// dialect: {} features -> {} productions -> {} lines of generated Rust",
        config.len(),
        composed.grammar.productions().len(),
        source.lines().count()
    );
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, source).expect("write generated source");
            eprintln!("// written to {path}");
        }
        None => println!("{source}"),
    }
}

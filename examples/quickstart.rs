//! Quickstart — the paper's worked example end to end.
//!
//! Select a feature instance description for a scaled-down SELECT parser,
//! compose the sub-grammars, build the parser, and watch it accept exactly
//! the selected features.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sqlweave::sql::catalog;

fn main() {
    let cat = catalog();

    // 1. The feature instance description of Section 3.2: a SELECT with a
    //    single-column select list and a single-table FROM, plus the
    //    optional Set Quantifier and Where features.
    let config = cat
        .complete([
            "query_statement",
            "select_sublist",
            "set_quantifier",
            "all",
            "distinct",
            "where",
        ])
        .expect("valid feature selection");
    println!("selected {} features:\n  {}\n", config.len(), config);

    // 2. Compose their sub-grammars and token files.
    let composed = cat
        .pipeline_from("query_specification")
        .compose(&config)
        .expect("composition succeeds");
    println!(
        "composed grammar `{}`: {} productions, {} tokens\n",
        composed.grammar.name(),
        composed.grammar.productions().len(),
        composed.tokens.len()
    );

    // 3. Build the parser.
    let parser = composed.into_parser().expect("parser builds");

    // 4. It parses precisely the selected features…
    for ok in [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b FROM t",
        "SELECT ALL a FROM t WHERE a = b",
    ] {
        let cst = parser.parse(ok).expect("accepted");
        println!("ACCEPTED  {ok}");
        if ok.contains("WHERE") {
            println!("---- concrete syntax tree ----\n{}", cst.pretty());
        }
    }

    // …and rejects everything else.
    for bad in [
        "SELECT a FROM t ORDER BY a",   // order_by not selected
        "SELECT a FROM t, u",           // from_list not selected
        "SELECT a AS alias FROM t",     // as_clause not selected
        "SELECT a FROM t WHERE a = b OR c = d", // boolean OR not selected
    ] {
        let err = parser.parse(bad).expect_err("rejected");
        println!("REJECTED  {bad}\n          {err}");
    }
}

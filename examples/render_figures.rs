//! Regenerate the paper's figures: render the Query Specification
//! (Figure 1) and Table Expression (Figure 2) feature diagrams as ASCII
//! trees and Graphviz DOT, plus the per-diagram census table behind the
//! "40 diagrams, >500 features" claim.
//!
//! ```sh
//! cargo run --example render_figures            # ASCII + census
//! cargo run --example render_figures -- --dot   # DOT for `dot -Tpng`
//! ```

use sqlweave::feature_model::analysis::census;
use sqlweave::feature_model::render;
use sqlweave::sql::catalog;

fn main() {
    let dot_mode = std::env::args().any(|a| a == "--dot");
    let cat = catalog();

    for (figure, name) in [(1, "query_specification"), (2, "table_expression")] {
        let model = cat.diagram(name).expect("diagram exists");
        if dot_mode {
            println!("// Figure {figure}: {name}");
            println!("{}", render::dot(&model));
        } else {
            println!("==== Figure {figure}: {} ====", model.root().title);
            println!("{}", render::ascii(&model));
        }
    }
    if dot_mode {
        return;
    }

    println!("==== census (paper §3.1: \"40 feature diagrams … more than 500 features\") ====");
    println!("{:<28} {:>8} {:>6} {:>11}", "diagram", "features", "depth", "configs");
    let mut total = 0usize;
    let diagrams = cat.diagrams();
    for model in &diagrams {
        let c = census(model);
        total += c.features;
        println!(
            "{:<28} {:>8} {:>6} {:>11}",
            c.diagram,
            c.features,
            c.depth,
            c.configurations
                .map(|n| n.to_string())
                .unwrap_or_else(|| "(huge)".into())
        );
    }
    println!("\n{} diagrams, {} features in total", diagrams.len(), total);
}

//! Watch the composition rules of Section 3.2 fire, step by step.
//!
//! Composes the worked-example dialect and prints the full trace: which
//! feature contributed which alternative to which production, and which
//! rule (identity, R1 replace, R2 retain, R3 append, R4 optional-merge)
//! the engine applied.
//!
//! ```sh
//! cargo run --example composition_trace
//! ```

use sqlweave::grammar::print::to_dsl;
use sqlweave::sql::catalog;

fn main() {
    let cat = catalog();
    let config = cat
        .complete([
            "query_statement",
            "select_sublist",
            "set_quantifier",
            "all",
            "distinct",
            "where",
            "group_by",
            "having",
        ])
        .expect("valid selection");

    let composed = cat
        .pipeline_from("query_specification")
        .compose(&config)
        .expect("composes");

    println!("composition sequence ({} features):", composed.sequence.len());
    for (i, f) in composed.sequence.iter().enumerate() {
        println!("  {:>3}. {f}", i + 1);
    }

    println!("\nrule applications ({} steps):", composed.trace.entries.len());
    println!("{}", composed.trace.table());
    for tag in ["=", "R1", "R2", "R3", "R4"] {
        println!("  {tag:>2}: {} applications", composed.trace.count(tag));
    }

    println!("\n==== composed grammar ====\n{}", to_dsl(&composed.grammar));
}

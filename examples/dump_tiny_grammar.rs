//! Print the composed grammar of the `tiny` (TinySQL) dialect — used to
//! regenerate `tests/golden/tiny.grammar` and handy for inspecting what a
//! sensor-network SQL engine actually has to parse.
//!
//! ```sh
//! cargo run --example dump_tiny_grammar
//! ```

use sqlweave::dialects::Dialect;
use sqlweave::grammar::print::to_dsl;

fn main() {
    let composed = Dialect::Tiny.composed().expect("tiny composes");
    print!("{}", to_dsl(&composed.grammar));
}

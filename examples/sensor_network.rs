//! Sensor-network scenario — the TinySQL motivation from the paper's
//! introduction: "Query processing for sensor networks requires different
//! semantics of queries as well as additional features than provided in
//! SQL standards."
//!
//! Builds the `tiny` dialect (single-table FROM, no aliases, aggregation,
//! EPOCH DURATION / SAMPLE PERIOD / LIFETIME clauses), parses TinyDB-style
//! acquisition queries, and lowers them to the typed AST.
//!
//! ```sh
//! cargo run --example sensor_network
//! ```

use sqlweave::dialects::Dialect;
use sqlweave::sql_ast::{lower, print};

fn main() {
    let parser = Dialect::Tiny.parser().expect("tiny dialect composes");
    let stats = parser.stats();
    println!(
        "tiny dialect parser: {} productions, {} token rules, {} DFA states\n",
        stats.productions, stats.token_rules, stats.dfa_states
    );

    let queries = [
        "SELECT nodeid, light FROM sensors SAMPLE PERIOD 1024",
        "SELECT nodeid, AVG(temp) FROM sensors WHERE light > 200 GROUP BY nodeid EPOCH DURATION 2048",
        "SELECT COUNT(*) FROM sensors LIFETIME 30",
    ];
    for q in queries {
        let cst = parser.parse(q).expect("tiny query accepted");
        let stmts = lower::lower_script(&cst).expect("lowers");
        let sqlweave::sql_ast::Statement::Query(query) = &stmts[0] else {
            unreachable!("tiny only has queries")
        };
        let sqlweave::sql_ast::ast::QueryBody::Select(select) = &query.body else {
            unreachable!()
        };
        println!("query:   {q}");
        println!("printed: {}", print::statement(&stmts[0]));
        println!(
            "sensor clauses: epoch={:?} sample={:?} lifetime={:?}",
            select.sensor.epoch_duration, select.sensor.sample_period, select.sensor.lifetime
        );
        println!();
    }

    // TinySQL restrictions hold: no aliases, no joins, no multi-table FROM,
    // no ORDER BY (TinyDB's documented limitations).
    println!("rejected (not in TinySQL):");
    for bad in [
        "SELECT temp AS t FROM sensors",
        "SELECT s.temp FROM sensors s JOIN rooms r ON s.room = r.id",
        "SELECT temp FROM sensors, rooms",
        "SELECT temp FROM sensors ORDER BY temp",
        "INSERT INTO sensors VALUES (1)",
    ] {
        assert!(parser.parse(bad).is_err());
        println!("  {bad}");
    }
}
